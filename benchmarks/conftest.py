"""Shared configuration for the benchmark/experiment suite.

Scale knobs (environment variables):

``REPRO_BENCH_TRIALS``
    Monte-Carlo trials per (tree, algorithm) cell.  Default 400 — enough
    for the Table I shape; the paper used 10,000.
``REPRO_BENCH_CITY_N``
    Size of the NYC-like tree.  Default 1500; the paper used 17,834.
``REPRO_BENCH_FULL``
    Set to ``1`` for full paper scale (10,000 trials, n = 17,834).
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
TRIALS = 10000 if FULL else _env_int("REPRO_BENCH_TRIALS", 400)
CITY_N = 17834 if FULL else _env_int("REPRO_BENCH_CITY_N", 1500)


@pytest.fixture(scope="session")
def bench_trials() -> int:
    """Monte-Carlo trials per cell for experiment regeneration."""
    return TRIALS


@pytest.fixture(scope="session")
def bench_city_n() -> int:
    """NYC-like tree size."""
    return CITY_N


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
