"""Ablation benchmarks for the design constants (DESIGN.md §6)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation import (
    format_gamma_sweep,
    run_fairbipart_gamma_sweep,
    run_fairtree_gamma_sweep,
    run_luby_variant_comparison,
)


def test_gamma_sweep_fairtree(benchmark, bench_trials):
    """Smaller γ constants trade fallback frequency for rounds.

    With the paper's c = 3 the fallback must be rare (ε ≤ 1/n); with
    c = 0.5 it must fire visibly more often.
    """
    rows = run_once(
        benchmark,
        run_fairtree_gamma_sweep,
        gamma_cs=(0.5, 1.0, 2.0, 3.0),
        n=150,
        trials=max(bench_trials, 400),
        seed=0,
    )
    print("\n" + format_gamma_sweep(rows))
    by_c = {r.gamma_c: r for r in rows}
    assert by_c[0.5].fallback_fraction >= by_c[3.0].fallback_fraction
    assert by_c[3.0].fallback_fraction <= 0.05
    # fairness holds at the paper constant
    assert by_c[3.0].min_join >= 0.2


def test_gamma_sweep_fairbipart(benchmark, bench_trials):
    """§VI-C: larger γ drives FAIRBIPART's inequality from 8 toward 4."""
    rows = run_once(
        benchmark,
        run_fairbipart_gamma_sweep,
        gamma_cs=(1.0, 2.0, 4.0),
        n=128,
        trials=max(bench_trials, 400),
        seed=0,
    )
    print("\n" + format_gamma_sweep(rows))
    by_c = {r.gamma_c: r for r in rows}
    # larger γ → (weakly) larger minimum join probability
    assert by_c[4.0].min_join >= by_c[1.0].min_join - 0.03
    assert by_c[2.0].inequality <= 8.5


def test_luby_variant_ablation(benchmark, bench_trials):
    """Priority vs 1/(2d)-marking: both unfair on alternating trees."""
    out = run_once(
        benchmark,
        run_luby_variant_comparison,
        trials=max(bench_trials * 2, 1000),
        seed=0,
    )
    print(f"\nLuby variants on alternating tree: {out}")
    assert out["luby_fast"] > 3.0
    assert out["luby_degree_fast"] > 3.0
