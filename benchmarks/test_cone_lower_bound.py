"""Benchmark E6: the Theorem 19 lower bound on the cone graph.

Every algorithm in the library — fair ones included — must exhibit
inequality Ω(k) on the cone ``C_k``: no universally fair MIS algorithm
exists.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments.cone import format_cone, run_cone_experiment


def test_cone_no_algorithm_is_fair(benchmark, bench_trials):
    """F >= ~k for every algorithm (sampling slack 0.6)."""
    rows = run_once(
        benchmark,
        run_cone_experiment,
        ks=(4, 8),
        trials=max(bench_trials * 8, 4000),
        seed=0,
    )
    print("\n" + format_cone(rows))
    for r in rows:
        assert r.inequality >= 0.6 * r.theory_lower_bound, r.algorithm


def test_cone_inequality_grows_linearly(benchmark, bench_trials):
    """Doubling k must grow every algorithm's inequality factor."""
    rows = run_once(
        benchmark,
        run_cone_experiment,
        ks=(2, 4, 8),
        trials=max(bench_trials * 6, 3000),
        seed=1,
    )
    print("\n" + format_cone(rows))
    by_alg = defaultdict(dict)
    for r in rows:
        by_alg[r.algorithm][r.k] = r.inequality
    for alg, vals in by_alg.items():
        assert vals[8] > vals[2], alg


def test_cone_proof_mechanism(benchmark, bench_trials):
    """The proof's coupling: P(apex) equals the probability that some
    vertex of S joins (each implies the other)."""
    import numpy as np

    from repro.analysis.montecarlo import run_trials
    from repro.fast.luby import FastLuby
    from repro.graphs.generators import cone_graph

    k = 6
    g = cone_graph(k)

    def measure():
        rng_trials = max(bench_trials * 4, 2000)
        apex_joins = 0
        s_joins = 0
        both = 0
        rng = np.random.default_rng(0)
        alg = FastLuby()
        for _ in range(rng_trials):
            m = alg.run(g, rng).membership
            a = bool(m[0])
            s = bool(m[k + 1 :].any())
            apex_joins += a
            s_joins += s
            both += a == s
        return apex_joins, s_joins, both, rng_trials

    apex, s, both, trials = run_once(benchmark, measure)
    assert apex == s  # identical events, run by run
    assert both == trials
