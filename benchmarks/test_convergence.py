"""Benchmark E13 (extension): estimator convergence/bias sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.convergence import (
    format_convergence,
    run_convergence_experiment,
)


def test_estimator_convergence(benchmark):
    rows = run_once(
        benchmark,
        run_convergence_experiment,
        budgets=(100, 400, 1600, 6400),
        seed=0,
    )
    print("\n" + format_convergence(rows))
    # plug-in estimates decrease (weakly) toward the asymptote
    plugins = [r.plugin_inequality for r in rows]
    assert plugins[-1] <= plugins[0] + 0.05
    # brackets tighten monotonically
    widths = [r.bracket_width for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(widths, widths[1:]))
    # at the largest budget the bracket must confirm FAIRTREE fairness
    assert rows[-1].lower_bound <= 4.0
