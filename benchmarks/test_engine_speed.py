"""Engine micro-benchmarks: per-run cost of every fast algorithm.

These are conventional pytest-benchmark timings (many rounds), tracking
the throughput that makes the 10,000-trial evaluation feasible, plus a
faithful-vs-fast cost comparison documenting why both layers exist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.luby import LubyMIS
from repro.fast.blocks import FastColorMIS, FastFairBipart
from repro.fast.fair_rooted import FastFairRooted
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.experiments.datasets import binary_tree
from repro.graphs.generators import grid_graph, random_tree


@pytest.fixture(scope="module")
def paper_tree():
    return binary_tree().graph


def test_speed_fast_luby_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    benchmark(lambda: FastLuby().run(paper_tree, rng))


def test_speed_fast_fair_tree_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    benchmark(lambda: FastFairTree().run(paper_tree, rng))


def test_speed_fast_fair_rooted_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    alg = FastFairRooted()
    benchmark(lambda: alg.run(paper_tree, rng))


def test_speed_fast_fair_bipart_medium_tree(benchmark):
    g = random_tree(500, seed=1).graph
    rng = np.random.default_rng(0)
    benchmark(lambda: FastFairBipart().run(g, rng))


def test_speed_fast_color_mis_grid(benchmark):
    g = grid_graph(20, 20)
    rng = np.random.default_rng(0)
    benchmark(lambda: FastColorMIS().run(g, rng))


def test_speed_faithful_luby_small_tree(benchmark):
    """The faithful layer on a small tree — orders slower per node, which
    is exactly why the fast layer exists (DESIGN.md §4)."""
    g = random_tree(100, seed=2).graph
    rng = np.random.default_rng(0)
    benchmark(lambda: LubyMIS().run(g, rng))
