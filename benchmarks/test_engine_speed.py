"""Engine micro-benchmarks: per-run cost of every fast algorithm.

These are conventional pytest-benchmark timings (many rounds), tracking
the throughput that makes the 10,000-trial evaluation feasible, plus a
faithful-vs-fast cost comparison documenting why both layers exist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.luby import LubyMIS
from repro.fast.blocks import FastColorMIS, FastFairBipart
from repro.fast.fair_rooted import FastFairRooted
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.experiments.datasets import binary_tree
from repro.graphs.generators import grid_graph, random_tree


@pytest.fixture(scope="module")
def paper_tree():
    return binary_tree().graph


def test_speed_fast_luby_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    benchmark(lambda: FastLuby().run(paper_tree, rng))


def test_speed_fast_fair_tree_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    benchmark(lambda: FastFairTree().run(paper_tree, rng))


def test_speed_fast_fair_rooted_binary_tree(benchmark, paper_tree):
    rng = np.random.default_rng(0)
    alg = FastFairRooted()
    benchmark(lambda: alg.run(paper_tree, rng))


def test_speed_fast_fair_bipart_medium_tree(benchmark):
    g = random_tree(500, seed=1).graph
    rng = np.random.default_rng(0)
    benchmark(lambda: FastFairBipart().run(g, rng))


def test_speed_fast_color_mis_grid(benchmark):
    g = grid_graph(20, 20)
    rng = np.random.default_rng(0)
    benchmark(lambda: FastColorMIS().run(g, rng))


def test_speed_faithful_luby_small_tree(benchmark):
    """The faithful layer on a small tree — orders slower per node, which
    is exactly why the fast layer exists (DESIGN.md §4)."""
    g = random_tree(100, seed=2).graph
    rng = np.random.default_rng(0)
    benchmark(lambda: LubyMIS().run(g, rng))


# --------------------------------------------------------------------------- #
# Estimation service: warm pool vs cold run_trials (ISSUE acceptance gate)
# --------------------------------------------------------------------------- #

def test_warm_estimator_vs_cold_run_trials():
    """Warm-pool Estimator throughput ≥ 2× cold ``run_trials(n_jobs=4)``.

    Cold path pays pool spin-up, graph pickling, and per-trial Python
    dispatch on every call; the warm service keeps pools resident and
    routes fast engines through the vectorized disjoint-union kernel.
    Measured over several distinct-seed requests on the paper's
    ``tree:500`` workload with a warm-up request excluded.
    """
    import time

    from repro.analysis import run_trials
    from repro.service import Estimator

    graph = random_tree(500, seed=1).graph
    trials = 2000
    requests = 3

    alg = FastLuby()
    t0 = time.perf_counter()
    for seed in range(100, 100 + requests):
        run_trials(alg, graph, trials, seed=seed, n_jobs=4)
    cold_s = time.perf_counter() - t0

    with Estimator(n_jobs=4, cache_size=0) as svc:
        svc.estimate(graph=graph, algorithm="luby_fast", trials=trials, seed=99)
        t0 = time.perf_counter()
        for seed in range(100, 100 + requests):
            svc.estimate(
                graph=graph, algorithm="luby_fast", trials=trials, seed=seed
            )
        warm_s = time.perf_counter() - t0

    total = requests * trials
    cold_tput = total / cold_s
    warm_tput = total / warm_s
    print(
        f"\ncold run_trials: {cold_tput:,.0f} trials/s; "
        f"warm Estimator: {warm_tput:,.0f} trials/s "
        f"({warm_tput / cold_tput:.1f}x)"
    )
    assert warm_tput >= 2 * cold_tput, (
        f"warm service should be >= 2x cold run_trials, got "
        f"{warm_tput / cold_tput:.2f}x ({warm_s:.3f}s vs {cold_s:.3f}s)"
    )


def test_observability_overhead_under_five_percent():
    """Instrumented warm trial path within 5% of the uninstrumented one.

    The observability hooks on the hot path (per-trial round capture,
    batched histogram flush, registry lookups hoisted per chunk) must
    stay cheap: the same ``chunk_counts`` workload is timed with hooks
    enabled (default) and globally disabled (``set_enabled(False)``).
    Wall-clock on shared runners drifts by more than the effect being
    measured (single ~20 ms chunks vary several percent run to run).
    Each comparison therefore pairs best-of-3 timings back to back
    (alternating which side goes first, so throttling phases hit both
    sides), and the statistic is the **median of the paired ratios** —
    interference inflates individual samples but a real instrumentation
    regression shifts every pair, and the median survives outliers.
    """
    import statistics
    import time

    from repro.analysis.montecarlo import chunk_counts
    from repro.obs.metrics import set_enabled
    from repro.runtime.rng import spawn_trial_seeds

    graph = random_tree(300, seed=3).graph
    alg = FastLuby()
    seeds = spawn_trial_seeds(0, 200)

    def best_of(flag: bool, k: int = 3) -> float:
        set_enabled(flag)
        times = []
        for _ in range(k):
            t0 = time.perf_counter()
            chunk_counts(alg, graph, seeds)
            times.append(time.perf_counter() - t0)
        return min(times)

    chunk_counts(alg, graph, seeds)  # warm caches/allocators
    ratios: list[float] = []
    try:
        for i in range(7):
            if i % 2:
                on = best_of(True)
                off = best_of(False)
            else:
                off = best_of(False)
                on = best_of(True)
            ratios.append(on / off)
    finally:
        set_enabled(True)

    ratio = statistics.median(ratios)
    print(f"\nobservability overhead (median paired ratio): {(ratio - 1) * 100:+.1f}%")
    assert ratio <= 1.05, (
        f"observability overhead {(ratio - 1) * 100:.1f}% exceeds 5% "
        f"(paired ratios: {[round(r, 3) for r in sorted(ratios)]})"
    )


def test_telemetry_plane_overhead_under_five_percent():
    """The full cross-process plane stays within 5% of a bare chunk.

    ``run_chunk_with_telemetry`` is everything a worker pays per chunk:
    trace re-entry, a fresh delta registry, span capture, the phase
    profiler, the chunk-summary histograms, and the final snapshot.
    The per-chunk part is fixed (~0.1 ms); the per-trial part is the
    profiler's sweep hooks, so the gate runs at representative graph
    scale (n=1000 — the paper's evaluation trees) where a trial does
    enough kernel work to amortize them.

    Methodology differs from the wall-clock bound above because the
    effect being certified is smaller than shared-runner wall-clock
    noise: samples use **CPU time** (immune to scheduler preemption),
    the cyclic collector is paused so its pauses don't land on one
    side, each window alternates the two sides sample-by-sample and
    compares their medians, and the gate takes the **minimum ratio
    over five windows** — throttling inflates individual windows, but
    a real regression in the plane shifts every window including the
    cleanest.
    """
    import gc
    import statistics
    import time

    from repro.analysis.montecarlo import chunk_counts
    from repro.obs.remote import (
        TraceContext,
        new_chunk_id,
        run_chunk_with_telemetry,
    )
    from repro.runtime.rng import spawn_trial_seeds

    graph = random_tree(1000, seed=3).graph
    alg = FastLuby()
    seeds = spawn_trial_seeds(0, 60)
    ctx = TraceContext()

    def bare() -> None:
        chunk_counts(alg, graph, seeds)

    def instrumented() -> None:
        run_chunk_with_telemetry(
            lambda: chunk_counts(alg, graph, seeds),
            ctx,
            new_chunk_id(),
            algorithm=alg.name,
            trials=len(seeds),
        )

    def window(samples: int = 10) -> float:
        on: list[float] = []
        off: list[float] = []
        for _ in range(samples):
            t0 = time.process_time()
            bare()
            off.append(time.process_time() - t0)
            t0 = time.process_time()
            instrumented()
            on.append(time.process_time() - t0)
        return statistics.median(on) / statistics.median(off)

    instrumented()  # warm caches/allocators on both paths
    gc.collect()
    gc.disable()
    try:
        windows = [window() for _ in range(5)]
    finally:
        gc.enable()
    ratio = min(windows)
    print(
        f"\ntelemetry plane overhead (best window): {(ratio - 1) * 100:+.1f}% "
        f"(windows: {[round(w, 3) for w in windows]})"
    )
    assert ratio <= 1.05, (
        f"telemetry plane overhead {(ratio - 1) * 100:.1f}% exceeds 5% "
        f"in every window ({[round(w, 3) for w in windows]})"
    )


def test_estimator_cache_serves_repeat_requests():
    """A repeated identical request runs 0 new trials and counts a hit."""
    from repro.service import Estimator

    graph = random_tree(500, seed=1).graph
    with Estimator(n_jobs=4) as svc:
        first = svc.estimate(
            graph=graph, algorithm="luby_fast", trials=2000, seed=0
        )
        before = svc.counters.snapshot()
        again = svc.estimate(
            graph=graph, algorithm="luby_fast", trials=2000, seed=0
        )
        after = svc.counters.snapshot()
    assert not first.cached and again.cached
    assert again.trials_run == 0
    assert after["cache_hits"] == before["cache_hits"] + 1
    assert after["trials_executed"] == before["trials_executed"]
    assert np.array_equal(again.estimate.counts, first.estimate.counts)
