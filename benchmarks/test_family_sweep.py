"""Benchmark E14 (extension): the fairness landscape matrix."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.families import format_family_sweep, run_family_sweep


def test_family_sweep(benchmark, bench_trials):
    cells = run_once(
        benchmark, run_family_sweep, trials=max(bench_trials, 400), seed=0
    )
    print("\n" + format_family_sweep(cells))
    # every guaranteed pair measures fair (constant, generously capped)
    for c in cells:
        if c.guaranteed_fair:
            cap = 40.0 if c.algorithm == "color_mis_fast" else 10.0
            assert c.inequality <= cap, (c.family, c.algorithm)
    # the cone breaks everyone (Theorem 19)
    cone = [c for c in cells if c.family == "cone"]
    assert all(c.inequality > 4.0 for c in cone)
    # Luby is the least fair algorithm on the star
    star = {c.algorithm: c.inequality for c in cells if c.family == "star"}
    assert star["luby_fast"] == max(star.values())
