"""Benchmark E4: regenerate Figure 4 (join-frequency CDFs).

One test per panel.  Each regenerates the CDF series and asserts the
paper's visual claims numerically: FAIRTREE curves are compact (all mass
well inside (0,1), small range), Luby curves are diffuse with a low-
frequency tail that worsens left → right across the panels.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.datasets import (
    alternating_tree_b10,
    alternating_tree_b30,
    binary_tree,
    campus_tree,
    city_tree,
    five_ary_tree,
)
from repro.experiments.figure4 import format_figure4, run_figure4


def _split(series):
    luby = [s for s in series if s.algorithm == "luby_fast"]
    fair = [s for s in series if s.algorithm == "fair_tree_fast"]
    return luby, fair


def test_figure4_left_complete_trees(benchmark, bench_trials):
    """Figure 4 (left): complete trees."""
    series = run_once(
        benchmark,
        run_figure4,
        trials=bench_trials,
        seed=0,
        trees=[binary_tree(), five_ary_tree()],
    )
    print("\n" + format_figure4(series))
    luby, fair = _split(series)
    for f in fair:
        assert f.stats["min"] > 0.15 and f.stats["max"] < 0.9
    for l, f in zip(luby, fair):
        assert l.stats["range"] > f.stats["range"]


def test_figure4_center_alternating_trees(benchmark, bench_trials):
    """Figure 4 (center): alternating trees — the bimodal Luby case.

    Paper: for B=10, ~80% of nodes are in the MIS ~90% of the time while
    ~10% of nodes join only ~10% of the time.
    """
    series = run_once(
        benchmark,
        run_figure4,
        trials=bench_trials,
        seed=0,
        trees=[alternating_tree_b10(), alternating_tree_b30()],
    )
    print("\n" + format_figure4(series))
    luby, fair = _split(series)
    b10 = luby[0].stats
    assert b10["frac_above_0.90"] > 0.5  # large high-frequency mode
    assert b10["frac_below_0.25"] > 0.05  # real low-frequency tail
    for f in fair:
        assert f.stats["frac_below_0.10"] == 0.0
        assert f.stats["frac_above_0.90"] == 0.0


def test_figure4_right_realworld_trees(benchmark, bench_trials, bench_city_n):
    """Figure 4 (right): WAP-derived trees — the most diffuse Luby curves."""
    series = run_once(
        benchmark,
        run_figure4,
        trials=bench_trials,
        seed=0,
        trees=[campus_tree(seed=11), city_tree(n=bench_city_n, seed=12)],
    )
    print("\n" + format_figure4(series))
    luby, fair = _split(series)
    for l in luby:
        assert l.stats["range"] > 0.5  # diffuse
    for f, l in zip(fair, luby):
        # compact relative to Luby, with no extreme-frequency tails
        assert f.stats["range"] < l.stats["range"]
        assert f.stats["iqr"] <= l.stats["iqr"] + 0.05
        assert f.stats["frac_below_0.10"] == 0.0
        assert f.stats["frac_above_0.90"] == 0.0


def test_figure4_shape_similarity(benchmark, bench_trials):
    """Paper: 'the general shape of the curves is similar ... with
    [FAIRTREE] more condensed' — medians agree, spreads don't."""
    series = run_once(
        benchmark,
        run_figure4,
        trials=bench_trials,
        seed=2,
        trees=[binary_tree()],
    )
    luby, fair = _split(series)
    assert abs(luby[0].stats["median"] - fair[0].stats["median"]) < 0.25
    assert luby[0].stats["iqr"] >= fair[0].stats["iqr"] * 0.9
