"""Benchmark E15 (extension): message/bit complexity of the faithful layer."""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments.messages import format_messages, run_message_experiment


def test_message_complexity(benchmark):
    rows = run_once(
        benchmark, run_message_experiment, sizes=(16, 32, 64), repeats=2, seed=0
    )
    print("\n" + format_messages(rows))
    by_alg = defaultdict(list)
    for r in rows:
        by_alg[r.algorithm].append(r)
    # every message respects the O(log n)-bit budget
    assert all(r.max_message_slots <= 8 for r in rows)
    # FAIRBIPART's chunked tables dominate traffic at every size
    for i in range(3):
        fb = by_alg["fair_bipart"][i].slots_per_node
        assert fb >= by_alg["luby"][i].slots_per_node
        assert fb >= by_alg["fair_rooted"][i].slots_per_node
    # Luby's traffic per node stays modest (O(deg · log n) flavor)
    assert all(r.messages_per_node < 120 for r in by_alg["luby"])
