"""Benchmark E12 (extension): exact optimal fairness via LP.

Regenerates the optimal-fairness table and asserts two exact facts:
``F* = 1`` on trees/bipartite/symmetric families and ``F* = k`` on the
cone — proving Theorem 19 tight.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.optimal import format_optimal, run_optimal_experiment


def test_optimal_fairness_table(benchmark, bench_trials):
    rows = run_once(
        benchmark, run_optimal_experiment, trials=max(bench_trials, 400), seed=0
    )
    print("\n" + format_optimal(rows))
    by = {r.graph_desc: r for r in rows}
    # perfect fairness is achievable on these families
    for desc in ("path P8", "star S8", "cycle C6", "clique K5",
                 "random tree n=10"):
        assert by[desc].optimal_inequality == pytest.approx(1.0, abs=1e-3)
    # Theorem 19 is tight: F*(C_k) = k exactly
    for k in (2, 3, 4, 5):
        assert by[f"cone C_{k}"].optimal_inequality == pytest.approx(
            float(k), abs=0.01
        )
    # and every real algorithm sits at or above the floor
    for r in rows:
        assert r.luby_inequality >= r.optimal_inequality - 0.15


def test_cone_floor_vs_algorithms(benchmark, bench_trials):
    """Measured inequality of every algorithm >= the exact floor F* = k."""
    import numpy as np

    from repro.analysis.montecarlo import run_trials
    from repro.exact.optimal import optimal_inequality
    from repro.fast.blocks import FastFairBipart
    from repro.fast.fair_tree import FastFairTree
    from repro.fast.luby import FastLuby
    from repro.graphs.generators import cone_graph

    k = 4
    g = cone_graph(k)

    def measure():
        floor = optimal_inequality(g).inequality
        out = {"floor": floor}
        for alg in (FastLuby(), FastFairTree(), FastFairBipart()):
            est = run_trials(alg, g, max(bench_trials * 4, 2000), seed=0)
            out[alg.name] = est.inequality
        return out

    out = run_once(benchmark, measure)
    print(f"\ncone C_{k}: exact floor F* = {out['floor']:.3f}")
    for name, val in out.items():
        if name == "floor":
            continue
        print(f"  {name:<18} measured F = {val:.2f}")
        assert val >= out["floor"] * 0.85
