"""Benchmark E11: round-complexity claims on the faithful layer.

Lemma 5 (FAIRROOTED O(log* n)), Lemma 9 (FAIRTREE O(log n) w.h.p.),
Lemma 15 (FAIRBIPART O(log² n)), and Luby's O(log n): measured rounds,
normalized by the claimed scale, must stay bounded as n grows.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments.rounds import format_rounds, run_rounds_experiment


def test_round_complexity_scales(benchmark):
    rows = run_once(
        benchmark,
        run_rounds_experiment,
        sizes=(16, 32, 64, 128),
        repeats=2,
        seed=0,
    )
    print("\n" + format_rounds(rows))
    by_alg = defaultdict(list)
    for r in rows:
        by_alg[r.algorithm].append(r)
    for alg, series in by_alg.items():
        series.sort(key=lambda r: r.n)
        # normalized rounds must not blow up: allow 3x drift across an
        # 8x size range (constants hidden in O(·) plus w.h.p. noise)
        ratios = [r.normalized for r in series]
        assert max(ratios) <= 3.5 * max(min(ratios), 0.5), (alg, ratios)


def test_fair_rooted_rounds_nearly_constant(benchmark):
    """log* n is 4 for every n in [16, 65536]: rounds must be ~flat."""
    rows = run_once(
        benchmark,
        run_rounds_experiment,
        sizes=(16, 256),
        repeats=2,
        seed=1,
        algorithms=None,
    )
    fr = sorted(
        (r for r in rows if r.algorithm == "fair_rooted"), key=lambda r: r.n
    )
    print("\n" + format_rounds(fr))
    assert fr[-1].rounds_mean <= fr[0].rounds_mean + 6


def test_fairbipart_rounds_superlinear_in_log(benchmark):
    """FAIRBIPART (log² n) must grow visibly faster than Luby (log n)."""
    rows = run_once(
        benchmark, run_rounds_experiment, sizes=(16, 128), repeats=1, seed=2
    )
    by = {(r.algorithm, r.n): r.rounds_mean for r in rows}
    fb_growth = by[("fair_bipart", 128)] / by[("fair_bipart", 16)]
    luby_growth = max(by[("luby", 128)] / by[("luby", 16)], 1.0)
    print(f"\nfair_bipart growth {fb_growth:.2f} vs luby growth {luby_growth:.2f}")
    assert fb_growth > luby_growth
