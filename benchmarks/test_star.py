"""Benchmark E5: the Section I star-graph motivation.

Luby's inequality on ``S_n`` must track the exact theory value ``n - 1``
while the fair algorithms stay at constant inequality.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.star import format_star, run_star_experiment


def test_star_luby_theta_n(benchmark, bench_trials):
    """Luby's star inequality grows linearly in n (theory: n-1)."""
    rows = run_once(
        benchmark,
        run_star_experiment,
        sizes=(8, 16, 32, 64),
        trials=max(bench_trials * 4, 2000),
        seed=0,
    )
    print("\n" + format_star(rows))
    luby = [r for r in rows if "luby" in r.algorithm]
    for r in luby:
        assert 0.45 * r.theory_inequality <= r.inequality <= 2.0 * r.theory_inequality
    # strictly increasing across sizes
    vals = [r.inequality for r in luby]
    assert vals == sorted(vals)


def test_star_fair_algorithms_constant(benchmark, bench_trials):
    """FAIRTREE / FAIRROOTED stay below their constant bounds on stars."""
    rows = run_once(
        benchmark,
        run_star_experiment,
        sizes=(16, 64),
        trials=max(bench_trials * 2, 1500),
        seed=0,
    )
    print("\n" + format_star(rows))
    for r in rows:
        if "luby" not in r.algorithm:
            assert r.inequality <= 4.4
