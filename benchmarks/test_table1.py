"""Benchmark E1–E3: regenerate Table I (inequality factors).

Each test regenerates the paper rows for one tree category, prints them in
the paper's layout, and asserts the qualitative shape: Luby's inequality
ordering across trees and FAIRTREE's uniform fairness (≤ ~3.25-with-slack
everywhere, exactly as Table I reports).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.datasets import (
    alternating_tree_b10,
    alternating_tree_b30,
    binary_tree,
    campus_tree,
    city_tree,
    five_ary_tree,
)
from repro.experiments.table1 import format_table1, run_table1


def _rows_by_alg(rows):
    by = {}
    for r in rows:
        by.setdefault(r.algorithm, []).append(r)
    return by


def test_table1_complete_trees(benchmark, bench_trials):
    """Table I rows 1–2: binary and 5-ary complete trees."""
    trees = [binary_tree(), five_ary_tree()]
    rows = run_once(benchmark, run_table1, trials=bench_trials, seed=0, trees=trees)
    print("\n" + format_table1(rows))
    by = _rows_by_alg(rows)
    luby, fair = by["luby_fast"], by["fair_tree_fast"]
    # Luby: 5-ary strictly less fair than binary (paper: 6.42 > 3.07)
    assert luby[1].inequality > luby[0].inequality
    # FAIRTREE stays fair on both (paper max 3.09 here)
    assert all(r.inequality_lower <= 4.2 for r in fair)
    # and Luby beats FAIRTREE on neither
    assert all(l.inequality >= f.inequality for l, f in zip(luby, fair))


def test_table1_alternating_trees(benchmark, bench_trials):
    """Table I rows 3–4: alternating trees isolate degree variation."""
    trees = [alternating_tree_b10(), alternating_tree_b30()]
    rows = run_once(benchmark, run_table1, trials=bench_trials, seed=0, trees=trees)
    print("\n" + format_table1(rows))
    by = _rows_by_alg(rows)
    luby, fair = by["luby_fast"], by["fair_tree_fast"]
    # Paper: 11.92 (B=10) and 36.59 (B=30) — inequality grows with branch
    assert luby[1].inequality > luby[0].inequality > 6.0
    assert all(r.inequality_lower <= 4.2 for r in fair)


def test_table1_realworld_trees(benchmark, bench_trials, bench_city_n):
    """Table I rows 5–6: WAP-derived MSTs (synthetic substitutes)."""
    trees = [campus_tree(seed=11), city_tree(n=bench_city_n, seed=12)]
    rows = run_once(benchmark, run_table1, trials=bench_trials, seed=0, trees=trees)
    print("\n" + format_table1(rows))
    by = _rows_by_alg(rows)
    luby, fair = by["luby_fast"], by["fair_tree_fast"]
    # Paper: campus 22.75, city 168.49 — large and growing with scale
    assert luby[0].inequality > 8.0
    assert luby[1].inequality > luby[0].inequality
    assert all(r.inequality_lower <= 4.2 for r in fair)


def test_table1_fairtree_always_fair(benchmark, bench_trials):
    """The paper's headline: FAIRTREE ≤ 3.25 across *all* categories."""
    trees = [binary_tree(), alternating_tree_b30(), campus_tree(seed=11)]
    rows = run_once(benchmark, run_table1, trials=bench_trials, seed=1, trees=trees)
    fair = [r for r in rows if r.algorithm == "fair_tree_fast"]
    print("\n" + format_table1(fair))
    assert max(r.inequality_lower for r in fair) <= 4.2
