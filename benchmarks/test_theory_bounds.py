"""Benchmarks E7–E10: regression the paper's fairness theorems.

Each test measures the theorem's bound statistic at evaluation scale and
asserts the bound holds (conservatively, via Wilson intervals inside the
checkers).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.bounds import (
    check_colormis_bound,
    check_fairbipart_bound,
    check_fairrooted_bound,
    check_fairtree_bound,
    format_bounds,
)


def test_fairrooted_bound(benchmark, bench_trials):
    """Theorem 3: FAIRROOTED inequality <= 4 on rooted trees."""
    check = run_once(
        benchmark, check_fairrooted_bound, trials=max(bench_trials * 8, 4000), seed=0
    )
    print("\n" + format_bounds([check]))
    assert check.satisfied
    assert check.measured <= 4.5


def test_fairtree_bound(benchmark, bench_trials):
    """Theorem 8: FAIRTREE min join probability >= (1-eps)/4."""
    check = run_once(
        benchmark, check_fairtree_bound, trials=max(bench_trials * 8, 4000), seed=0
    )
    print("\n" + format_bounds([check]))
    assert check.satisfied


def test_fairbipart_bound(benchmark, bench_trials):
    """Theorem 13: FAIRBIPART min join probability >= 1/8 on bipartite."""
    check = run_once(
        benchmark, check_fairbipart_bound, trials=max(bench_trials * 4, 2000), seed=0
    )
    print("\n" + format_bounds([check]))
    assert check.satisfied


def test_colormis_bound(benchmark, bench_trials):
    """Theorem 17 / Corollary 18: COLORMIS joins with Ω(1/k) on planar."""
    check = run_once(
        benchmark, check_colormis_bound, trials=max(bench_trials * 4, 2000), seed=0
    )
    print("\n" + format_bounds([check]))
    assert check.satisfied
