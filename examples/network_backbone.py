#!/usr/bin/env python3
"""Network backbone construction with fair duty rotation.

The paper's first motivating application (§I-A): when an MIS is used as a
network backbone, MIS members stay awake to relay traffic — joining the
backbone is a *cost*.  If the backbone is re-elected every epoch with an
unfair algorithm, topologically unlucky nodes are drafted almost every
epoch while others almost never serve, so the unlucky ones exhaust their
duty budget (battery, uptime) far sooner.

This example simulates E election epochs on an alternating tree (the
paper's high-inequality shape).  Every epoch each backbone member pays
one unit of duty; we report the duty spread (max/min epochs served, the
epoch-level analogue of the inequality factor) and when the first node
exceeds a duty budget of 85% of the epochs.

Run:  python examples/network_backbone.py [epochs]
"""

from __future__ import annotations

import sys

from repro import FastFairTree, FastLuby
from repro.analysis import simulate_duty
from repro.graphs import alternating_tree


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    tree = alternating_tree(10, 5).graph
    print(f"Alternating tree (B=10, depth 5): n={tree.n}")
    print(f"Re-electing a backbone for {epochs} epochs; duty budget = "
          f"{0.85 * epochs:.0f} epochs on duty\n")

    for alg in (FastLuby(), FastFairTree()):
        report = simulate_duty(tree, alg, epochs, seed=1, budget_fraction=0.85)
        exhausted = (
            f"epoch {report.first_exhausted_epoch}"
            if report.first_exhausted_epoch is not None
            else "never"
        )
        spread = report.spread
        print(f"{alg.name}")
        print(f"  most-drafted node     : {report.duty.max():6.0f} epochs on duty")
        print(f"  least-drafted node    : {report.duty.min():6.0f} epochs on duty")
        print(f"  duty spread (max/min) : "
              f"{'inf' if spread == float('inf') else f'{spread:6.1f}x'}")
        print(f"  first budget exhausted: {exhausted}")
        print()

    print("FAIRTREE's join probabilities all sit in [(1-ε)/4, 3/4], so duty")
    print("rotates and nobody's budget drains early; Luby's drafts the same")
    print("unlucky nodes nearly every epoch (join probability ~0.9+) while")
    print("hub nodes almost never serve.")


if __name__ == "__main__":
    main()
