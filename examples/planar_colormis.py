#!/usr/bin/env python3
"""COLORMIS on planar graphs (Theorem 17 / Corollary 18).

Beyond trees and bipartite graphs, the paper gives a ``k``-fair MIS for
any graph a distributed algorithm can ``k``-color.  Theorem 17's
inequality bound is ``O(k)``, so the palette size *is* the fairness — and
planar graphs have arboricity <= 3, so an arboricity-driven coloring gets
``k = O(1)`` even when the maximum degree is huge.

The showcase topology is an *apex grid*: a planar grid whose boundary all
connects to one apex vertex.  Its maximum degree grows with the perimeter
(so greedy ``Δ+1`` coloring needs a huge palette) while its arboricity
stays <= 3 (so the H-partition coloring needs ~8 colors).  COLORMIS with
the arboricity coloring is then provably fair; with the greedy palette
the ``O(k)`` bound is vacuous at this scale.

Run:  python examples/planar_colormis.py [grid_side] [trials]
"""

from __future__ import annotations

import sys

from repro import FastColorMIS, FastLuby, run_trials
from repro.graphs import apex_grid
from repro.graphs.properties import arboricity_upper_bound


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    g = apex_grid(side, side)
    print(f"Apex grid: n={g.n}, m={g.m}, Δ={g.max_degree} (apex), "
          f"arboricity <= {arboricity_upper_bound(g)}  — planar\n")

    configs = [
        ("color_mis + arboricity coloring", FastColorMIS(coloring="arboricity")),
        ("color_mis + greedy Δ+1 coloring", FastColorMIS(coloring="greedy")),
        ("luby (baseline)", FastLuby()),
    ]
    print(f"{'algorithm':<34} {'k':>5} {'ineq.':>8} {'min join':>9}")
    print("-" * 60)
    for label, alg in configs:
        est = run_trials(alg, g, trials=trials, seed=2)
        sample = alg.run(g, __import__("numpy").random.default_rng(0))
        k = sample.info.get("k", "-")
        print(f"{label:<34} {str(k):>5} {est.inequality:>8.2f} "
              f"{est.min_probability:>9.3f}")

    print("\nCorollary 18: with a constant-size palette (possible because")
    print("planar graphs have constant arboricity), COLORMIS is fair in")
    print("O(log² n) rounds — the greedy palette grows with Δ and loses")
    print("the constant bound, and Luby's has no bound at all.")


if __name__ == "__main__":
    main()
