#!/usr/bin/env python3
"""Quickstart: fairness of MIS algorithms in three minutes.

Builds a random tree, runs Luby's classic MIS algorithm and the paper's
FAIRTREE side by side, and prints each algorithm's inequality factor
(Definition 1: the max/min ratio of per-node join probabilities).

Run:  python examples/quickstart.py [n_nodes] [trials]
"""

from __future__ import annotations

import sys

from repro import FastFairTree, FastLuby, run_trials
from repro.analysis import cdf_spread_stats
from repro.graphs import random_tree


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    tree = random_tree(n, seed=42).graph
    print(f"Random tree: n={tree.n}, max degree={tree.max_degree}")
    print(f"Estimating join probabilities over {trials} runs each...\n")

    for alg in (FastLuby(), FastFairTree()):
        est = run_trials(alg, tree, trials=trials, seed=7)
        stats = cdf_spread_stats(est.probabilities)
        print(f"{alg.name}")
        print(f"  inequality factor : {est.inequality:8.2f}")
        print(f"  min join prob     : {est.min_probability:8.3f}")
        print(f"  max join prob     : {est.max_probability:8.3f}")
        print(f"  nodes joining <10%: {stats['frac_below_0.10']:8.1%}")
        print()

    print("FAIRTREE guarantees every node joins with probability >= (1-ε)/4")
    print("(Theorem 8), so its inequality factor stays below ~4; Luby's has")
    print("no such guarantee and degrades with degree heterogeneity.")


if __name__ == "__main__":
    main()
