#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Produces, at a configurable scale:

* Table I        — inequality factors, six trees × {Luby, FAIRTREE};
* Figure 4       — join-frequency CDF spread summaries, three panels;
* §I star demo   — Luby's Θ(n) star inequality vs the fair algorithms;
* §VIII cone     — the universal Ω(n) lower bound, all algorithms;
* Theorems 3/8/13/17 — bound checks;
* round complexity   — faithful-layer rounds vs claimed scales.

Run:  python examples/reproduce_paper.py [--trials T] [--city-n N] [--full]

``--full`` uses the paper's exact scale (10,000 trials, NYC n=17,834);
expect a long run.  Default scale finishes in a few minutes and already
reproduces every qualitative result.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    format_bounds,
    format_cone,
    format_convergence,
    format_family_sweep,
    format_figure4,
    format_gamma_sweep,
    format_optimal,
    format_rounds,
    format_star,
    format_table1,
    run_all_bounds,
    run_cone_experiment,
    run_convergence_experiment,
    run_fairtree_gamma_sweep,
    run_family_sweep,
    run_figure4,
    run_optimal_experiment,
    run_rounds_experiment,
    run_star_experiment,
    run_table1,
)


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=1000)
    parser.add_argument("--city-n", type=int, default=2500)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--full", action="store_true",
                        help="paper scale: 10,000 trials, city n=17,834")
    args = parser.parse_args()
    trials = 10000 if args.full else args.trials
    city_n = 17834 if args.full else args.city_n

    t0 = time.time()
    section(f"Table I — inequality factors ({trials} trials)")
    rows = run_table1(trials=trials, seed=0, city_n=city_n, n_jobs=args.jobs)
    print(format_table1(rows))

    section("Figure 4 — join-frequency CDF spreads")
    series = run_figure4(
        trials=trials, seed=0, city_n=city_n, n_jobs=args.jobs
    )
    print(format_figure4(series))

    section("Section I — Luby on the star graph (theory: F = n-1)")
    print(format_star(run_star_experiment(trials=max(trials, 2000), seed=0)))

    section("Section VIII — cone-graph lower bound (theory: F >= k)")
    print(format_cone(run_cone_experiment(trials=max(trials, 2000), seed=0)))

    section("Theorems 3 / 8 / 13 / 17 — fairness bound checks")
    print(format_bounds(run_all_bounds(trials=max(trials, 2000), seed=0)))

    section("Round complexity (faithful message-passing layer)")
    print(format_rounds(run_rounds_experiment(seed=0)))

    section("Ablation — FAIRTREE stage budget γ")
    print(format_gamma_sweep(run_fairtree_gamma_sweep(trials=min(trials, 2000))))

    section("Extension — exact optimal fairness F*(G) via LP")
    print(format_optimal(run_optimal_experiment(trials=min(trials, 3000), seed=0)))

    section("Extension — fairness landscape (family × algorithm)")
    print(format_family_sweep(run_family_sweep(trials=min(trials, 1500), seed=0)))

    section("Extension — estimator convergence / plug-in bias")
    print(format_convergence(run_convergence_experiment(seed=0)))

    print(f"\nTotal wall time: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
