#!/usr/bin/env python3
"""Wireless monitoring on WAP-derived trees (the paper's §IX scenario).

The paper's second motivating application (§I-A): monitoring nodes (the
MIS) log their neighbors' behaviour and fill local storage faster than
non-monitors.  On real access-point topologies — rebuilt here with the
paper's own pipeline over a synthetic campus point cloud — Luby's
algorithm concentrates monitoring duty on a few nodes.

The example elects a monitoring set daily for a simulated quarter and
reports per-node expected storage consumption under both algorithms,
plus the Table-I-style inequality factors for the two trees.

Run:  python examples/wireless_monitoring.py [days] [city_n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import FastFairTree, FastLuby, run_trials
from repro.graphs import campus_model, city_model, wap_tree

#: GB of monitoring logs a node accumulates per day on monitoring duty.
#: (Being in the MIS is the cost — §I-A: monitors "fill up [their]
#: storage at a higher rate than [their] non-MIS neighbors".)
GB_PER_DUTY_DAY = 0.25


def storage_after(graph, algorithm, days: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    used = np.zeros(graph.n)
    for _ in range(days):
        member = algorithm.run(graph, rng).membership
        used[member] += GB_PER_DUTY_DAY
    return used


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 90
    city_n = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    networks = [
        ("Dartmouth-like campus", wap_tree(campus_model(seed=11))),
        ("NYC-like city", wap_tree(city_model(n=city_n, seed=12))),
    ]

    for label, g in networks:
        print(f"{label}: n={g.n}, max degree={g.max_degree}")
        for alg in (FastLuby(), FastFairTree()):
            est = run_trials(alg, g, trials=max(days * 4, 400), seed=3)
            used = storage_after(g, alg, days, seed=4)
            print(f"  {alg.name}")
            print(f"    inequality factor        : {est.inequality:8.2f}")
            print(f"    busiest node storage (GB): {used.max():8.2f}")
            print(f"    median node storage (GB) : {np.median(used):8.2f}")
        print()

    print("The paper's Table I reports Luby inequality 22.75 (Dartmouth)")
    print("and 168.49 (NYC, n=17834) vs FAIRTREE <= 3.25 — run with")
    print("city_n=17834 to reproduce the full-scale shape.")


if __name__ == "__main__":
    main()
