#!/usr/bin/env python
"""Million-node graph smoke: build, save, memmap-load under hard budgets.

CI's ``large-graph-smoke`` job runs this to hold the headline scale
properties of the array-native graph layer (docs/GRAPHS.md):

* a 1M-node grid builds in seconds, not minutes (vectorized
  generators — the tuple-path idiom took ~4.4 s for the grid alone);
* ``save_reprograph`` persists edges + materialized CSR;
* ``load_reprograph`` is O(1): a header read plus three mmaps, far
  under the 100 ms acceptance budget and with RSS growth a tiny
  fraction of the file size;
* the loaded graph is usable (CSR pre-materialized, neighbors
  readable) and content-identical to the built one.

Budgets are generous multiples of observed values (load ~1 ms,
RSS growth ~0 MB against a ~72 MB file) so the gate catches
regressions of kind — an accidental eager copy or a re-derived CSR —
not machine noise.

Usage: ``python scripts/large_graph_smoke.py [--side 1000]``
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BUILD_BUDGET_S = 30.0
LOAD_BUDGET_S = 0.1
# memmap loads touch the header only; allow slack for allocator noise
LOAD_RSS_BUDGET_MB = 16.0


def rss_mb() -> float:
    """Current resident set in MB (not the high-water mark: a load that
    eagerly copied buffers under the build peak must still show up)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        import os

        return pages * os.sysconf("SC_PAGE_SIZE") / 1e6
    except (OSError, ValueError, IndexError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=1000,
                        help="grid side; n = side**2 (default 1000 = 1M nodes)")
    args = parser.parse_args()

    from repro.graphs.diskgraph import load_reprograph, save_reprograph
    from repro.graphs.generators import grid_graph

    failures: list[str] = []

    def check(label: str, ok: bool, detail: str) -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}: {detail}")
        if not ok:
            failures.append(label)

    started = time.perf_counter()
    graph = grid_graph(args.side, args.side)
    build_s = time.perf_counter() - started
    check("build", build_s < BUILD_BUDGET_S,
          f"{args.side}x{args.side} grid (n={graph.n:,}, m={graph.m:,}) "
          f"in {build_s:.3f}s (budget {BUILD_BUDGET_S}s)")

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        path = Path(tmp) / "grid.reprograph"
        started = time.perf_counter()
        nbytes = save_reprograph(path, graph)
        save_s = time.perf_counter() - started
        print(f"     save: {nbytes / 1e6:.1f} MB in {save_s:.3f}s")

        rss_before = rss_mb()
        started = time.perf_counter()
        loaded = load_reprograph(path)
        load_s = time.perf_counter() - started
        rss_growth = rss_mb() - rss_before

        check("load-time", load_s < LOAD_BUDGET_S,
              f"memmap open in {load_s * 1e3:.2f}ms "
              f"(budget {LOAD_BUDGET_S * 1e3:.0f}ms)")
        check("load-rss", rss_growth < LOAD_RSS_BUDGET_MB,
              f"RSS growth {rss_growth:.1f} MB against a "
              f"{nbytes / 1e6:.1f} MB file "
              f"(budget {LOAD_RSS_BUDGET_MB:.0f} MB)")
        check("csr-prematerialized", "_csr" in loaded.__dict__,
              "loaded graph carries its CSR without recomputation")
        check("hash-free", "_content_hash" in loaded.__dict__
              and loaded.content_hash() == graph.content_hash(),
              "content hash injected from header and identical")

        import numpy as np

        corner_ok = np.array_equal(loaded.neighbors(0), graph.neighbors(0))
        center = graph.n // 2
        center_ok = np.array_equal(
            loaded.neighbors(center), graph.neighbors(center)
        )
        check("adjacency", corner_ok and center_ok,
              "neighbors readable through the mapped CSR")

    if failures:
        print(f"\nlarge-graph smoke FAILED: {', '.join(failures)}")
        return 1
    print("\nlarge-graph smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
