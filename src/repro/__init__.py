"""repro — Fair Maximal Independent Sets (IPDPS 2014), full reproduction.

A production-quality implementation of *Fair Maximal Independent Sets*
(Fineman, Newport, Sherr, Wang): every algorithm of the paper on a
faithful synchronous message-passing simulator, fast vectorized
Monte-Carlo engines, and harnesses reproducing every table and figure.

Quickstart::

    import numpy as np
    from repro import FastFairTree, FastLuby, run_trials
    from repro.graphs import random_tree

    tree = random_tree(500, seed=1).graph
    fair = run_trials(FastFairTree(), tree, trials=2000, seed=0)
    luby = run_trials(FastLuby(), tree, trials=2000, seed=0)
    print("FairTree inequality:", fair.inequality)
    print("Luby inequality:    ", luby.inequality)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from . import algorithms, analysis, api, core, exact, experiments, fast, graphs, runtime, service
from .algorithms import (
    ColeVishkinMIS,
    ColorMIS,
    CntrlFairBipart,
    FairBipart,
    FairRooted,
    FairTree,
    LubyMIS,
)
from .analysis import (
    JoinEstimate,
    estimate_join_probabilities,
    inequality_factor,
    is_independent_set,
    is_maximal_independent_set,
    run_trials,
)
from .core import MISAlgorithm, MISResult, available, make
from .fast import (
    FastColorMIS,
    FastFairBipart,
    FastFairRooted,
    FastFairTree,
    FastLuby,
)
from .graphs import GraphSpec, RootedTree, StaticGraph
from .service import Estimator, EstimateRequest, EstimateResult

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "analysis",
    "api",
    "service",
    "core",
    "exact",
    "experiments",
    "fast",
    "graphs",
    "runtime",
    "ColeVishkinMIS",
    "ColorMIS",
    "CntrlFairBipart",
    "FairBipart",
    "FairRooted",
    "FairTree",
    "LubyMIS",
    "JoinEstimate",
    "estimate_join_probabilities",
    "inequality_factor",
    "is_independent_set",
    "is_maximal_independent_set",
    "run_trials",
    "MISAlgorithm",
    "MISResult",
    "available",
    "make",
    "FastColorMIS",
    "FastFairBipart",
    "FastFairRooted",
    "FastFairTree",
    "FastLuby",
    "RootedTree",
    "StaticGraph",
    "GraphSpec",
    "Estimator",
    "EstimateRequest",
    "EstimateResult",
    "__version__",
]
