"""``python -m repro`` entry point.

Run ``python -m repro --help`` for the command list; service commands
(``serve``/``batch``/``stats``) expose the observability layer via
``--stats-every``, ``--log-level`` and the metrics expositions — see
``docs/OBSERVABILITY.md``.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
