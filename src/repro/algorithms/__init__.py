"""Faithful node-process implementations of every algorithm in the paper.

Importing this package registers all algorithms with
:mod:`repro.core.registry` under the names::

    luby, cntrl_fair_bipart, cole_vishkin, fair_rooted,
    fair_tree, fair_bipart, color_mis
"""

from .base import ProtocolAlgorithm
from .cntrl_fair_bipart import CFBCall, CntrlFairBipart, cfb_duration
from .cole_vishkin import CVEngine, ColeVishkinMIS, cv_reduction_iterations
from .color_mis import ColorMIS
from .coloring import (
    DistributedColoring,
    GreedyTrialColoringEngine,
    HPartitionColoringEngine,
    run_coloring,
)
from .construct_block import ConstructBlockCall, block_duration, draw_radius
from .fair_bipart import FairBipart, default_block_gamma
from .fair_rooted import FairRooted
from .fair_tree import FairTree, default_gamma
from .finalize import FinalizeTail
from .luby import LubyMIS
from .random_ids import RandomizedIDs, make_randomized_cole_vishkin

__all__ = [
    "ProtocolAlgorithm",
    "CFBCall",
    "CntrlFairBipart",
    "cfb_duration",
    "CVEngine",
    "ColeVishkinMIS",
    "cv_reduction_iterations",
    "ColorMIS",
    "DistributedColoring",
    "GreedyTrialColoringEngine",
    "HPartitionColoringEngine",
    "run_coloring",
    "ConstructBlockCall",
    "block_duration",
    "draw_radius",
    "FairBipart",
    "default_block_gamma",
    "FairRooted",
    "FairTree",
    "default_gamma",
    "FinalizeTail",
    "LubyMIS",
    "RandomizedIDs",
    "make_randomized_cole_vishkin",
]
