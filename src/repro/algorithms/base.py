"""Shared machinery for the faithful (node-process) algorithm layer.

:class:`ProtocolAlgorithm` adapts a per-vertex :class:`NodeProcess` factory
to the uniform :class:`~repro.core.result.MISAlgorithm` contract used by
the analysis layer, handling seed plumbing, execution, validation, and
metrics collection in one place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..runtime.network import DEFAULT_SLOT_LIMIT, SyncNetwork
from ..runtime.node import NodeProcess

__all__ = ["ProtocolAlgorithm", "mis_outputs_to_membership"]


def mis_outputs_to_membership(outputs: np.ndarray) -> np.ndarray:
    """Convert 0/1 per-node outputs to a boolean membership array."""
    member = np.zeros(len(outputs), dtype=bool)
    for v, out in enumerate(outputs):
        if out is None:
            raise ValueError(f"node {v} never terminated")
        if out not in (0, 1, True, False):
            raise ValueError(f"node {v} produced non-binary output {out!r}")
        member[v] = bool(out)
    return member


class ProtocolAlgorithm(ABC):
    """Base class for MIS algorithms expressed as node processes.

    Subclasses implement :meth:`build_process`; they may also override
    :meth:`prepare` to compute per-run shared inputs (e.g. a rooting, or
    the stage budget γ derived from ``n``).

    Parameters
    ----------
    slot_limit:
        Per-message slot budget enforced by the network.
    validate:
        When true (default), every run is checked for independence and
        maximality — the unconditional guarantees of Section III.
    """

    def __init__(
        self, slot_limit: int = DEFAULT_SLOT_LIMIT, validate: bool = True
    ) -> None:
        self.slot_limit = slot_limit
        self.validate = validate

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier used in tables, benchmarks, and the registry."""

    @abstractmethod
    def build_process(self, v: int, graph: StaticGraph, shared: Any) -> NodeProcess:
        """Create the process for vertex ``v``."""

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> Any:
        """Compute shared per-run inputs (default: none)."""
        return None

    def max_rounds(self, graph: StaticGraph) -> int | None:
        """Round safety valve; ``None`` uses the engine default."""
        return None

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        """Execute once on *graph*, drawing all randomness from *rng*."""
        shared = self.prepare(graph, rng)
        seed = int(rng.integers(0, 2**63))
        network = SyncNetwork(graph, slot_limit=self.slot_limit)
        outcome = network.run(
            lambda v: self.build_process(v, graph, shared),
            seed=seed,
            max_rounds=self.max_rounds(graph),
        )
        membership = mis_outputs_to_membership(outcome.outputs)
        result = MISResult(
            membership=membership,
            rounds=outcome.metrics.rounds,
            metrics=outcome.metrics,
            info=self.run_info(shared),
        )
        if self.validate:
            result.validate(graph)
        return result

    def run_info(self, shared: Any) -> dict[str, Any]:
        """Algorithm-specific extras attached to each result."""
        return {}
