"""CNTRLFAIRBIPART — the perfectly fair bipartite MIS subroutine (§V-A).

Given an estimated diameter bound ``D̂``, the routine runs:

1. **Leader election** (``D̂`` rounds of flooding): every participating
   node repeatedly broadcasts the largest ID it has seen; after ``D̂``
   rounds it adopts the largest as its leader.
2. **Parity BFS** (``D̂ + 1`` rounds): each node that believes itself the
   leader draws a uniform bit ``b`` and starts a BFS carrying ``(leader,
   level, b)``.  A node at level ``i`` (from *its* leader) joins the MIS
   iff ``i + b ≡ 0 (mod 2)``.  A leader with no participating neighbors
   always joins.

Lemma 7: if ``D̂ >= D(T)`` the output is a correct MIS of the tree and
every node joins with probability exactly 1/2 (1 for a singleton).

The routine is exposed two ways:

* :class:`CFBCall` — a step-driven object a *host* process embeds, so that
  FAIRTREE can run the routine three times over different participant and
  peer sets while keeping global round alignment;
* :class:`CntrlFairBipart` — a standalone algorithm (useful for testing
  Lemma 7 directly) that computes ``D̂`` centrally when not supplied.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from .base import ProtocolAlgorithm

__all__ = ["CFBCall", "cfb_duration", "CntrlFairBipart", "CFBProcess"]


def cfb_duration(d_hat: int) -> int:
    """Total synchronous rounds consumed by one CNTRLFAIRBIPART call.

    ``d_hat`` election broadcasts (decided at local round ``d_hat``) plus
    ``d_hat`` BFS hops sharing the decision round: rounds ``0 .. 2*d_hat``.
    """
    if d_hat < 1:
        raise ValueError("d_hat must be >= 1")
    return 2 * d_hat + 1


class CFBCall:
    """One embedded CNTRLFAIRBIPART execution.

    Parameters
    ----------
    d_hat:
        Diameter estimate ``D̂`` (the ``γ`` of the host algorithm).
    participating:
        Whether the host vertex takes part.  Non-participants stay silent
        but must still step the same number of rounds.
    peers:
        Neighbor IDs this call may communicate with (the host restricts
        these to e.g. "uncut edges" or "neighbors also in I").

    After :meth:`step` has been driven for :func:`cfb_duration` rounds,
    :attr:`joined` holds the outcome.
    """

    def __init__(
        self, d_hat: int, participating: bool, peers: Iterable[int]
    ) -> None:
        self.d_hat = int(d_hat)
        self.participating = bool(participating)
        self.peers: tuple[int, ...] = tuple(peers)
        self.joined = False
        self.leader: int | None = None
        self.level: int | None = None
        self._max_seen = -1
        self._done_bfs = False

    @property
    def duration(self) -> int:
        """Rounds this call occupies."""
        return cfb_duration(self.d_hat)

    # ------------------------------------------------------------------ #
    def _bcast(self, ctx: NodeContext, payload: dict[str, Any]) -> None:
        for w in self.peers:
            ctx.send(w, payload)

    def step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Advance one round (``r`` counts from 0 within the call)."""
        if not self.participating:
            return
        d = self.d_hat
        if r == 0:
            self._max_seen = ctx.node_id
            self._bcast(ctx, {"type": "cfb_max", "id": self._max_seen})
            return
        if r <= d:
            for msg in inbox:
                if msg.payload.get("type") == "cfb_max":
                    self._max_seen = max(self._max_seen, int(msg.payload["id"]))
            if r < d:
                self._bcast(ctx, {"type": "cfb_max", "id": self._max_seen})
                return
            # r == d: election decided; leaders start the BFS.
            self.leader = self._max_seen
            if self.leader == ctx.node_id:
                bit = int(ctx.rng.integers(0, 2))
                self.level = 0
                # Level 0 joins iff 0 + b ≡ 0 (mod 2); an isolated leader
                # always joins (the Lemma 7 special case).
                self.joined = (bit % 2 == 0) or not self.peers
                self._bcast(
                    ctx,
                    {
                        "type": "cfb_bfs",
                        "leader": ctx.node_id,
                        "level": 1,
                        "bit": bit,
                    },
                )
            return
        # BFS propagation rounds: d < r <= 2d
        if self.level is None:
            for msg in inbox:
                p = msg.payload
                if (
                    p.get("type") == "cfb_bfs"
                    and int(p["leader"]) == self.leader
                ):
                    self.level = int(p["level"])
                    bit = int(p["bit"])
                    self.joined = (self.level + bit) % 2 == 0
                    if r < 2 * d:
                        self._bcast(
                            ctx,
                            {
                                "type": "cfb_bfs",
                                "leader": self.leader,
                                "level": self.level + 1,
                                "bit": bit,
                            },
                        )
                    break


class CFBProcess(NodeProcess):
    """Standalone node process: a single CNTRLFAIRBIPART call, then output."""

    def __init__(self, d_hat: int) -> None:
        self._d_hat = d_hat
        self._call: CFBCall | None = None
        self._r = -1

    def on_start(self, ctx: NodeContext) -> None:
        self._call = CFBCall(self._d_hat, True, ctx.neighbor_ids)
        self._step(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._step(ctx, inbox)

    def _step(self, ctx: NodeContext, inbox: list[Message]) -> None:
        assert self._call is not None
        self._r += 1
        self._call.step(ctx, self._r, inbox)
        if self._r + 1 >= self._call.duration:
            ctx.terminate(1 if self._call.joined else 0)


@register("cntrl_fair_bipart")
class CntrlFairBipart(ProtocolAlgorithm):
    """Standalone CNTRLFAIRBIPART (for connected bipartite graphs/trees).

    Parameters
    ----------
    d_hat:
        Diameter estimate.  When ``None`` the true diameter is computed
        centrally in :meth:`prepare` — the model does not grant nodes this
        knowledge, but the standalone form exists precisely to test
        Lemma 7 under the "``D̂ >= D(T)``" hypothesis.  Host algorithms
        (FAIRTREE) always pass their own ``γ``.

    Note: output is only a *correct MIS* when the graph is connected and
    bipartite and ``d_hat >= D``; :meth:`run` validates by default and will
    raise otherwise.
    """

    def __init__(self, d_hat: int | None = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.d_hat = d_hat

    @property
    def name(self) -> str:
        return "cntrl_fair_bipart"

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> int:
        if self.d_hat is not None:
            return self.d_hat
        return max(1, graph.diameter() if graph.n > 1 else 1)

    def build_process(self, v: int, graph: StaticGraph, shared: int) -> NodeProcess:
        return CFBProcess(shared)
