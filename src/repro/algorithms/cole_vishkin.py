"""Cole–Vishkin deterministic coin tossing [3] for rooted trees/forests.

Provides the ``O(log* n)`` subroutine FAIRROOTED needs for its second
stage: a deterministic 6-coloring of a rooted forest by iterated bit-index
reduction, followed by the standard color-class sweep that converts any
``O(1)``-coloring into an MIS in ``O(1)`` additional rounds.

The engine is exposed both as an embeddable step-driven object
(:class:`CVEngine`, mirroring :class:`~.cntrl_fair_bipart.CFBCall`) and as
a standalone registered algorithm (:class:`ColeVishkinMIS`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..graphs.graph import RootedTree, StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from .base import ProtocolAlgorithm

__all__ = ["CVEngine", "cv_reduction_iterations", "cv_duration", "ColeVishkinMIS"]

#: After reduction every color lies in {0..5}; the MIS sweep runs one
#: 2-round phase per color.
FINAL_COLORS = 6


def cv_reduction_iterations(max_initial_color: int) -> int:
    """Number of bit-reduction iterations until all colors are in {0..5}.

    One iteration maps a color of bit-length ``b`` to at most ``2(b-1)+1``;
    iterating reaches the fixed point 5 in ``O(log* n)`` steps.
    """
    cmax = max(1, int(max_initial_color))
    iters = 0
    while cmax > 5:
        cmax = 2 * (cmax.bit_length() - 1) + 1
        iters += 1
    return iters


def cv_duration(max_initial_color: int) -> int:
    """Total rounds for one embedded CV call (reduction + MIS sweep)."""
    return cv_reduction_iterations(max_initial_color) + 1 + 2 * FINAL_COLORS


class CVEngine:
    """One embedded Cole–Vishkin execution over a rooted subforest.

    Parameters
    ----------
    parent:
        The host vertex's parent inside the subforest, or ``None`` for a
        root (including nodes whose original parent does not participate).
    participating:
        Whether the host vertex takes part; non-participants stay silent
        for the full :attr:`duration`.
    peers:
        Neighbor IDs participating alongside (used for the MIS sweep
        broadcasts; the reduction only reads the parent's messages).
    initial_color:
        A color distinct from every neighbor's — node IDs qualify.
    max_initial_color:
        Global bound on initial colors (all nodes must agree so the
        iteration count is synchronized); typically ``n - 1``.
    """

    def __init__(
        self,
        parent: int | None,
        participating: bool,
        peers: list[int],
        initial_color: int,
        max_initial_color: int,
    ) -> None:
        self.parent = parent
        self.participating = participating
        self.peers = list(peers)
        self.color = int(initial_color)
        self._iters = cv_reduction_iterations(max_initial_color)
        self.duration = self._iters + 1 + 2 * FINAL_COLORS
        self.joined = False
        self.covered = False

    # ------------------------------------------------------------------ #
    def _bcast(self, ctx: NodeContext, payload: dict[str, Any]) -> None:
        for w in self.peers:
            ctx.send(w, payload)

    @staticmethod
    def _reduce(own: int, parent_color: int) -> int:
        """One Cole–Vishkin step: lowest differing bit index + own bit."""
        diff = own ^ parent_color
        i = (diff & -diff).bit_length() - 1  # index of lowest set bit
        return 2 * i + ((own >> i) & 1)

    def _virtual_parent_color(self) -> int:
        """Roots reduce against a fabricated color differing from theirs."""
        return 1 if self.color == 0 else 0

    def step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Advance one round (``r`` counts from 0 within the call)."""
        if not self.participating:
            return
        k = self._iters
        if r <= k:
            # -- reduction pipeline: broadcast c_t, compute c_{t+1} ------- #
            if r > 0:
                parent_color = None
                if self.parent is None:
                    parent_color = self._virtual_parent_color()
                else:
                    for msg in inbox:
                        if (
                            msg.payload.get("type") == "cvcol"
                            and msg.sender == self.parent
                        ):
                            parent_color = int(msg.payload["c"])
                            break
                if parent_color is None:
                    # Parent silent (shouldn't happen among participants);
                    # behave as a root to stay within {0..5} on schedule.
                    parent_color = self._virtual_parent_color()
                self.color = self._reduce(self.color, parent_color)
            if r < k:
                self._bcast(ctx, {"type": "cvcol", "c": self.color})
            return
        # -- MIS sweep: one 2-round phase per color class ------------------ #
        local = r - (k + 1)
        phase, sub = divmod(local, 2)
        if sub == 0:
            if self.color == phase and not self.covered and not self.joined:
                self.joined = True
                self._bcast(ctx, {"type": "cvjoin"})
        else:
            if any(msg.payload.get("type") == "cvjoin" for msg in inbox):
                self.covered = True


class _CVProcess(NodeProcess):
    """Standalone node process: a single CV call over the whole tree."""

    def __init__(self, parent: int | None, n: int) -> None:
        self._parent = parent
        self._n = n
        self._engine: CVEngine | None = None
        self._r = -1

    def on_start(self, ctx: NodeContext) -> None:
        self._engine = CVEngine(
            parent=self._parent,
            participating=True,
            peers=list(ctx.neighbor_ids),
            initial_color=ctx.node_id,
            max_initial_color=self._n - 1,
        )
        self._step(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._step(ctx, inbox)

    def _step(self, ctx: NodeContext, inbox: list[Message]) -> None:
        assert self._engine is not None
        self._r += 1
        self._engine.step(ctx, self._r, inbox)
        if self._r + 1 >= self._engine.duration:
            ctx.terminate(1 if self._engine.joined else 0)


@register("cole_vishkin")
class ColeVishkinMIS(ProtocolAlgorithm):
    """Deterministic ``O(log* n)`` MIS for rooted trees/forests.

    Accepts either a :class:`RootedTree` at construction or roots the input
    tree deterministically (BFS from vertex 0) in :meth:`prepare` — the
    model of Section IV provides parent pointers as input, so this rooting
    stands in for that input.

    Being deterministic, its inequality factor on a fixed assignment of
    IDs is infinite (Section II's observation); it exists as a *subroutine*
    and as a baseline, not as a fair algorithm.
    """

    def __init__(self, tree: RootedTree | None = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.tree = tree

    @property
    def name(self) -> str:
        return "cole_vishkin"

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> np.ndarray:
        if self.tree is not None:
            if self.tree.graph is not graph and self.tree.graph != graph:
                raise ValueError("provided rooting does not match the input graph")
            return self.tree.parent
        return RootedTree.from_graph(graph).parent

    def build_process(
        self, v: int, graph: StaticGraph, shared: np.ndarray
    ) -> NodeProcess:
        parent = int(shared[v])
        return _CVProcess(parent if parent >= 0 else None, graph.n)
