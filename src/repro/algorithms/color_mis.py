"""COLORMIS — the ``O(k)``-fair MIS for ``k``-colorable graphs (§VII).

The algorithm composes three pieces already built in this package:

1. a distributed ``k``-coloring ``A`` (``repro.algorithms.coloring``), run
   for its w.h.p. budget — any node left uncolored simply proceeds
   uncolored (footnote 3 of the paper);
2. the augmented ``Construct_Block`` routine of §VI-A, with the leader's
   random *bit* replaced by a uniformly random *color* ``c_u`` that
   propagates unchanged; a node joins the candidate set iff it joined a
   block **and** its own color equals its leader's drawn color;
3. the shared finalize tail: violation fix (no-op when ``A`` succeeded,
   since color classes are independent sets), coverage resolution, and
   LUBY'S on the uncovered remainder.

Theorem 17: join probability ``Ω(1/k)`` for every node → inequality factor
``O(k)``.  With the arboricity coloring and planar inputs ``k`` is a
constant, giving Corollary 18's fair ``O(log² n)`` planar algorithm.

The paper assumes ``k`` is known to all nodes (it can be counted by block
leaders otherwise); we mirror that by computing the palette bound
centrally in :meth:`ColorMIS.prepare`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from ..runtime.staged import StagedProcess
from .base import ProtocolAlgorithm
from .construct_block import (
    DEFAULT_P,
    ConstructBlockCall,
    block_duration,
    draw_radius,
)
from .coloring import (
    GreedyTrialColoringEngine,
    HPartitionColoringEngine,
    greedy_budget_iterations,
    hpartition_classes,
)
from .fair_bipart import default_block_gamma
from .finalize import FINALIZE_FIXED_ROUNDS, FinalizeTail

__all__ = ["ColorMIS", "ColorMISProcess"]


class ColorMISProcess(StagedProcess):
    """Per-vertex state machine for COLORMIS."""

    def __init__(
        self,
        coloring_kind: str,
        k: int,
        cap: int,
        gamma: int,
        p: float,
        slot_limit: int,
        n: int,
    ) -> None:
        super().__init__()
        self._kind = coloring_kind
        self._k = k
        self._cap = cap
        self._gamma = gamma
        self._p = p
        self._slot_limit = slot_limit
        self._n = n
        self._coloring: Any = None
        self._block: ConstructBlockCall | None = None
        self._tail: FinalizeTail | None = None
        self._in_i = False
        self.color: int | None = None

    def stage_lengths(self, ctx: NodeContext) -> list[int | None]:
        if self._kind == "greedy":
            color_rounds = 2 * greedy_budget_iterations(self._n)
        else:
            classes = hpartition_classes(self._n)
            trials = greedy_budget_iterations(self._n)
            color_rounds = 2 * classes + (classes + 1) * 2 * trials
        return [
            color_rounds,
            block_duration(self._gamma, self._slot_limit),
            FINALIZE_FIXED_ROUNDS,
            None,
        ]

    def on_stage_start(self, ctx: NodeContext, stage: int) -> None:
        if stage == 0:
            peers = list(ctx.neighbor_ids)
            if self._kind == "greedy":
                self._coloring = GreedyTrialColoringEngine(
                    peers, greedy_budget_iterations(self._n)
                )
            else:
                self._coloring = HPartitionColoringEngine(
                    peers,
                    self._cap,
                    hpartition_classes(self._n),
                    greedy_budget_iterations(self._n),
                )
        elif stage == 1:
            self.color = self._coloring.color
            self._block = ConstructBlockCall(
                gamma=self._gamma,
                participating=True,
                peers=list(ctx.neighbor_ids),
                mode="color",
                value=int(ctx.rng.integers(0, self._k)),
                radius=draw_radius(ctx.rng, self._gamma, self._p),
                slot_limit=self._slot_limit,
            )
        elif stage == 2:
            self._tail = FinalizeTail(in_set=self._in_i)

    def on_stage_round(
        self, ctx: NodeContext, stage: int, r: int, inbox: list[Message]
    ) -> None:
        if stage == 0:
            self._coloring.step(ctx, r, inbox)
        elif stage == 1:
            assert self._block is not None
            self._block.step(ctx, r, inbox)
            if r + 1 == self._block.duration:
                self._in_i = (
                    self._block.in_block
                    and self.color is not None
                    and self._block.leader_value == self.color
                )
        elif stage == 2:
            assert self._tail is not None
            self._tail.fixed_step(ctx, r, inbox)
        else:
            assert self._tail is not None
            self._tail.luby_step(ctx, r, inbox)


@register("color_mis")
class ColorMIS(ProtocolAlgorithm):
    """COLORMIS as a :class:`~repro.core.result.MISAlgorithm`.

    Parameters
    ----------
    coloring:
        ``"greedy"`` (``Δ+1`` colors, any graph) or ``"arboricity"``
        (``floor(2.5·a)+1`` colors — constant on planar inputs).
    k:
        Explicit palette bound override; defaults to the bound implied by
        the chosen coloring, computed centrally (the paper's "assume
        knowledge of k").
    gamma_c / gamma / p:
        Construct_Block parameters as in :class:`~.fair_bipart.FairBipart`.
    """

    def __init__(
        self,
        coloring: str = "greedy",
        k: int | None = None,
        gamma_c: float = 2.0,
        gamma: int | None = None,
        p: float = DEFAULT_P,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if coloring not in ("greedy", "arboricity"):
            raise ValueError(f"unknown coloring kind {coloring!r}")
        self.coloring = coloring
        self.k = k
        self.gamma_c = gamma_c
        self.gamma = gamma
        self.p = p

    @property
    def name(self) -> str:
        return "color_mis" if self.coloring == "greedy" else "color_mis_arb"

    def prepare(
        self, graph: StaticGraph, rng: np.random.Generator
    ) -> dict[str, int]:
        gamma = (
            self.gamma
            if self.gamma is not None
            else default_block_gamma(graph.n, self.gamma_c)
        )
        if self.coloring == "greedy":
            cap = graph.max_degree
            k = self.k if self.k is not None else graph.max_degree + 1
        else:
            from ..graphs.properties import arboricity_upper_bound

            a = arboricity_upper_bound(graph)
            cap = max(1, int(2.5 * a))
            k = self.k if self.k is not None else cap + 1
        return {"gamma": gamma, "k": max(1, k), "cap": cap}

    def run_info(self, shared: dict[str, int]) -> dict[str, Any]:
        return {"k": shared["k"], "gamma": shared["gamma"]}

    def build_process(
        self, v: int, graph: StaticGraph, shared: dict[str, int]
    ) -> NodeProcess:
        return ColorMISProcess(
            coloring_kind=self.coloring,
            k=shared["k"],
            cap=shared["cap"],
            gamma=shared["gamma"],
            p=self.p,
            slot_limit=self.slot_limit,
            n=graph.n,
        )
