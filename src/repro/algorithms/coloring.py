"""Distributed vertex colorings (substrate S12, §VII prerequisites).

COLORMIS needs a distributed ``k``-coloring algorithm ``A``.  Two are
provided:

* :class:`GreedyTrialColoringEngine` — the classic random-trial coloring:
  every uncolored node proposes a color from its local palette
  (``{0..deg(v)}`` minus finalized neighbor colors) and keeps it when no
  neighbor proposed the same; ``O(log n)`` iterations w.h.p., ``Δ+1``
  colors overall.
* :class:`HPartitionColoringEngine` — a Barenboim–Elkin-style [1]
  low-arboricity coloring: an H-partition peels nodes of active degree
  ``<= A = floor((2+ε)·a)`` into ``O(log n)`` classes, then classes are
  colored from palette ``{0..A}`` in reverse peel order.  Yields an
  ``(A+1)``-coloring — for planar graphs (``a <= 3``) a constant number of
  colors, which is what Corollary 18 needs.  Our per-class trial coloring
  makes this ``O(log² n)`` rounds rather than the cited ``O(a log n)``;
  COLORMIS's total stays ``O(log² n)`` either way (documented deviation,
  DESIGN.md §3).

Both engines follow the step-driven embeddable convention of
:class:`~.cntrl_fair_bipart.CFBCall` and are wrapped by the standalone
:class:`DistributedColoring` runner for direct testing.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.network import DEFAULT_SLOT_LIMIT, SyncNetwork
from ..runtime.node import NodeContext, NodeProcess
from ..runtime.rng import SeedLike

__all__ = [
    "GreedyTrialColoringEngine",
    "HPartitionColoringEngine",
    "DistributedColoring",
    "greedy_budget_iterations",
    "hpartition_classes",
    "run_coloring",
]


def greedy_budget_iterations(n: int, c: float = 4.0) -> int:
    """Trial-coloring iteration budget giving w.h.p. success."""
    return max(4, math.ceil(c * math.log2(max(n, 2))) + 4)


def hpartition_classes(n: int) -> int:
    """Peeling-iteration budget: enough for any constant-arboricity graph."""
    return max(2, math.ceil(1.8 * math.log2(max(n, 2))) + 2)


class GreedyTrialColoringEngine:
    """Random-trial ``(deg+1)``-list coloring.

    Iteration (2 rounds): propose a random available color; finalize when
    no neighbor proposed the same color this iteration.  Finalized colors
    are announced so neighbors shrink their palettes.  After the budget a
    node may remain uncolored (``color is None``) — hosts must tolerate
    this, exactly as §VII footnote 3 prescribes.
    """

    def __init__(self, peers: list[int], budget_iters: int) -> None:
        self.peers = list(peers)
        self.palette = list(range(len(self.peers) + 1))
        self._budget = budget_iters
        self.duration = 2 * budget_iters
        self.color: int | None = None
        self._proposal: int | None = None
        self._taken: set[int] = set()

    def _bcast(self, ctx: NodeContext, payload: dict[str, Any]) -> None:
        for w in self.peers:
            ctx.send(w, payload)

    def step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Advance one round (``r`` from 0 within the call)."""
        sub = r % 2
        if sub == 0:
            # absorb finalizations announced in the previous iteration
            for m in inbox:
                if m.payload.get("type") == "col_fin":
                    self._taken.add(int(m.payload["c"]))
            if self.color is not None:
                return
            available = [c for c in self.palette if c not in self._taken]
            if not available:
                self._proposal = None
                return
            self._proposal = int(
                available[int(ctx.rng.integers(0, len(available)))]
            )
            self._bcast(ctx, {"type": "col_prop", "c": self._proposal})
        else:
            if self.color is not None or self._proposal is None:
                return
            conflict = any(
                m.payload.get("type") == "col_prop"
                and int(m.payload["c"]) == self._proposal
                for m in inbox
            )
            if not conflict:
                self.color = self._proposal
                self._bcast(ctx, {"type": "col_fin", "c": self.color})


class HPartitionColoringEngine:
    """Arboricity-driven coloring via H-partition + reverse-order trials.

    Parameters
    ----------
    cap:
        The degree cap ``A = floor((2+ε)·a)``; nodes peel when their
        active degree drops to ``A`` or below, and the final palette is
        ``{0..A}`` (``A+1`` colors).
    classes:
        Number of peel iterations (``O(log n)`` suffices for any graph of
        arboricity ``a``).
    trial_iters:
        Trial-coloring iterations allotted to each class window.
    """

    def __init__(
        self, peers: list[int], cap: int, classes: int, trial_iters: int
    ) -> None:
        self.peers = list(peers)
        self.cap = int(cap)
        self.classes = int(classes)
        self.trial_iters = int(trial_iters)
        self.duration = 2 * classes + (classes + 1) * 2 * trial_iters
        self.color: int | None = None
        self.h_class: int | None = None
        self._active_nbrs = set(self.peers)
        self._taken: set[int] = set()
        self._proposal: int | None = None

    def _bcast(self, ctx: NodeContext, payload: dict[str, Any]) -> None:
        for w in self.peers:
            ctx.send(w, payload)

    def step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Advance one round (``r`` from 0 within the call)."""
        peel_rounds = 2 * self.classes
        if r < peel_rounds:
            it, sub = divmod(r, 2)
            if sub == 0:
                # absorb peel announcements from the previous iteration
                for m in inbox:
                    if m.payload.get("type") == "peel":
                        self._active_nbrs.discard(m.sender)
                if self.h_class is None and len(self._active_nbrs) <= self.cap:
                    self.h_class = it
                    self._bcast(ctx, {"type": "peel"})
            return
        if r == peel_rounds and self.h_class is None:
            self.h_class = self.classes  # overflow class (cap too small)
        # -- phase 2: color classes in reverse peel order ------------------- #
        local = r - peel_rounds
        window, wr = divmod(local, 2 * self.trial_iters)
        my_window = self.classes - (self.h_class or 0)
        sub = wr % 2
        if sub == 0:
            for m in inbox:
                if m.payload.get("type") == "col_fin":
                    self._taken.add(int(m.payload["c"]))
            if window != my_window or self.color is not None:
                return
            available = [
                c for c in range(self.cap + 1) if c not in self._taken
            ]
            if not available:
                self._proposal = None
                return
            self._proposal = int(
                available[int(ctx.rng.integers(0, len(available)))]
            )
            self._bcast(ctx, {"type": "col_prop", "c": self._proposal})
        else:
            if (
                window != my_window
                or self.color is not None
                or self._proposal is None
            ):
                return
            conflict = any(
                m.payload.get("type") == "col_prop"
                and int(m.payload["c"]) == self._proposal
                for m in inbox
            )
            if not conflict:
                self.color = self._proposal
                self._bcast(ctx, {"type": "col_fin", "c": self.color})


class _ColoringProcess(NodeProcess):
    """Standalone wrapper driving one coloring engine to completion."""

    def __init__(self, engine_factory) -> None:
        self._factory = engine_factory
        self._engine = None
        self._r = -1

    def on_start(self, ctx: NodeContext) -> None:
        self._engine = self._factory(ctx)
        self._step(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._step(ctx, inbox)

    def _step(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._r += 1
        self._engine.step(ctx, self._r, inbox)
        if self._r + 1 >= self._engine.duration:
            color = self._engine.color
            ctx.terminate(-1 if color is None else int(color))


class DistributedColoring:
    """Standalone runner for the coloring engines (testing / experiments).

    ``kind``: ``"greedy"`` or ``"arboricity"``.  Returns an int array of
    colors with ``-1`` marking the (w.h.p. absent) failures.
    """

    def __init__(
        self,
        kind: str = "greedy",
        cap: int | None = None,
        slot_limit: int = DEFAULT_SLOT_LIMIT,
    ) -> None:
        if kind not in ("greedy", "arboricity"):
            raise ValueError(f"unknown coloring kind {kind!r}")
        self.kind = kind
        self.cap = cap
        self.slot_limit = slot_limit

    def run(self, graph: StaticGraph, seed: SeedLike = None) -> np.ndarray:
        n = graph.n
        if self.kind == "greedy":
            budget = greedy_budget_iterations(n)

            def factory(ctx: NodeContext):
                return GreedyTrialColoringEngine(list(ctx.neighbor_ids), budget)

        else:
            from ..graphs.properties import arboricity_upper_bound

            a = arboricity_upper_bound(graph)
            cap = self.cap if self.cap is not None else max(1, int(2.5 * a))
            classes = hpartition_classes(n)
            trials = greedy_budget_iterations(n)

            def factory(ctx: NodeContext):
                return HPartitionColoringEngine(
                    list(ctx.neighbor_ids), cap, classes, trials
                )

        network = SyncNetwork(graph, slot_limit=self.slot_limit)
        outcome = network.run(lambda v: _ColoringProcess(factory), seed=seed)
        colors = np.array([int(o) for o in outcome.outputs], dtype=np.int64)
        return colors


def run_coloring(
    graph: StaticGraph, kind: str = "greedy", seed: SeedLike = None
) -> np.ndarray:
    """Convenience wrapper around :class:`DistributedColoring`."""
    return DistributedColoring(kind=kind).run(graph, seed=seed)
