"""Linial–Saks ``Construct_Block`` with bounded messages (§VI-A, [12]).

Every node draws a communication radius from the truncated geometric
distribution ``π`` (``Pr[r = k] = p^k (1-p)`` for ``k < γ``, ``p^γ`` at
``k = γ``) and floods *leader tables*: ``L[i]`` is the largest ID seen
with ``i`` range remaining, with a piggybacked value that is either the
leader candidate's random bit, parity-flipped per hop (FAIRBIPART), or its
random color, unchanged per hop (COLORMIS).

After ``γ`` *superrounds* a node's leader is the maximum ID anywhere in
its table; if that ID appears only at index 0 the node is a *boundary*
node (distance exactly ``r_u`` from the leader) and joins no block.

Message sizes are honoured faithfully: a table holds up to ``γ + 1``
entries of three scalars each, so a superround spans
``ceil((γ+1) / entries_per_message)`` engine rounds and each round carries
one chunk — this is exactly why FAIRBIPART costs ``O(log² n)`` rounds
under the ``O(log n)``-bit message model (Lemma 15).
"""

from __future__ import annotations

import math
from typing import Any, Literal

import numpy as np

from ..runtime.message import Message
from ..runtime.node import NodeContext

__all__ = ["ConstructBlockCall", "block_duration", "draw_radius", "DEFAULT_P"]

#: The paper fixes ``p = 1/2`` for its analysis (Lemma 16).
DEFAULT_P = 0.5


def draw_radius(rng: np.random.Generator, gamma: int, p: float = DEFAULT_P) -> int:
    """Sample from the truncated geometric distribution ``π``."""
    if gamma < 1:
        raise ValueError("gamma must be >= 1")
    # Pr[r >= k] = p^k; draw by inverse transform on a geometric tail.
    u = rng.random()
    k = 0
    threshold = p
    while k < gamma and u < threshold:
        k += 1
        threshold *= p
    return k


def entries_per_message(slot_limit: int) -> int:
    """How many (index, id, value) triples fit in one message."""
    per = (slot_limit - 1) // 3  # one slot for the type tag
    return max(1, per)


def superround_length(gamma: int, slot_limit: int) -> int:
    """Engine rounds needed to ship a full table once."""
    return math.ceil((gamma + 1) / entries_per_message(slot_limit))


def block_duration(gamma: int, slot_limit: int) -> int:
    """Total engine rounds for one Construct_Block call."""
    return gamma * superround_length(gamma, slot_limit) + 1


class ConstructBlockCall:
    """One embedded Construct_Block execution.

    Parameters
    ----------
    gamma:
        Maximum radius ``γ`` (the paper fixes ``γ = 2·lg n`` for the
        inequality-8 bound; larger drives fairness toward 4).
    p:
        Geometric parameter of ``π`` (paper: 1/2).
    mode:
        ``"bit"`` — value flips parity each hop (FAIRBIPART);
        ``"color"`` — value propagates unchanged (COLORMIS).
    value:
        This node's candidate-leader value (its random bit or its
        uniformly drawn color).
    slot_limit:
        The network's per-message slot budget — determines chunking.
    """

    def __init__(
        self,
        gamma: int,
        participating: bool,
        peers: list[int],
        mode: Literal["bit", "color"],
        value: int,
        radius: int,
        slot_limit: int,
    ) -> None:
        if mode not in ("bit", "color"):
            raise ValueError(f"unknown mode {mode!r}")
        self.gamma = gamma
        self.participating = participating
        self.peers = list(peers)
        self.mode = mode
        self.radius = radius
        self._sr_len = superround_length(gamma, slot_limit)
        self._chunk = entries_per_message(slot_limit)
        self.duration = block_duration(gamma, slot_limit)
        # leader tables: L[i] = max ID seen with i range remaining
        self.table_id = np.full(gamma + 1, -1, dtype=np.int64)
        self.table_val = np.full(gamma + 1, -1, dtype=np.int64)
        self.table_id[radius] = -2  # placeholder; filled with own id on start
        self._own_value = int(value)
        self._pending: list[tuple[int, int, int]] = []
        self._outgoing: list[tuple[int, int, int]] = []
        # results
        self.in_block = False
        self.leader: int | None = None
        self.leader_value: int | None = None

    # ------------------------------------------------------------------ #
    def _merge_pending(self) -> None:
        """Fold buffered neighbor entries into the table (one hop)."""
        for i, vid, val in self._pending:
            j = i - 1
            if j < 0:
                continue
            new_val = (1 - val) if self.mode == "bit" else val
            if vid > self.table_id[j]:
                self.table_id[j] = vid
                self.table_val[j] = new_val
        self._pending.clear()

    def _serialize(self) -> None:
        """Snapshot the current table into the outgoing chunk queue."""
        live = np.nonzero(self.table_id >= 0)[0]
        self._outgoing = [
            (int(i), int(self.table_id[i]), int(self.table_val[i])) for i in live
        ]

    def _send_chunk(self, ctx: NodeContext) -> None:
        if not self._outgoing:
            return
        chunk, self._outgoing = (
            self._outgoing[: self._chunk],
            self._outgoing[self._chunk :],
        )
        flat: list[int] = []
        for entry in chunk:
            flat.extend(entry)
        for w in self.peers:
            ctx.send(w, {"type": "cb", "entries": flat})

    def _receive(self, inbox: list[Message]) -> None:
        for msg in inbox:
            p = msg.payload
            if p.get("type") != "cb":
                continue
            flat = p["entries"]
            for k in range(0, len(flat), 3):
                self._pending.append(
                    (int(flat[k]), int(flat[k + 1]), int(flat[k + 2]))
                )

    # ------------------------------------------------------------------ #
    def step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Advance one engine round (``r`` counts from 0 within the call)."""
        if not self.participating:
            return
        if r == 0:
            self.table_id[self.radius] = ctx.node_id
            self.table_val[self.radius] = self._own_value
        self._receive(inbox)
        if r % self._sr_len == 0:
            # Superround boundary: fold in everything heard during the
            # previous superround, then snapshot and start sending.
            self._merge_pending()
            if r == self.duration - 1:
                self._decide(ctx)
                return
            self._serialize()
        self._send_chunk(ctx)

    def _decide(self, ctx: NodeContext) -> None:
        best = int(self.table_id.max())
        if best < 0:  # cannot happen: own entry is always present
            return
        self.leader = best
        idx = np.nonzero(self.table_id == best)[0]
        top = int(idx.max())
        if top == 0:
            self.in_block = False  # boundary node
        else:
            self.in_block = True
            self.leader_value = int(self.table_val[top])
