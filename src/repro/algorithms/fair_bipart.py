"""FAIRBIPART — the fair ``O(log² n)`` MIS algorithm for bipartite graphs (§VI).

Stage program (Figure 3 of the paper):

====  ==================  ====================================================
idx   rounds              action
====  ==================  ====================================================
S0    γ·SR + 1            augmented ``Construct_Block``: every node draws a
                          radius from ``π`` and a bit ``b_v``; leader tables
                          flood for γ superrounds with the bit parity-flipped
                          per hop.  A node joins ``I`` iff it lands in a
                          block and its table bit for the leader is 1.
S1    5                   shared finalize tail: sync, (no-op on bipartite
                          graphs) violation fix, coverage; decided terminate.
S2    open-ended          LUBY'S on the uncovered remainder (maximality).
====  ==================  ====================================================

``SR = ceil((γ+1)/entries-per-message)`` is the superround length imposed
by the ``O(log n)``-bit message model; with ``γ = Θ(log n)`` the total is
``O(log² n)`` rounds (Lemma 15).  Theorem 13: with ``γ = 2·lg n`` and
``p = 1/2`` every node joins with probability ≥ 1/8, so the inequality
factor over bipartite graphs is at most 8.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.registry import register
from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from ..runtime.staged import StagedProcess
from .base import ProtocolAlgorithm
from .construct_block import (
    DEFAULT_P,
    ConstructBlockCall,
    block_duration,
    draw_radius,
)
from .finalize import FINALIZE_FIXED_ROUNDS, FinalizeTail

__all__ = ["FairBipart", "FairBipartProcess", "default_block_gamma"]


def default_block_gamma(n: int, c: float = 2.0) -> int:
    """The paper's ``γ = c·lg n`` (c = 2 for the inequality-8 bound)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, math.ceil(c * math.log2(max(n, 2))))


class FairBipartProcess(StagedProcess):
    """Per-vertex state machine for FAIRBIPART."""

    def __init__(self, gamma: int, p: float, slot_limit: int) -> None:
        super().__init__()
        self._gamma = gamma
        self._p = p
        self._slot_limit = slot_limit
        self._block: ConstructBlockCall | None = None
        self._tail: FinalizeTail | None = None
        self._in_i = False

    @property
    def used_luby(self) -> bool:
        """True when this node entered the maximalization Luby stage."""
        return self._tail is not None and self._tail.used_luby

    def stage_lengths(self, ctx: NodeContext) -> list[int | None]:
        return [
            block_duration(self._gamma, self._slot_limit),
            FINALIZE_FIXED_ROUNDS,
            None,
        ]

    def on_stage_start(self, ctx: NodeContext, stage: int) -> None:
        if stage == 0:
            self._block = ConstructBlockCall(
                gamma=self._gamma,
                participating=True,
                peers=list(ctx.neighbor_ids),
                mode="bit",
                value=int(ctx.rng.integers(0, 2)),
                radius=draw_radius(ctx.rng, self._gamma, self._p),
                slot_limit=self._slot_limit,
            )
        elif stage == 1:
            self._tail = FinalizeTail(in_set=self._in_i)

    def on_stage_round(
        self, ctx: NodeContext, stage: int, r: int, inbox: list[Message]
    ) -> None:
        if stage == 0:
            assert self._block is not None
            self._block.step(ctx, r, inbox)
            if r + 1 == self._block.duration:
                self._in_i = (
                    self._block.in_block and self._block.leader_value == 1
                )
        elif stage == 1:
            assert self._tail is not None
            self._tail.fixed_step(ctx, r, inbox)
        else:
            assert self._tail is not None
            self._tail.luby_step(ctx, r, inbox)


@register("fair_bipart")
class FairBipart(ProtocolAlgorithm):
    """FAIRBIPART as a :class:`~repro.core.result.MISAlgorithm`.

    Parameters
    ----------
    gamma_c:
        Constant ``c`` in ``γ = c·lg n``; the paper's analysis fixes 2.
        Larger values push the inequality bound from 8 toward 4 at a
        multiplicative round cost (end of §VI-C) — see the ablation bench.
    gamma:
        Explicit override for γ.
    p:
        Geometric parameter of the radius distribution (paper: 1/2).
    """

    def __init__(
        self,
        gamma_c: float = 2.0,
        gamma: int | None = None,
        p: float = DEFAULT_P,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.gamma_c = gamma_c
        self.gamma = gamma
        self.p = p

    @property
    def name(self) -> str:
        return "fair_bipart"

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> int:
        return (
            self.gamma
            if self.gamma is not None
            else default_block_gamma(graph.n, self.gamma_c)
        )

    def build_process(self, v: int, graph: StaticGraph, shared: int) -> NodeProcess:
        return FairBipartProcess(shared, self.p, self.slot_limit)
