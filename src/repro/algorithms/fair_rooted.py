"""FAIRROOTED — the fair ``O(log* n)`` MIS algorithm for rooted trees (§IV).

Stage program (Figure 1 of the paper, with synchronization made explicit):

====  ========  ==============================================================
idx   rounds    action
====  ========  ==============================================================
S0    2         every node tags itself with a uniform bit (the root also
                draws its virtual parent's tag) and shares the tag; a node
                with ``tag = 0`` whose parent's tag is 1 joins ``I``.
S1    2         membership sync: nodes in ``I`` or covered by ``I`` will
                terminate; everyone learns which neighbors remain.
S2    2         coverage sync; decided nodes terminate (1 / 0).
S3    CV        remaining nodes (an uncovered rooted subforest) run the
                Cole–Vishkin ``O(log* n)`` MIS of [3]; then terminate.
====  ========  ==============================================================

Theorem 3: every node joins with probability ≥ 1/4 (Stage 0 alone yields
``Pr[v ∈ I] = Pr[tag_parent = 1] · Pr[tag_v = 0] = 1/4``), so the
inequality factor over rooted trees is at most 4.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..graphs.graph import RootedTree, StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from ..runtime.staged import StagedProcess
from .base import ProtocolAlgorithm
from .cole_vishkin import CVEngine, cv_duration

__all__ = ["FairRooted", "FairRootedProcess"]


class FairRootedProcess(StagedProcess):
    """Per-vertex state machine for FAIRROOTED."""

    def __init__(self, parent: int | None, n: int) -> None:
        super().__init__()
        self._parent = parent
        self._n = n
        self._tag = 0
        self._in_i = False
        self._covered = False
        self._uncovered_nbrs: set[int] = set()
        self._cv: CVEngine | None = None

    def stage_lengths(self, ctx: NodeContext) -> list[int | None]:
        return [2, 2, 2, cv_duration(self._n - 1)]

    # -- S0: random tags ---------------------------------------------------- #
    def _stage0(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            self._tag = int(ctx.rng.integers(0, 2))
            ctx.broadcast({"type": "tag", "bit": self._tag})
        else:
            if self._parent is None:
                parent_tag = int(ctx.rng.integers(0, 2))  # virtual sentinel
            else:
                parent_tag = next(
                    int(m.payload["bit"])
                    for m in inbox
                    if m.payload.get("type") == "tag" and m.sender == self._parent
                )
            self._in_i = self._tag == 0 and parent_tag == 1

    # -- S1: membership sync -------------------------------------------------- #
    def _stage1(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            ctx.broadcast({"type": "mem", "in": self._in_i})
        else:
            nbr_in = any(
                m.payload["in"] for m in inbox if m.payload.get("type") == "mem"
            )
            self._covered = self._in_i or nbr_in

    # -- S2: coverage sync + termination -------------------------------------- #
    def _stage2(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            ctx.broadcast({"type": "status", "covered": self._covered})
        else:
            self._uncovered_nbrs = {
                m.sender
                for m in inbox
                if m.payload.get("type") == "status" and not m.payload["covered"]
            }
            if self._in_i:
                ctx.terminate(1)
            elif self._covered:
                ctx.terminate(0)

    # -- S3: Cole–Vishkin on the uncovered subforest ---------------------------- #
    def _stage3(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            cv_parent = (
                self._parent
                if self._parent is not None and self._parent in self._uncovered_nbrs
                else None
            )
            self._cv = CVEngine(
                parent=cv_parent,
                participating=True,
                peers=sorted(self._uncovered_nbrs),
                initial_color=ctx.node_id,
                max_initial_color=self._n - 1,
            )
        assert self._cv is not None
        self._cv.step(ctx, r, inbox)
        if r + 1 >= self._cv.duration:
            ctx.terminate(1 if self._cv.joined else 0)

    def on_stage_round(
        self, ctx: NodeContext, stage: int, r: int, inbox: list[Message]
    ) -> None:
        getattr(self, f"_stage{stage}")(ctx, r, inbox)


@register("fair_rooted")
class FairRooted(ProtocolAlgorithm):
    """FAIRROOTED as a :class:`~repro.core.result.MISAlgorithm`.

    Accepts an explicit :class:`RootedTree` (the model's parent-pointer
    input) or roots the tree deterministically from vertex 0.
    """

    def __init__(self, tree: RootedTree | None = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.tree = tree

    @property
    def name(self) -> str:
        return "fair_rooted"

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> np.ndarray:
        if self.tree is not None:
            if self.tree.graph is not graph and self.tree.graph != graph:
                raise ValueError("provided rooting does not match the input graph")
            return self.tree.parent
        return RootedTree.from_graph(graph).parent

    def build_process(
        self, v: int, graph: StaticGraph, shared: np.ndarray
    ) -> NodeProcess:
        parent = int(shared[v])
        return FairRootedProcess(parent if parent >= 0 else None, graph.n)
