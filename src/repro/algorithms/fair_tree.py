"""FAIRTREE — the fair ``O(log n)`` MIS algorithm for unrooted trees (§V).

Stage program (Figure 2 of the paper, with the synchronization rounds the
prose implies made explicit):

====  ========================  =============================================
idx   rounds                    action
====  ========================  =============================================
S0    2                         *Cut*: per-edge coin — the lower-ID endpoint
                                draws ``cut ∈ {0,1}`` u.a.r. and tells the
                                other endpoint.
S1    2γ+1                      CNTRLFAIRBIPART(D̂=γ) over ``cut=0`` edges →
                                candidate set ``I₁``.
S2    2                         sync: learn neighbors' ``I₁`` membership.
S3    2γ+1                      *Resolve*: CNTRLFAIRBIPART over the subgraph
                                induced by ``I₁``; members keep their seat
                                iff they join again → ``I₂``.
S4    3                         sync: learn neighbors' ``I₂`` membership and
                                which neighbors are still uncovered.
S5    2γ+1                      *Maximalize*: CNTRLFAIRBIPART over uncovered
                                nodes → ``I₃``.
S6    5                         *Fix* (shared :class:`FinalizeTail`): sync
                                ``I₃`` membership, drop independence
                                violations, resolve coverage; terminate
                                decided nodes.
S7    open-ended                Luby fallback on any still-uncovered nodes
                                (fires only when some CFB call failed, an
                                event of probability ε ≤ 1/n for default γ).
====  ========================  =============================================

Join probability: ≥ (1−ε)/4 for every node (Theorem 8), hence inequality
factor at most ``4/(1−ε)``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.registry import register
from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from ..runtime.staged import StagedProcess
from .base import ProtocolAlgorithm
from .cntrl_fair_bipart import CFBCall, cfb_duration
from .finalize import FINALIZE_FIXED_ROUNDS, FinalizeTail

__all__ = ["FairTree", "FairTreeProcess", "default_gamma"]


def default_gamma(n: int, c: float = 3.0) -> int:
    """Stage budget ``γ = ceil(c·log₂ n) + 2``.

    The Lemma 11 union bound needs ``2^{-γ}`` to beat the ``O(n²)`` paths
    per stage with slack ``1/(3n)``; ``c = 3`` makes ε < 1/n for n ≥ 2.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, math.ceil(c * math.log2(max(n, 2)))) + 2


class FairTreeProcess(StagedProcess):
    """Per-vertex state machine for FAIRTREE."""

    def __init__(self, gamma: int) -> None:
        super().__init__()
        self._gamma = gamma
        self._cut: dict[int, int] = {}  # neighbor -> cut bit
        self._cfb: CFBCall | None = None
        self._in_i = False  # current membership in the evolving set I
        self._nbr_mem: dict[int, bool] = {}  # neighbors' membership snapshot
        self._participate3 = False
        self._nbr_part3: set[int] = set()
        self._tail: FinalizeTail | None = None

    @property
    def used_fallback(self) -> bool:
        """True when the low-probability Luby fallback fired."""
        return self._tail is not None and self._tail.used_luby

    # ------------------------------------------------------------------ #
    def stage_lengths(self, ctx: NodeContext) -> list[int | None]:
        d = cfb_duration(self._gamma)
        return [2, d, 2, d, 3, d, FINALIZE_FIXED_ROUNDS, None]

    # ------------------------------------------------------------------ #
    def on_stage_start(self, ctx: NodeContext, stage: int) -> None:
        g = self._gamma
        if stage == 1:
            peers = [w for w, bit in self._cut.items() if bit == 0]
            self._cfb = CFBCall(g, participating=True, peers=peers)
        elif stage == 3:
            peers = [w for w, m in self._nbr_mem.items() if m]
            self._cfb = CFBCall(g, participating=self._in_i, peers=peers)
        elif stage == 5:
            peers = sorted(self._nbr_part3)
            self._cfb = CFBCall(g, participating=self._participate3, peers=peers)
        elif stage == 6:
            self._tail = FinalizeTail(in_set=self._in_i)

    def on_stage_round(
        self, ctx: NodeContext, stage: int, r: int, inbox: list[Message]
    ) -> None:
        handler = getattr(self, f"_stage{stage}")
        handler(ctx, r, inbox)

    # -- S0: edge-cut negotiation ------------------------------------------ #
    def _stage0(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            for w in ctx.neighbor_ids:
                if ctx.node_id < w:
                    bit = int(ctx.rng.integers(0, 2))
                    self._cut[w] = bit
                    ctx.send(w, {"type": "cut", "bit": bit})
        else:
            for msg in inbox:
                if msg.payload.get("type") == "cut":
                    self._cut[msg.sender] = int(msg.payload["bit"])

    # -- S1/S3/S5: the three CNTRLFAIRBIPART calls -------------------------- #
    def _run_cfb(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        assert self._cfb is not None
        self._cfb.step(ctx, r, inbox)

    def _stage1(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        self._run_cfb(ctx, r, inbox)
        if r + 1 == self._cfb.duration:
            self._in_i = self._cfb.joined  # I₁

    def _stage3(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        self._run_cfb(ctx, r, inbox)
        if r + 1 == self._cfb.duration and self._in_i:
            self._in_i = self._cfb.joined  # keep seat iff joined again → I₂

    def _stage5(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        self._run_cfb(ctx, r, inbox)
        if r + 1 == self._cfb.duration and self._participate3:
            self._in_i = self._in_i or self._cfb.joined  # I₃ = I₂ ∪ joined

    # -- S2: membership sync -------------------------------------------- #
    def _stage2(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            ctx.broadcast({"type": "mem", "in": self._in_i})
        else:
            self._nbr_mem = {
                msg.sender: bool(msg.payload["in"])
                for msg in inbox
                if msg.payload.get("type") == "mem"
            }

    # -- S4: membership sync + stage-3 participant discovery ----------------- #
    def _stage4(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        if r == 0:
            ctx.broadcast({"type": "mem", "in": self._in_i})
        elif r == 1:
            self._nbr_mem = {
                msg.sender: bool(msg.payload["in"])
                for msg in inbox
                if msg.payload.get("type") == "mem"
            }
            uncovered = not self._in_i and not any(self._nbr_mem.values())
            self._participate3 = uncovered
            ctx.broadcast({"type": "part3", "in": uncovered})
        else:
            self._nbr_part3 = {
                msg.sender
                for msg in inbox
                if msg.payload.get("type") == "part3" and msg.payload["in"]
            }

    # -- S6/S7: shared finalize tail (fix + coverage + Luby fallback) --------- #
    def _stage6(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        assert self._tail is not None
        self._tail.fixed_step(ctx, r, inbox)
        self._in_i = self._tail.in_set

    def _stage7(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        assert self._tail is not None
        self._tail.luby_step(ctx, r, inbox)


@register("fair_tree")
class FairTree(ProtocolAlgorithm):
    """FAIRTREE as a :class:`~repro.core.result.MISAlgorithm`.

    Parameters
    ----------
    gamma_c:
        Constant ``c`` in ``γ = ceil(c·log₂ n) + 2`` (default 3.0, the
        value that makes the Lemma 11 failure bound ε < 1/n).  Smaller
        values trade fairness for speed — see the ablation benchmarks.
    gamma:
        Explicit γ override (wins over ``gamma_c``).
    """

    def __init__(
        self,
        gamma_c: float = 3.0,
        gamma: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.gamma_c = gamma_c
        self.gamma = gamma

    @property
    def name(self) -> str:
        return "fair_tree"

    def prepare(self, graph: StaticGraph, rng: np.random.Generator) -> int:
        return self.gamma if self.gamma is not None else default_gamma(
            graph.n, self.gamma_c
        )

    def build_process(self, v: int, graph: StaticGraph, shared: int) -> NodeProcess:
        return FairTreeProcess(shared)
