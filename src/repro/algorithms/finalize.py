"""Shared closing stages for block-based algorithms (§VI–§VII).

Both FAIRBIPART and COLORMIS end the same way: the independent set built
from blocks is synchronized with neighbors, any independence violation is
dropped (a no-op on the graph families the algorithms target, but it makes
the implementations total on arbitrary inputs), coverage is resolved, and
the still-uncovered nodes run LUBY'S to restore maximality.

:class:`FinalizeTail` packages those rounds so host processes embed it as
their last two stages: a fixed 5-round sync/fix stage followed by an
open-ended Luby stage.
"""

from __future__ import annotations

from ..runtime.message import Message
from ..runtime.node import NodeContext
from .luby import LubyProcess

__all__ = ["FinalizeTail", "FINALIZE_FIXED_ROUNDS"]

#: Rounds consumed by the fixed part of the tail (mem sync + fix + status).
FINALIZE_FIXED_ROUNDS = 5


class FinalizeTail:
    """Embeddable finishing sequence.

    Fixed stage (5 rounds):

    ====  =====================================================
    r     action
    ====  =====================================================
    0     broadcast membership
    1     learn neighbors' membership; drop self on violation;
          broadcast fixed membership
    2     learn fixed memberships → coverage; broadcast status
    3     learn which neighbors remain uncovered
    4     terminate decided nodes (1 in set / 0 covered)
    ====  =====================================================

    Open stage: LUBY'S restricted to uncovered neighbors; host forwards
    rounds to :meth:`luby_step` until the engine terminates the node.
    """

    def __init__(self, in_set: bool) -> None:
        self.in_set = in_set
        self._nbr_mem: dict[int, bool] = {}
        self._covered = False
        self._active_nbrs: set[int] = set()
        self._luby: LubyProcess | None = None
        self.used_luby = False

    # -- fixed stage -------------------------------------------------------- #
    def fixed_step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Drive one of the 5 fixed rounds."""
        if r == 0:
            ctx.broadcast({"type": "mem", "in": self.in_set})
        elif r == 1:
            self._nbr_mem = {
                m.sender: bool(m.payload["in"])
                for m in inbox
                if m.payload.get("type") == "mem"
            }
            if self.in_set and any(self._nbr_mem.values()):
                self.in_set = False  # independence violation: step down
            ctx.broadcast({"type": "memfix", "in": self.in_set})
        elif r == 2:
            nbr_fixed = any(
                m.payload["in"]
                for m in inbox
                if m.payload.get("type") == "memfix"
            )
            self._covered = self.in_set or nbr_fixed
            ctx.broadcast({"type": "status", "covered": self._covered})
        elif r == 3:
            self._active_nbrs = {
                m.sender
                for m in inbox
                if m.payload.get("type") == "status" and not m.payload["covered"]
            }
        else:  # r == 4
            if self.in_set:
                ctx.terminate(1)
            elif self._covered:
                ctx.terminate(0)

    # -- open Luby stage ------------------------------------------------------ #
    def luby_step(self, ctx: NodeContext, r: int, inbox: list[Message]) -> None:
        """Drive the fallback/maximalization Luby rounds."""
        if r == 0:
            self.used_luby = True
            self._luby = LubyProcess(restrict_to=self._active_nbrs)
            self._luby.on_start(ctx)
        else:
            assert self._luby is not None
            self._luby.on_round(ctx, inbox)
