"""Luby's distributed MIS algorithm [13] — the paper's baseline.

Two classic variants are provided:

* ``"priority"`` — each iteration every active node draws a random
  priority and joins if it beats all active neighbors (ties broken by ID).
  This is the simple permutation formulation, terminates in ``O(log n)``
  rounds w.h.p., and is the variant the paper's simulator uses.
* ``"degree"`` — the original marking formulation: an active node marks
  itself with probability ``1/(2d(v))``; a mark survives unless a marked
  neighbor has higher degree (ties by ID); survivors join.  Degree-0 nodes
  join outright.

Both produce a correct MIS unconditionally; the paper's point is that
neither is *fair* — e.g. inequality ``Theta(n)`` on the star.
"""

from __future__ import annotations

from typing import Any

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..runtime.message import Message
from ..runtime.node import NodeContext, NodeProcess
from .base import ProtocolAlgorithm

__all__ = ["LubyMIS", "LubyProcess", "LubyDegreeProcess"]

#: Priority values are drawn from this many bits; collisions are broken by
#: node ID, so correctness never depends on uniqueness.
PRIORITY_BITS = 60


class LubyProcess(NodeProcess):
    """Per-vertex state machine for the priority variant.

    Iteration layout (3 rounds per iteration):

    ======  ================================================================
    round   action
    ======  ================================================================
    draw    process ``exit`` notices, draw priority, broadcast ``prio``
    decide  if own (priority, id) beats all active neighbors: broadcast
            ``join`` and terminate(1)
    clean   if a neighbor joined: broadcast ``exit`` and terminate(0)
    ======  ================================================================
    """

    def __init__(self, restrict_to: set[int] | None = None) -> None:
        #: neighbors still competing; ``None`` means "all my neighbors".
        self._active: set[int] | None = (
            set(restrict_to) if restrict_to is not None else None
        )
        self._phase = 0  # 0=draw, 1=decide, 2=clean
        self._priority = 0

    # -- helpers --------------------------------------------------------- #
    def _active_set(self, ctx: NodeContext) -> set[int]:
        if self._active is None:
            self._active = set(ctx.neighbor_ids)
        return self._active

    def _send_all_active(self, ctx: NodeContext, payload: Any) -> None:
        for w in self._active_set(ctx):
            ctx.send(w, payload)

    # -- lifecycle -------------------------------------------------------- #
    def on_start(self, ctx: NodeContext) -> None:
        self._begin_iteration(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        if self._phase == 1:
            self._decide(ctx, inbox)
        elif self._phase == 2:
            self._clean(ctx, inbox)
        else:
            self._begin_iteration(ctx, inbox)

    # -- phases ------------------------------------------------------------ #
    def _begin_iteration(self, ctx: NodeContext, inbox: list[Message]) -> None:
        active = self._active_set(ctx)
        for msg in inbox:
            if msg.payload.get("type") == "exit":
                active.discard(msg.sender)
        self._priority = int(ctx.rng.integers(0, 1 << PRIORITY_BITS))
        self._send_all_active(ctx, {"type": "prio", "value": self._priority})
        self._phase = 1

    def _decide(self, ctx: NodeContext, inbox: list[Message]) -> None:
        mine = (self._priority, ctx.node_id)
        beaten = False
        for msg in inbox:
            if msg.payload.get("type") != "prio":
                continue
            theirs = (int(msg.payload["value"]), msg.sender)
            if theirs > mine:
                beaten = True
        if not beaten:
            self._send_all_active(ctx, {"type": "join"})
            ctx.terminate(1)
            return
        self._phase = 2

    def _clean(self, ctx: NodeContext, inbox: list[Message]) -> None:
        if any(msg.payload.get("type") == "join" for msg in inbox):
            self._send_all_active(ctx, {"type": "exit"})
            ctx.terminate(0)
            return
        # Idle for the remainder of this round; the *next* round starts a
        # fresh iteration and will see the exit notices sent this round.
        self._phase = 0


class LubyDegreeProcess(NodeProcess):
    """Per-vertex state machine for the ``1/(2d)`` marking variant.

    Iteration layout (4 rounds): exchange current degrees; mark with
    probability ``1/(2d)`` and announce (marked, degree); resolve mark
    conflicts in favour of the higher (degree, id); joiners announce and
    covered nodes exit.
    """

    def __init__(self, restrict_to: set[int] | None = None) -> None:
        self._active: set[int] | None = (
            set(restrict_to) if restrict_to is not None else None
        )
        self._phase = 0
        self._marked = False
        self._degree = 0
        self._neighbor_degrees: dict[int, int] = {}

    def _active_set(self, ctx: NodeContext) -> set[int]:
        if self._active is None:
            self._active = set(ctx.neighbor_ids)
        return self._active

    def _send_all_active(self, ctx: NodeContext, payload: Any) -> None:
        for w in self._active_set(ctx):
            ctx.send(w, payload)

    def on_start(self, ctx: NodeContext) -> None:
        self._exchange_degrees(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        if self._phase == 1:
            self._mark(ctx, inbox)
        elif self._phase == 2:
            self._resolve(ctx, inbox)
        elif self._phase == 3:
            self._clean(ctx, inbox)
        else:
            self._exchange_degrees(ctx, inbox)

    def _exchange_degrees(self, ctx: NodeContext, inbox: list[Message]) -> None:
        active = self._active_set(ctx)
        for msg in inbox:
            if msg.payload.get("type") == "exit":
                active.discard(msg.sender)
        self._degree = len(active)
        if self._degree == 0:
            ctx.terminate(1)
            return
        self._send_all_active(ctx, {"type": "deg", "value": self._degree})
        self._phase = 1

    def _mark(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._neighbor_degrees = {
            msg.sender: int(msg.payload["value"])
            for msg in inbox
            if msg.payload.get("type") == "deg"
        }
        self._marked = bool(ctx.rng.random() < 1.0 / (2.0 * self._degree))
        self._send_all_active(
            ctx, {"type": "mark", "marked": self._marked, "degree": self._degree}
        )
        self._phase = 2

    def _resolve(self, ctx: NodeContext, inbox: list[Message]) -> None:
        if self._marked:
            mine = (self._degree, ctx.node_id)
            for msg in inbox:
                if msg.payload.get("type") == "mark" and msg.payload["marked"]:
                    theirs = (int(msg.payload["degree"]), msg.sender)
                    if theirs > mine:
                        self._marked = False
                        break
        if self._marked:
            self._send_all_active(ctx, {"type": "join"})
            ctx.terminate(1)
            return
        self._phase = 3

    def _clean(self, ctx: NodeContext, inbox: list[Message]) -> None:
        if any(msg.payload.get("type") == "join" for msg in inbox):
            self._send_all_active(ctx, {"type": "exit"})
            ctx.terminate(0)
            return
        # Idle; next round re-enters the degree exchange with the exit
        # notices sent this round available in its inbox.
        self._phase = 0


@register("luby")
class LubyMIS(ProtocolAlgorithm):
    """Luby's MIS as a :class:`~repro.core.result.MISAlgorithm`.

    Parameters
    ----------
    variant:
        ``"priority"`` (default; the paper's simulated baseline) or
        ``"degree"``.
    """

    def __init__(self, variant: str = "priority", **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if variant not in ("priority", "degree"):
            raise ValueError(f"unknown Luby variant {variant!r}")
        self.variant = variant

    @property
    def name(self) -> str:
        return "luby" if self.variant == "priority" else "luby_degree"

    def build_process(self, v: int, graph: StaticGraph, shared: Any) -> NodeProcess:
        if self.variant == "priority":
            return LubyProcess()
        return LubyDegreeProcess()
