"""Random-ID wrapper: fairness of deterministic algorithms (§II remark).

Section II observes that for a *fixed* ID assignment a deterministic
algorithm (e.g. Cole–Vishkin) has infinite inequality factor on any
connected graph with n > 1 — but "if we assume ... the unique IDs used by
the deterministic algorithm are assigned according to some probability
distribution, its fairness becomes once again non-trivial."

:class:`RandomizedIDs` realizes that setting: each run relabels the
vertices by a uniformly random permutation before handing the graph to
the wrapped algorithm, and maps the output back.  Wrapping
:class:`~repro.algorithms.cole_vishkin.ColeVishkinMIS` this way yields a
randomized MIS algorithm whose fairness can be measured like any other —
the companion experiment shows it is *not* fair (position in the tree
still matters even with random IDs).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..core.result import MISAlgorithm, MISResult
from ..graphs.graph import StaticGraph

__all__ = ["RandomizedIDs", "make_randomized_cole_vishkin"]


class RandomizedIDs:
    """Wrap any MIS algorithm with per-run uniformly random vertex IDs."""

    def __init__(self, inner: MISAlgorithm) -> None:
        self.inner = inner
        self._cache: dict[int, StaticGraph] = {}

    @property
    def name(self) -> str:
        return f"{self.inner.name}+random_ids"

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        perm = rng.permutation(graph.n)  # perm[v] = new label of v
        if graph.m:
            relabeled = StaticGraph.from_edges(
                graph.n, ((int(perm[u]), int(perm[v])) for u, v in graph.edges)
            )
        else:
            relabeled = graph
        inner_result = self.inner.run(relabeled, rng)
        member = np.zeros(graph.n, dtype=bool)
        member[:] = inner_result.membership[perm]
        return MISResult(
            membership=member,
            rounds=inner_result.rounds,
            metrics=inner_result.metrics,
            info={**dict(inner_result.info), "wrapper": "random_ids"},
        )


@register("cole_vishkin_random_ids")
def make_randomized_cole_vishkin(**kwargs: Any) -> RandomizedIDs:
    """Cole–Vishkin under random ID assignment (the §II setting)."""
    from .cole_vishkin import ColeVishkinMIS

    return RandomizedIDs(ColeVishkinMIS(**kwargs))
