"""Fairness estimation, validity checks, CDFs, and theory constants."""

from .cdf import CDF, cdf_spread_stats, empirical_cdf
from .fairness import (
    JoinEstimate,
    estimate_from_counts,
    inequality_factor,
    wilson_interval,
)
from .montecarlo import (
    TrialPool,
    estimate_join_probabilities,
    normalize_jobs,
    run_trials,
)
from .theory import (
    colormis_min_join_probability,
    cone_inequality_lower_bound,
    fairbipart_block_probability,
    fairbipart_inequality_bound,
    fairbipart_min_join_probability,
    fairrooted_inequality_bound,
    fairtree_epsilon_bound,
    fairtree_inequality_bound,
    fairtree_min_join_probability,
    log_star,
    star_luby_center_probability,
    star_luby_inequality,
)
from .workload import DutyReport, expected_duty_spread, simulate_duty
from .validation import (
    coverage_mask,
    is_independent_set,
    is_maximal_independent_set,
    violating_edges,
)

__all__ = [
    "CDF",
    "cdf_spread_stats",
    "empirical_cdf",
    "JoinEstimate",
    "estimate_from_counts",
    "inequality_factor",
    "wilson_interval",
    "estimate_join_probabilities",
    "run_trials",
    "normalize_jobs",
    "TrialPool",
    "colormis_min_join_probability",
    "cone_inequality_lower_bound",
    "fairbipart_block_probability",
    "fairbipart_inequality_bound",
    "fairbipart_min_join_probability",
    "fairrooted_inequality_bound",
    "fairtree_epsilon_bound",
    "fairtree_inequality_bound",
    "fairtree_min_join_probability",
    "log_star",
    "star_luby_center_probability",
    "star_luby_inequality",
    "coverage_mask",
    "is_independent_set",
    "is_maximal_independent_set",
    "violating_edges",
    "DutyReport",
    "expected_duty_spread",
    "simulate_duty",
]
