"""Terminal rendering of the evaluation artifacts (no plotting deps).

The paper's Figure 4 is a set of CDF curves; this module renders the same
series as Unicode line charts so the reproduction remains dependency-free
(matplotlib is deliberately not required).  Used by the CLI and the
figure-4 example.
"""

from __future__ import annotations

import numpy as np

from .cdf import CDF

__all__ = ["render_cdf", "render_histogram", "render_series", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """One-line Unicode sparkline of a numeric sequence.

    Each value maps to one of eight block glyphs between *lo* and *hi*
    (defaulting to the sequence's own range); a finite value is never
    blank — the range minimum renders as ``▁`` — while non-finite
    values render as ``·``.  A constant series renders at half height
    rather than flat-zero, so "unchanged" is visually distinct from
    "empty".
    """
    vals = [float(v) for v in values]
    finite = [v for v in vals if np.isfinite(v)]
    if not finite:
        return "·" * len(vals)
    bottom = min(finite) if lo is None else float(lo)
    top = max(finite) if hi is None else float(hi)
    span = top - bottom
    cells = []
    for v in vals:
        if not np.isfinite(v):
            cells.append("·")
            continue
        if span <= 0:
            cells.append(_BLOCKS[len(_BLOCKS) // 2])
            continue
        frac = min(1.0, max(0.0, (v - bottom) / span))
        cells.append(_BLOCKS[1 + int(round(frac * (len(_BLOCKS) - 2)))])
    return "".join(cells)


def render_series(
    curves: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "F(x)",
) -> str:
    """Render one or more (x, y) curves into a character grid.

    ``curves`` maps a label to monotone (x, y) arrays with y in [0, 1].
    Each curve is drawn with its own glyph; axes are annotated with the
    global x-range.
    """
    if not curves:
        raise ValueError("need at least one curve")
    glyphs = "*o+x#@"
    xmin = min(float(np.min(x)) for x, _ in curves.values())
    xmax = max(float(np.max(x)) for x, _ in curves.values())
    span = max(xmax - xmin, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for (label, (x, y)), glyph in zip(curves.items(), glyphs):
        xs = np.asarray(x, dtype=np.float64)
        ys = np.asarray(y, dtype=np.float64)
        cols = np.clip(((xs - xmin) / span * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((1.0 - ys) * (height - 1)).astype(int), 0, height - 1)
        for c, r in zip(cols.tolist(), rows.tolist()):
            grid[r][c] = glyph
    lines = ["1.0 ┤" + "".join(row) for row in grid[:1]]
    for row in grid[1:-1]:
        lines.append("    │" + "".join(row))
    lines.append("0.0 ┤" + "".join(grid[-1]))
    lines.append("    └" + "─" * width)
    lines.append(f"     {xmin:<10.3g}{x_label:^{max(width - 20, 4)}}{xmax:>10.3g}")
    legend = "   ".join(
        f"{glyph} {label}" for (label, _), glyph in zip(curves.items(), glyphs)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


def render_cdf(cdfs: dict[str, CDF], width: int = 64, height: int = 16) -> str:
    """Render empirical CDFs (the Figure 4 panels) as a line chart."""
    curves = {label: (c.x, c.y) for label, c in cdfs.items()}
    return render_series(
        curves, width=width, height=height, x_label="join frequency"
    )


def render_histogram(
    values: np.ndarray, bins: int = 32, width: int | None = None
) -> str:
    """One-line sparkline histogram of per-node join frequencies."""
    v = np.asarray(values, dtype=np.float64)
    counts, _ = np.histogram(v, bins=bins, range=(0.0, 1.0))
    top = max(int(counts.max()), 1)
    cells = [
        _BLOCKS[min(int(np.ceil(c / top * (len(_BLOCKS) - 1))), len(_BLOCKS) - 1)]
        for c in counts
    ]
    return "0.0 |" + "".join(cells) + "| 1.0"
