"""Empirical CDFs of per-node join frequencies (Figure 4).

Figure 4 plots, for each algorithm/tree pair, the cumulative distribution
of "fraction of the 10,000 runs in which the node was in the MIS" over all
nodes.  :func:`empirical_cdf` produces the plotted series;
:func:`cdf_spread_stats` summarizes the visual claims the paper makes
about the curves (FAIRTREE "compact", Luby "diffuse") as testable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CDF", "empirical_cdf", "cdf_spread_stats"]


@dataclass(frozen=True)
class CDF:
    """An empirical CDF: ``fraction <= x`` sampled at the data points."""

    x: np.ndarray
    y: np.ndarray

    def evaluate(self, q: float) -> float:
        """CDF value at ``q`` (right-continuous step function)."""
        idx = np.searchsorted(self.x, q, side="right")
        if idx == 0:
            return 0.0
        return float(self.y[idx - 1])

    def quantile(self, level: float) -> float:
        """Smallest x with CDF(x) >= level."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        idx = np.searchsorted(self.y, level, side="left")
        idx = min(idx, len(self.x) - 1)
        return float(self.x[idx])


def empirical_cdf(values: np.ndarray) -> CDF:
    """Empirical CDF of *values* (per-node join frequencies)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        raise ValueError("need at least one value")
    y = np.arange(1, v.size + 1, dtype=np.float64) / v.size
    return CDF(x=v, y=y)


def cdf_spread_stats(values: np.ndarray) -> dict[str, float]:
    """Spread summary backing the Figure 4 narrative.

    ``iqr``/``range`` quantify how "compact" the distribution is;
    ``frac_below_0.25`` counts nodes that rarely make the MIS (the paper's
    "nearly 10% of nodes enter the MIS only 10% of the time" observation
    maps to these tail fractions).
    """
    v = np.asarray(values, dtype=np.float64)
    q25, q50, q75 = np.percentile(v, [25, 50, 75])
    return {
        "min": float(v.min()),
        "max": float(v.max()),
        "median": float(q50),
        "iqr": float(q75 - q25),
        "range": float(v.max() - v.min()),
        "frac_below_0.25": float(np.mean(v < 0.25)),
        "frac_below_0.10": float(np.mean(v < 0.10)),
        "frac_above_0.90": float(np.mean(v > 0.90)),
    }
