"""Join-probability estimation and the inequality factor (Definition 1).

The paper's evaluation estimates ``P_{A,G}(v)`` as the fraction of 10,000
runs in which ``v`` joined, then reports ``F_A(G) = max_u P(u) / min_v
P(v)``.  This module provides that plug-in estimator plus the statistical
scaffolding a careful reproduction needs:

* Wilson confidence intervals on each node's join probability;
* a *conservative* inequality estimate (lower bound of the max over upper
  bound of the min) so tests can assert theorems without flaking;
* division-by-zero → ``inf`` exactly as Definition 1 prescribes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import numpy as np

__all__ = [
    "JoinEstimate",
    "estimate_from_counts",
    "inequality_factor",
    "wilson_interval",
    "z_for_confidence",
]


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level.

    ``z_for_confidence(0.95) == 1.959…`` — the multiplier the Wilson
    intervals and the sequential stopping rules share, derived once here
    instead of hard-coding 1.96 at every call site.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return statistics.NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: np.ndarray, trials: int, z: float = 1.96
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Wilson score interval for binomial proportions."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    k = np.asarray(successes, dtype=np.float64)
    p = k / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return np.clip(center - half, 0.0, 1.0), np.clip(center + half, 0.0, 1.0)


def inequality_factor(probabilities: np.ndarray) -> float:
    """``max / min`` of join probabilities; 0/0 and x/0 evaluate to inf.

    (Definition 1 of the paper defines division by zero as infinity.)
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.size == 0:
        raise ValueError("need at least one node")
    lo = float(p.min())
    hi = float(p.max())
    if lo <= 0.0:
        return float("inf")
    return hi / lo


@dataclass(frozen=True)
class JoinEstimate:
    """Monte-Carlo estimate of per-node join probabilities.

    Attributes
    ----------
    counts:
        Per-node join counts over ``trials`` runs.
    trials:
        Number of Monte-Carlo runs.
    """

    counts: np.ndarray
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        c = np.asarray(self.counts, dtype=np.int64)
        if c.min(initial=0) < 0 or c.max(initial=0) > self.trials:
            raise ValueError("counts out of [0, trials]")
        object.__setattr__(self, "counts", c)

    @property
    def probabilities(self) -> np.ndarray:
        """Plug-in estimate ``counts / trials`` (what the paper plots)."""
        return self.counts / self.trials

    @property
    def inequality(self) -> float:
        """Plug-in inequality factor (the paper's Table I statistic)."""
        return inequality_factor(self.probabilities)

    def inequality_bounds(self, z: float = 1.96) -> tuple[float, float]:
        """``(lower, upper)`` bounds on the inequality factor.

        Lower: smallest max/min compatible with the Wilson intervals;
        upper: largest.  Tests assert theorem bounds against the *lower*
        bound (can the data refute the theorem?) and sanity against the
        upper.
        """
        lo, hi = wilson_interval(self.counts, self.trials, z)
        max_lo = float(lo.max())
        min_hi = float(hi.min())
        max_hi = float(hi.max())
        min_lo = float(lo.min())
        lower = max_lo / min_hi if min_hi > 0 else float("inf")
        upper = max_hi / min_lo if min_lo > 0 else float("inf")
        return max(1.0, lower), upper

    def halfwidths(self, z: float = 1.96) -> np.ndarray:
        """Per-node Wilson CI half-widths at critical value *z*.

        The inputs (counts, trials) are already here, so callers — the
        sequential stopping rules, the CLI summary, tests — read the
        half-widths from the estimate instead of re-deriving them ad hoc
        from :func:`wilson_interval`.
        """
        lo, hi = wilson_interval(self.counts, self.trials, z)
        return (hi - lo) / 2.0

    def max_halfwidth(self, z: float = 1.96) -> float:
        """Widest per-node CI half-width — the precision bottleneck node."""
        return float(self.halfwidths(z).max())

    def inequality_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the inequality-factor interval.

        ``(upper - lower) / 2`` of :meth:`inequality_bounds`; ``inf``
        while any node's interval still touches probability 0 (the ratio
        is then unbounded above, exactly as Definition 1 prescribes).
        """
        lower, upper = self.inequality_bounds(z)
        if not np.isfinite(upper):
            return float("inf")
        return (upper - lower) / 2.0

    @property
    def min_probability(self) -> float:
        """Smallest per-node join-probability estimate."""
        return float(self.probabilities.min())

    @property
    def max_probability(self) -> float:
        """Largest per-node join-probability estimate."""
        return float(self.probabilities.max())

    def merge(self, other: "JoinEstimate") -> "JoinEstimate":
        """Pool two independent estimates of the same graph/algorithm."""
        if self.counts.shape != other.counts.shape:
            raise ValueError("estimates cover different node sets")
        return JoinEstimate(
            counts=self.counts + other.counts,
            trials=self.trials + other.trials,
        )


def estimate_from_counts(counts: np.ndarray, trials: int) -> JoinEstimate:
    """Build a :class:`JoinEstimate` from raw join counts.

    The returned estimate exposes the CI half-widths its inputs already
    determine — :meth:`JoinEstimate.halfwidths`,
    :meth:`JoinEstimate.max_halfwidth`, and
    :meth:`JoinEstimate.inequality_halfwidth` — so callers never need to
    re-derive them from :func:`wilson_interval` by hand.
    """
    return JoinEstimate(counts=np.asarray(counts), trials=trials)
