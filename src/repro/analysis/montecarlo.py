"""Monte-Carlo trial running (serial and multiprocess).

The evaluation of Section IX is embarrassingly parallel: independent runs
of a randomized algorithm on a fixed graph.  Seeds are spawned with
``SeedSequence.spawn`` (the collision-free idiom for process pools) and
each worker accumulates a join-count vector; counts are summed into a
:class:`~repro.analysis.fairness.JoinEstimate`.

Workers receive the algorithm and graph once via the pool initializer —
not per task — so large graphs are pickled a single time per process.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..core.result import MISAlgorithm
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike, spawn_trial_seeds
from .fairness import JoinEstimate
from .validation import is_maximal_independent_set

__all__ = ["run_trials", "estimate_join_probabilities"]

# Worker-process state installed by the pool initializer.
_WORKER: dict[str, Any] = {}


def _init_worker(algorithm: MISAlgorithm, graph: StaticGraph) -> None:
    _WORKER["algorithm"] = algorithm
    _WORKER["graph"] = graph


def _run_chunk(seeds: list[np.random.SeedSequence]) -> np.ndarray:
    algorithm: MISAlgorithm = _WORKER["algorithm"]
    graph: StaticGraph = _WORKER["graph"]
    counts = np.zeros(graph.n, dtype=np.int64)
    for seed in seeds:
        rng = np.random.default_rng(seed)
        counts += algorithm.run(graph, rng).membership
    return counts


def run_trials(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    n_jobs: int = 1,
    validate_runs: bool = False,
) -> JoinEstimate:
    """Run *trials* independent executions and tally per-node joins.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` runs inline, ``0`` or negative uses the
        CPU count.
    validate_runs:
        Assert independence + maximality of every run (serial path only;
        algorithms constructed with ``validate=True`` already do this
        internally).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    seeds = spawn_trial_seeds(seed, trials)
    if n_jobs == 1 or trials < 8:
        counts = np.zeros(graph.n, dtype=np.int64)
        for s in seeds:
            rng = np.random.default_rng(s)
            member = algorithm.run(graph, rng).membership
            if validate_runs and not is_maximal_independent_set(graph, member):
                raise AssertionError(
                    f"{algorithm.name} produced an invalid MIS"
                )
            counts += member
        return JoinEstimate(counts=counts, trials=trials)

    import multiprocessing as mp

    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    n_jobs = min(n_jobs, trials)
    chunk_count = n_jobs * 4
    chunks = [seeds[i::chunk_count] for i in range(chunk_count)]
    chunks = [c for c in chunks if c]
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    with ctx.Pool(
        processes=n_jobs,
        initializer=_init_worker,
        initargs=(algorithm, graph),
    ) as pool:
        partials = pool.map(_run_chunk, chunks)
    counts = np.sum(partials, axis=0).astype(np.int64)
    return JoinEstimate(counts=counts, trials=trials)


def estimate_join_probabilities(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    n_jobs: int = 1,
) -> np.ndarray:
    """Convenience: per-node join-probability estimates as an array."""
    return run_trials(
        algorithm, graph, trials, seed=seed, n_jobs=n_jobs
    ).probabilities
