"""Monte-Carlo trial running: reusable pool primitives + ``run_trials``.

The evaluation of Section IX is embarrassingly parallel: independent runs
of a randomized algorithm on a fixed graph.  Seeds are spawned with
``SeedSequence.spawn`` (the collision-free idiom for process pools) and
each worker accumulates a join-count vector; counts are summed into a
:class:`~repro.analysis.fairness.JoinEstimate`.

This module provides the layered primitives the estimation service
(:mod:`repro.service`) builds on:

* :func:`normalize_jobs` — the **single source of truth** for ``n_jobs``
  semantics, shared by ``run_trials``, the CLI ``--jobs`` flag, the
  experiment harnesses, and the service;
* :class:`TrialPool` — a persistent worker pool bound to one
  ``(algorithm, graph)`` pair.  Workers are initialized once (the
  algorithm and graph are pickled a single time per process, not per
  task) and reused across as many chunk requests as the owner likes;
* :func:`run_trials` — the classic cold-path API: build a pool, run one
  request, tear the pool down.

``n_jobs`` semantics (canonical)
--------------------------------
``1``
    run inline in the calling process (no subprocesses);
``0`` or negative
    use all available cores (``os.cpu_count()``);
``k > 1``
    use ``k`` worker processes.

Every entry point that accepts a job count (``run_trials(n_jobs=...)``,
``python -m repro ... --jobs``, experiment harness ``n_jobs=``,
``Estimator(n_jobs=...)``) funnels through :func:`normalize_jobs`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from ..core.result import MISAlgorithm
from ..graphs.graph import StaticGraph
from ..graphs.shm import (
    GraphShmHandle,
    ShmUnavailable,
    attach_graph,
    export_graph,
    shm_enabled,
)
from ..obs.bridge import trial_rounds_histogram
from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from ..obs.remote import (
    RemoteTelemetry,
    TraceContext,
    current_trace_context,
    new_chunk_id,
    run_chunk_with_telemetry,
    telemetry_enabled,
)
from ..obs.spans import span
from ..runtime.rng import SeedLike, spawn_trial_seeds
from .fairness import JoinEstimate
from .validation import is_maximal_independent_set

__all__ = [
    "run_trials",
    "estimate_join_probabilities",
    "normalize_jobs",
    "resolve_start_method",
    "TrialPool",
    "chunk_counts",
    "vector_chunk_counts",
]

# Worker-process state installed by the pool initializer.
_WORKER: dict[str, Any] = {}

_log = get_logger("repro.pool")


def normalize_jobs(n_jobs: int, limit: int | None = None) -> int:
    """Resolve an ``n_jobs`` request to an effective worker count.

    ``1`` means inline (no subprocesses); ``0`` or negative means all
    available cores; ``k > 1`` means ``k`` workers.  When *limit* is given
    (e.g. the trial count) the result is clamped to it, never below 1.
    """
    jobs = (os.cpu_count() or 1) if n_jobs <= 0 else int(n_jobs)
    if limit is not None:
        jobs = min(jobs, max(1, int(limit)))
    return max(1, jobs)


def chunk_counts(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    seeds: Sequence[np.random.SeedSequence],
    validate_runs: bool = False,
) -> np.ndarray:
    """Join counts over one chunk of per-trial seeds (exact stream layout).

    This is *the* unit of work: each trial gets its own generator built
    from its own spawned seed, so any partition of the seed list — serial,
    strided across a pool, or interleaved by the service scheduler —
    produces bit-identical totals.
    """
    counts = np.zeros(graph.n, dtype=np.int64)
    # Registry-family resolution is hoisted out of the per-trial loop and
    # observations are flushed in one batch per chunk: the per-trial cost
    # is a list append, keeping instrumentation under the benchmarked 5%
    # overhead bound.
    rounds_hist = trial_rounds_histogram(algorithm.name)
    trial_rounds: list[int] = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        result = algorithm.run(graph, rng)
        member = result.membership
        if validate_runs and not is_maximal_independent_set(graph, member):
            raise AssertionError(f"{algorithm.name} produced an invalid MIS")
        if rounds_hist is not None:
            rounds = result.rounds or result.info.get("iterations", 0)
            if rounds:
                trial_rounds.append(int(rounds))
        counts += member
    if rounds_hist is not None:
        rounds_hist.observe_many(trial_rounds)
    return counts


def vector_chunk_counts(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    seed: np.random.SeedSequence,
    trials: int,
) -> np.ndarray:
    """Join counts over *trials* runs via the disjoint-union batched kernel.

    Statistically equivalent to :func:`chunk_counts` (same per-trial
    distribution, different stream layout) and several times faster on
    small/medium graphs.  Only available for algorithms with a registered
    vector runner — see :func:`repro.fast.batched.vector_runner_for`.
    """
    # Imported lazily: repro.fast.batched imports repro.analysis.fairness,
    # and this module is imported during repro.analysis package init.
    from ..fast.batched import vector_runner_for

    runner = vector_runner_for(algorithm)
    if runner is None:
        raise ValueError(
            f"no vectorized runner for algorithm {algorithm.name!r}"
        )
    return runner(algorithm, graph, trials, seed)


def resolve_start_method(context: str | None = None) -> str | None:
    """Resolve the multiprocessing start method for trial pools.

    Precedence: an explicit *context* argument, then the ``REPRO_MP_START``
    environment variable (``fork``/``spawn``/``forkserver``), then ``fork``
    where the platform offers it (cheapest: initargs are inherited, not
    pickled).  ``None`` falls through to the platform default.
    """
    if context is not None:
        return context
    import multiprocessing as mp

    available = mp.get_all_start_methods()
    requested = os.environ.get("REPRO_MP_START", "").strip().lower()
    if requested:
        if requested not in available:
            raise ValueError(
                f"REPRO_MP_START={requested!r} is not available here "
                f"(choices: {', '.join(available)})"
            )
        return requested
    return "fork" if "fork" in available else None


def _init_worker(algorithm: MISAlgorithm, graph: StaticGraph) -> None:
    _WORKER["algorithm"] = algorithm
    _WORKER["graph"] = graph


def _init_worker_shm(algorithm: MISAlgorithm, handle: GraphShmHandle) -> None:
    """Pool initializer for the shm transport: attach instead of unpickle."""
    _WORKER["algorithm"] = algorithm
    _WORKER["graph"] = attach_graph(handle)


def _run_chunk(seeds: list[np.random.SeedSequence]) -> np.ndarray:
    return chunk_counts(_WORKER["algorithm"], _WORKER["graph"], seeds)


def _run_vector_chunk(spec: tuple[np.random.SeedSequence, int]) -> np.ndarray:
    seed, trials = spec
    return vector_chunk_counts(
        _WORKER["algorithm"], _WORKER["graph"], seed, trials
    )


# Telemetry-carrying variants: the payload travels as a *packet*
# ``(TraceContext, chunk_id, payload)`` and the result comes back as a
# ChunkResult with the worker's metric delta + span records piggybacked
# (see repro.obs.remote).  Separate top-level functions — not a flag —
# so the non-telemetry wire format stays bit-compatible.
def _run_chunk_t(packet: tuple) -> Any:
    ctx, chunk_id, seeds = packet
    algorithm = _WORKER["algorithm"]
    return run_chunk_with_telemetry(
        lambda: chunk_counts(algorithm, _WORKER["graph"], seeds),
        ctx,
        chunk_id,
        algorithm=algorithm.name,
        trials=len(seeds),
        vectorized=False,
    )


def _run_vector_chunk_t(packet: tuple) -> Any:
    ctx, chunk_id, spec = packet
    seed, trials = spec
    algorithm = _WORKER["algorithm"]
    return run_chunk_with_telemetry(
        lambda: vector_chunk_counts(algorithm, _WORKER["graph"], seed, trials),
        ctx,
        chunk_id,
        algorithm=algorithm.name,
        trials=trials,
        vectorized=True,
    )


class TrialPool:
    """A persistent worker pool bound to one ``(algorithm, graph)`` pair.

    ``workers`` follows the canonical :func:`normalize_jobs` semantics.
    With one effective worker the pool runs inline — no subprocesses, no
    IPC — which on few-core hosts is strictly faster than oversubscribing.
    With more, a ``multiprocessing`` pool is created once and the graph
    travels over the zero-copy shm transport by default: its arrays are
    exported once into shared memory (:mod:`repro.graphs.shm`) and each
    worker's initializer receives only the O(1)-size handle, attaching
    read-only views.  When shared memory is unavailable (or disabled via
    ``shm=False`` / ``REPRO_SHM=0``) the pool falls back to pickling the
    graph into each worker, which is what amortizes spin-up across
    service requests either way.
    """

    def __init__(
        self,
        algorithm: MISAlgorithm,
        graph: StaticGraph,
        workers: int = 1,
        context: str | None = None,
        shm: bool = True,
        telemetry: RemoteTelemetry | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.graph = graph
        self.workers = normalize_jobs(workers)
        self.telemetry = telemetry
        self._pool = None
        self._shared = None
        self._transport = "inline"
        if self.workers > 1:
            import multiprocessing as mp

            ctx = mp.get_context(resolve_start_method(context))
            initializer: Callable[..., None] = _init_worker
            initargs: tuple[Any, ...] = (algorithm, graph)
            self._transport = "pickle"
            if shm and shm_enabled():
                try:
                    self._shared = export_graph(graph)
                except ShmUnavailable as exc:
                    _log.warning(
                        "shm_export_failed",
                        algorithm=algorithm.name,
                        graph_n=graph.n,
                        error=str(exc),
                    )
                else:
                    initializer = _init_worker_shm
                    initargs = (algorithm, self._shared.handle)
                    self._transport = "shm"
                    # Bytes each worker would have copied under the pickle
                    # transport but now maps instead.
                    get_registry().counter(
                        "shm_bytes_avoided_total",
                        "Graph bytes not re-copied per worker thanks to "
                        "the shm transport",
                    ).inc(graph.payload_nbytes * self.workers)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=initializer,
                initargs=initargs,
            )
        _log.info(
            "pool_created",
            algorithm=algorithm.name,
            graph_n=graph.n,
            workers=self.workers,
            inline=self._pool is None,
            transport=self._transport,
        )

    @property
    def transport(self) -> str:
        """How the graph reaches workers: ``inline``, ``pickle``, ``shm``."""
        return self._transport

    def _telemetry_active(self) -> bool:
        return self.telemetry is not None and telemetry_enabled()

    def _packet(self, payload: Any) -> tuple[TraceContext, str, Any]:
        """Wrap *payload* with the ambient trace position + a chunk ID."""
        return (current_trace_context(), new_chunk_id(), payload)

    # Inline (pool-less) telemetry variants: the module-level ``_t``
    # functions read the initializer-installed ``_WORKER`` state, which
    # only exists inside pool worker processes — inline execution binds
    # the pool's own algorithm/graph instead.
    def _inline_chunk_t(self, packet: tuple) -> Any:
        ctx, chunk_id, seeds = packet
        return run_chunk_with_telemetry(
            lambda: chunk_counts(self.algorithm, self.graph, seeds),
            ctx,
            chunk_id,
            algorithm=self.algorithm.name,
            trials=len(seeds),
            vectorized=False,
        )

    def _inline_vector_chunk_t(self, packet: tuple) -> Any:
        ctx, chunk_id, spec = packet
        seed, trials = spec
        return run_chunk_with_telemetry(
            lambda: vector_chunk_counts(
                self.algorithm, self.graph, seed, trials
            ),
            ctx,
            chunk_id,
            algorithm=self.algorithm.name,
            trials=trials,
            vectorized=True,
        )

    # ------------------------------------------------------------------ #
    # chunk execution
    # ------------------------------------------------------------------ #
    def run_chunk(self, seeds: Sequence[np.random.SeedSequence]) -> np.ndarray:
        """Synchronously run one exact chunk (see :func:`chunk_counts`)."""
        if self._telemetry_active():
            packet = self._packet(list(seeds))
            if self._pool is None:
                result = self._inline_chunk_t(packet)
            else:
                result = self._pool.apply(_run_chunk_t, (packet,))
            return self.telemetry.absorb(result)
        if self._pool is None:
            return chunk_counts(self.algorithm, self.graph, seeds)
        return self._pool.apply(_run_chunk, (list(seeds),))

    def run_vector_chunk(
        self, seed: np.random.SeedSequence, trials: int
    ) -> np.ndarray:
        """Synchronously run one vectorized (disjoint-union) chunk."""
        if self._telemetry_active():
            packet = self._packet((seed, trials))
            if self._pool is None:
                result = self._inline_vector_chunk_t(packet)
            else:
                result = self._pool.apply(_run_vector_chunk_t, (packet,))
            return self.telemetry.absorb(result)
        if self._pool is None:
            return vector_chunk_counts(self.algorithm, self.graph, seed, trials)
        return self._pool.apply(_run_vector_chunk, ((seed, trials),))

    def submit_chunk(
        self,
        chunk: Sequence[np.random.SeedSequence] | tuple[np.random.SeedSequence, int],
        vectorized: bool,
        callback: Callable[[np.ndarray], None],
        error_callback: Callable[[BaseException], None],
    ) -> None:
        """Dispatch one chunk; invoke *callback* with its count vector.

        On a multiprocess pool this is non-blocking (``apply_async``); the
        inline pool executes in the calling thread before returning, which
        keeps the scheduler's dispatch loop single-pathed.

        With a :class:`~repro.obs.remote.RemoteTelemetry` attached, the
        chunk travels as a telemetry packet — ambient ``(trace_id,
        span_id)`` plus a chunk ID — and the result's piggybacked worker
        telemetry is absorbed into the owning registry before *callback*
        sees the bare count vector.
        """
        if self._telemetry_active():
            telemetry = self.telemetry
            packet = self._packet(
                chunk if vectorized else list(chunk)
            )
            if self._pool is not None:
                fn = _run_vector_chunk_t if vectorized else _run_chunk_t
                self._pool.apply_async(
                    fn,
                    (packet,),
                    callback=lambda res: callback(telemetry.absorb(res)),
                    error_callback=error_callback,
                )
                return
            inline = (
                self._inline_vector_chunk_t
                if vectorized
                else self._inline_chunk_t
            )
            try:
                counts = telemetry.absorb(inline(packet))
            except BaseException as exc:  # noqa: BLE001 - forwarded to owner
                error_callback(exc)
                return
            callback(counts)
            return
        if self._pool is not None:
            fn = _run_vector_chunk if vectorized else _run_chunk
            arg = chunk if vectorized else list(chunk)
            self._pool.apply_async(
                fn, (arg,), callback=callback, error_callback=error_callback
            )
            return
        n_trials = chunk[1] if vectorized else len(chunk)
        try:
            with span(
                "pool.chunk",
                algorithm=self.algorithm.name,
                trials=n_trials,
                vectorized=vectorized,
            ):
                if vectorized:
                    seed, trials = chunk  # type: ignore[misc]
                    counts = vector_chunk_counts(
                        self.algorithm, self.graph, seed, trials
                    )
                else:
                    counts = chunk_counts(self.algorithm, self.graph, chunk)
        except BaseException as exc:  # noqa: BLE001 - forwarded to owner
            error_callback(exc)
            return
        callback(counts)

    def run(
        self, trials: int, seed: SeedLike = None, validate_runs: bool = False
    ) -> JoinEstimate:
        """Run *trials* independent executions through the resident pool.

        Bit-identical to serial execution with the same seed: the same
        spawned per-trial seed sequences are used, merely partitioned
        across workers.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        seeds = spawn_trial_seeds(seed, trials)
        if self._pool is None:
            if self._telemetry_active() and not validate_runs:
                counts = self.run_chunk(seeds)
            else:
                counts = chunk_counts(
                    self.algorithm, self.graph, seeds, validate_runs
                )
            return JoinEstimate(counts=counts, trials=trials)
        chunk_count = self.workers * 4
        chunks = [c for c in (seeds[i::chunk_count] for i in range(chunk_count)) if c]
        if self._telemetry_active():
            packets = [self._packet(c) for c in chunks]
            results = self._pool.map(_run_chunk_t, packets)
            partials = [self.telemetry.absorb(r) for r in results]
        else:
            partials = self._pool.map(_run_chunk, chunks)
        counts = np.sum(partials, axis=0).astype(np.int64)
        return JoinEstimate(counts=counts, trials=trials)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def processes(self) -> list:
        """Live worker ``Process`` objects (empty for the inline pool)."""
        if self._pool is None:
            return []
        return list(self._pool._pool)  # noqa: SLF001 - stdlib Pool internals

    def close(self, wait: bool = True) -> None:
        """Shut the pool down; with ``wait`` join workers before returning.

        Deterministically reclaims the shared-memory segments: workers are
        joined first (their mappings close with them), then the exporter
        unlinks.  Idempotent under both fork and spawn start methods.
        """
        if self._pool is not None:
            if wait:
                self._pool.close()
            else:
                self._pool.terminate()
            self._pool.join()
            self._pool = None
            _log.info(
                "pool_closed", algorithm=self.algorithm.name, graceful=wait
            )
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def terminate(self) -> None:
        """Stop workers immediately (abandons in-flight chunks)."""
        self.close(wait=False)

    def __enter__(self) -> "TrialPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(wait=exc_info[0] is None)


def run_trials(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    n_jobs: int = 1,
    validate_runs: bool = False,
) -> JoinEstimate:
    """Run *trials* independent executions and tally per-node joins.

    This is the cold path: each call builds its own :class:`TrialPool`
    and tears it down.  Long-lived callers should hold an Estimator
    (:mod:`repro.service`) or a :class:`TrialPool` instead.

    Parameters
    ----------
    n_jobs:
        Worker processes, canonical semantics (:func:`normalize_jobs`):
        ``1`` inline, ``0``/negative all cores, ``k > 1`` that many.
    validate_runs:
        Assert independence + maximality of every run (algorithms
        constructed with ``validate=True`` already do this internally).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    jobs = normalize_jobs(n_jobs, limit=trials)
    if jobs == 1 or trials < 8:
        seeds = spawn_trial_seeds(seed, trials)
        return JoinEstimate(
            counts=chunk_counts(algorithm, graph, seeds, validate_runs),
            trials=trials,
        )
    with TrialPool(algorithm, graph, workers=jobs) as pool:
        return pool.run(trials, seed=seed, validate_runs=validate_runs)


def estimate_join_probabilities(
    algorithm: MISAlgorithm,
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    n_jobs: int = 1,
) -> np.ndarray:
    """Convenience: per-node join-probability estimates as an array."""
    return run_trials(
        algorithm, graph, trials, seed=seed, n_jobs=n_jobs
    ).probabilities
