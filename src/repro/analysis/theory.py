"""Closed-form theoretical quantities from the paper's analysis.

Each function documents the theorem/lemma it encodes so experiments can
print "paper bound vs measured" side by side (EXPERIMENTS.md).
"""

from __future__ import annotations

import math

__all__ = [
    "fairrooted_inequality_bound",
    "fairtree_epsilon_bound",
    "fairtree_inequality_bound",
    "fairtree_min_join_probability",
    "fairbipart_block_probability",
    "fairbipart_min_join_probability",
    "fairbipart_inequality_bound",
    "colormis_min_join_probability",
    "cone_inequality_lower_bound",
    "star_luby_center_probability",
    "star_luby_inequality",
    "log_star",
]


def fairrooted_inequality_bound() -> float:
    """Theorem 3: ``F_FAIRROOTED(rooted trees) <= 4``."""
    return 4.0


def fairtree_epsilon_bound(n: int) -> float:
    """Theorem 8 failure mass: ``ε <= 1/n`` (for the paper's γ constant)."""
    return 1.0 / max(n, 1)


def fairtree_min_join_probability(n: int) -> float:
    """Theorem 8: every node joins with probability ``>= (1-ε)/4``."""
    return (1.0 - fairtree_epsilon_bound(n)) / 4.0


def fairtree_inequality_bound(n: int) -> float:
    """Implied inequality bound ``4/(1-ε)`` (→ 4 as n grows)."""
    return 4.0 / (1.0 - fairtree_epsilon_bound(n))


def fairbipart_block_probability(n: int, gamma: int, p: float = 0.5) -> float:
    """Lemma 12(i): ``Pr[v joins a block] >= p·(1 - p^γ)^n``."""
    return p * (1.0 - p**gamma) ** n


def fairbipart_min_join_probability(
    n: int, gamma: int | None = None, p: float = 0.5
) -> float:
    """Lemma 16: block probability × 1/2 ≥ 1/8 for ``γ = 2·lg n, n >= 2``."""
    if gamma is None:
        gamma = max(1, math.ceil(2 * math.log2(max(n, 2))))
    return fairbipart_block_probability(n, gamma, p) * 0.5


def fairbipart_inequality_bound() -> float:
    """Theorem 13: ``F_FAIRBIPART(bipartite) <= 8``."""
    return 8.0


def colormis_min_join_probability(n: int, k: int, gamma: int | None = None) -> float:
    """Theorem 17: block probability × ``1/k`` — join is ``Ω(1/k)``."""
    if gamma is None:
        gamma = max(1, math.ceil(2 * math.log2(max(n, 2))))
    return fairbipart_block_probability(n, gamma) / max(k, 1)


def cone_inequality_lower_bound(k: int) -> float:
    """Theorem 19: every MIS algorithm has ``F >= k`` on the cone ``C_k``.

    (The proof gives ``P(u_0)/P(u*) >= p_S / (p_S/k) = k``.)
    """
    return float(k)


def star_luby_center_probability(n: int) -> float:
    """Priority-Luby on the star ``S_n``: the center joins iff it draws
    the global maximum in round 1 — probability exactly ``1/n``."""
    return 1.0 / n


def star_luby_inequality(n: int) -> float:
    """Section I: Luby's inequality on the star is ``Θ(n)``.

    Leaves join unless the center wins round 1, so
    ``F = (1 - 1/n) / (1/n) = n - 1``.
    """
    return float(n - 1)


def log_star(n: int) -> int:
    """Iterated logarithm (base 2) — the FAIRROOTED round scale."""
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count
