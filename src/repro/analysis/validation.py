"""MIS validity checks (vectorized).

Independence and maximality must hold on *every* execution (Section III);
these helpers are the analysis-side counterparts of
:meth:`repro.core.result.MISResult.validate` for raw membership arrays.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import StaticGraph

__all__ = [
    "is_independent_set",
    "is_maximal_independent_set",
    "coverage_mask",
    "violating_edges",
]


def is_independent_set(graph: StaticGraph, membership: np.ndarray) -> bool:
    """True iff no edge has both endpoints in the set."""
    m = np.asarray(membership, dtype=bool)
    es, ed = graph.edge_src, graph.edge_dst
    if es.size == 0:
        return True
    return not bool(np.any(m[es] & m[ed]))


def coverage_mask(graph: StaticGraph, membership: np.ndarray) -> np.ndarray:
    """Vertices that are in the set or adjacent to a member."""
    m = np.asarray(membership, dtype=bool)
    es, ed = graph.edge_src, graph.edge_dst
    covered = m.copy()
    if es.size:
        covered[ed[m[es]]] = True
    return covered


def is_maximal_independent_set(graph: StaticGraph, membership: np.ndarray) -> bool:
    """True iff the set is independent and dominates every vertex."""
    return is_independent_set(graph, membership) and bool(
        coverage_mask(graph, membership).all()
    )


def violating_edges(graph: StaticGraph, membership: np.ndarray) -> np.ndarray:
    """``(k, 2)`` array of edges with both endpoints in the set."""
    m = np.asarray(membership, dtype=bool)
    e = graph.edges
    if e.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    bad = m[e[:, 0]] & m[e[:, 1]]
    return e[bad]
