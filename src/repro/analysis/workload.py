"""Workload models for the paper's motivating applications (§I-A).

The paper motivates fairness through repeated MIS election: being in the
set carries a per-epoch cost (backbone relaying, monitoring storage).
This module turns that story into measurable quantities:

* :func:`simulate_duty` — elect an MIS for ``epochs`` rounds and count
  each node's time on duty;
* :class:`DutyReport` — spread statistics (max/min duty ratio — the
  epoch-level realization of the inequality factor — plus budget
  exhaustion analysis);
* :func:`expected_duty_spread` — the closed-form limit: duty fractions
  converge to join probabilities, so the duty spread converges to the
  inequality factor.

The ``network_backbone`` and ``wireless_monitoring`` examples are thin
front-ends over these functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import MISAlgorithm
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike, generator_from
from .fairness import JoinEstimate

__all__ = ["DutyReport", "simulate_duty", "expected_duty_spread"]


@dataclass(frozen=True)
class DutyReport:
    """Outcome of a repeated-election duty simulation.

    Attributes
    ----------
    duty:
        Per-node epochs-on-duty counts.
    epochs:
        Number of elections simulated.
    first_exhausted_epoch:
        First epoch in which some node's duty exceeded ``budget`` epochs,
        or ``None`` if the budget was never exceeded.
    budget:
        The duty budget used for exhaustion analysis.
    """

    duty: np.ndarray
    epochs: int
    first_exhausted_epoch: int | None
    budget: float

    @property
    def spread(self) -> float:
        """Max/min duty ratio (∞ if some node never served)."""
        lo = float(self.duty.min())
        if lo <= 0:
            return float("inf")
        return float(self.duty.max()) / lo

    @property
    def max_duty_fraction(self) -> float:
        """Fraction of epochs served by the most-drafted node."""
        return float(self.duty.max()) / self.epochs

    @property
    def estimate(self) -> JoinEstimate:
        """The duty counts as a join-probability estimate."""
        return JoinEstimate(counts=self.duty.astype(np.int64), trials=self.epochs)


def simulate_duty(
    graph: StaticGraph,
    algorithm: MISAlgorithm,
    epochs: int,
    seed: SeedLike = None,
    budget_fraction: float = 0.85,
) -> DutyReport:
    """Re-elect an MIS for *epochs* rounds; track per-node duty.

    ``budget_fraction`` sets the exhaustion threshold as a fraction of
    the total epochs (a node "dies" once it has served more than that).
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    rng = generator_from(seed)
    duty = np.zeros(graph.n, dtype=np.int64)
    budget = budget_fraction * epochs
    first_exhausted: int | None = None
    for epoch in range(1, epochs + 1):
        member = algorithm.run(graph, rng).membership
        duty += member
        if first_exhausted is None and duty.max() > budget:
            first_exhausted = epoch
    return DutyReport(
        duty=duty,
        epochs=epochs,
        first_exhausted_epoch=first_exhausted,
        budget=budget,
    )


def expected_duty_spread(estimate: JoinEstimate) -> float:
    """Asymptotic duty spread = the inequality factor.

    By the law of large numbers each node's duty fraction converges to
    its join probability, so the long-run max/min duty ratio *is*
    ``F_A(G)`` — this is why inequality is the right fairness statistic
    for the §I-A applications.
    """
    return estimate.inequality
