"""Stable public API facade for library consumers.

``repro.api`` is the compatibility surface: names exported here follow
deprecation policy (a release of ``DeprecationWarning`` before removal),
whereas internal module layout may shift between versions.  Typical use::

    from repro.api import Estimator, EstimateRequest, GraphSpec, run_trials

    graph = GraphSpec.parse("tree:500:1").build()
    with Estimator(n_jobs=0) as service:
        result = service.estimate(
            graph=graph, algorithm="fair_tree_fast", trials=2000, seed=0
        )
        print(result.estimate.inequality)

Groups:

* graphs — :class:`GraphSpec` parsing/building, :class:`StaticGraph`,
  content hashing for cache keys;
* estimation — the cold-path :func:`run_trials`, the canonical
  :func:`normalize_jobs` semantics, :class:`JoinEstimate`;
* service — :class:`Estimator` and the request/result dataclasses shared
  with the ``python -m repro serve``/``batch`` CLI;
* observability — structured logging (:func:`get_logger`,
  :func:`configure_logging`), request tracing (:func:`span`), the
  :class:`MetricsRegistry` behind every estimator's counters and
  histograms, and the opt-in engine :class:`PhaseProfiler`
  (:func:`use_profiler`) (see ``docs/OBSERVABILITY.md``);
* benchmarking — :class:`BenchConfig`/:func:`run_suite` and artifact
  comparison behind ``python -m repro bench``;
* registry — :func:`make`/:func:`available` algorithm construction.
"""

from __future__ import annotations

from .analysis.fairness import JoinEstimate, inequality_factor
from .bench import (
    BenchConfig,
    compare_artifacts,
    load_artifact,
    make_artifact,
    run_suite,
    write_artifact,
)
from .analysis.montecarlo import (
    TrialPool,
    estimate_join_probabilities,
    normalize_jobs,
    run_trials,
)
from .core.registry import available, make
from .core.result import MISAlgorithm, MISResult
from .graphs.graph import RootedTree, StaticGraph
from .graphs.spec import GraphSpec, GraphSpecError, build_graph
from .obs import (
    MetricsRegistry,
    PhaseProfiler,
    configure_logging,
    current_profiler,
    default_registry,
    get_logger,
    span,
    use_profiler,
)
from .runtime.metrics import RequestRecord, ServiceCounters
from .service import (
    BatchScheduler,
    Estimator,
    EstimateCancelled,
    EstimateRequest,
    EstimateResult,
    EstimateTimeout,
    RequestHandle,
    ResultCache,
)

__all__ = [
    # graphs
    "GraphSpec",
    "GraphSpecError",
    "build_graph",
    "StaticGraph",
    "RootedTree",
    # estimation
    "run_trials",
    "estimate_join_probabilities",
    "normalize_jobs",
    "TrialPool",
    "JoinEstimate",
    "inequality_factor",
    # service
    "Estimator",
    "RequestHandle",
    "EstimateRequest",
    "EstimateResult",
    "EstimateTimeout",
    "EstimateCancelled",
    "BatchScheduler",
    "ResultCache",
    "ServiceCounters",
    "RequestRecord",
    # observability
    "MetricsRegistry",
    "default_registry",
    "configure_logging",
    "get_logger",
    "span",
    "PhaseProfiler",
    "use_profiler",
    "current_profiler",
    # benchmarking
    "BenchConfig",
    "run_suite",
    "make_artifact",
    "write_artifact",
    "load_artifact",
    "compare_artifacts",
    # registry
    "make",
    "available",
    "MISAlgorithm",
    "MISResult",
]
