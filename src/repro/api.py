"""Stable public API facade for library consumers.

``repro.api`` is the compatibility surface: names exported here follow
deprecation policy (a release of ``DeprecationWarning`` before removal),
whereas internal module layout may shift between versions.  Typical use::

    from repro.api import Estimator, GraphSpec, Precision

    graph = GraphSpec.parse("tree:500:1").build()
    with Estimator(n_jobs=0) as service:
        result = service.estimate(
            graph=graph, algorithm="fair_tree_fast",
            precision=Precision(node_ci=0.02), seed=0,
        )
        print(result.estimate.inequality, result.realized_trials)

The v2 request shape (since the precision redesign) targets a confidence
interval instead of a trial count: :class:`Precision` specifies the
target CI half-width (per-node join frequency and/or inequality factor),
a confidence level, and a hard trial cap; the scheduler runs trial
rounds, seeds the interval from cached evidence, and stops as soon as
the target closes.  ``EstimateResult.realized_trials`` reports the total
evidence behind the returned estimate.  The v1 surface — ``trials=``
without ``precision=`` — still works but raises ``DeprecationWarning``
(one release notice before removal; migration table in ``docs/API.md``).

Groups:

* graphs — :class:`GraphSpec` parsing/building, :class:`StaticGraph`,
  content hashing for cache keys;
* estimation — the cold-path :func:`run_trials`, the canonical
  :func:`normalize_jobs` semantics, :class:`JoinEstimate`;
* service — :class:`Estimator`, the request/result dataclasses shared
  with the ``python -m repro serve``/``batch`` CLI, and the v2
  :class:`Precision`/:class:`StoppingRule` sequential-stopping contract;
* observability — structured logging (:func:`get_logger`,
  :func:`configure_logging`), request tracing (:func:`span`), the
  :class:`MetricsRegistry` behind every estimator's counters and
  histograms, and the opt-in engine :class:`PhaseProfiler`
  (:func:`use_profiler`) (see ``docs/OBSERVABILITY.md``);
* benchmarking — :class:`BenchConfig`/:func:`run_suite` and artifact
  comparison behind ``python -m repro bench``;
* registry — :func:`make`/:func:`available` algorithm construction.
"""

from __future__ import annotations

from .analysis.fairness import JoinEstimate, inequality_factor
from .bench import (
    BenchConfig,
    compare_artifacts,
    load_artifact,
    make_artifact,
    run_suite,
    write_artifact,
)
from .analysis.montecarlo import (
    TrialPool,
    estimate_join_probabilities,
    normalize_jobs,
    run_trials,
)
from .core.registry import available, make
from .core.result import MISAlgorithm, MISResult
from .graphs.graph import RootedTree, StaticGraph
from .graphs.spec import GraphSpec, GraphSpecError, build_graph
from .obs import (
    MetricsRegistry,
    PhaseProfiler,
    configure_logging,
    current_profiler,
    default_registry,
    get_logger,
    span,
    use_profiler,
)
from .runtime.metrics import RequestRecord, ServiceCounters
from .service import (
    PROTOCOL_VERSIONS,
    BatchScheduler,
    Estimator,
    EstimateCancelled,
    EstimateRequest,
    EstimateResult,
    EstimateTimeout,
    Precision,
    RequestHandle,
    ResultCache,
    StoppingRule,
)

__all__ = [
    # graphs
    "GraphSpec",
    "GraphSpecError",
    "build_graph",
    "StaticGraph",
    "RootedTree",
    # estimation
    "run_trials",
    "estimate_join_probabilities",
    "normalize_jobs",
    "TrialPool",
    "JoinEstimate",
    "inequality_factor",
    # service
    "Estimator",
    "RequestHandle",
    "EstimateRequest",
    "EstimateResult",
    "EstimateTimeout",
    "EstimateCancelled",
    "Precision",
    "StoppingRule",
    "PROTOCOL_VERSIONS",
    "BatchScheduler",
    "ResultCache",
    "ServiceCounters",
    "RequestRecord",
    # observability
    "MetricsRegistry",
    "default_registry",
    "configure_logging",
    "get_logger",
    "span",
    "PhaseProfiler",
    "use_profiler",
    "current_profiler",
    # benchmarking
    "BenchConfig",
    "run_suite",
    "make_artifact",
    "write_artifact",
    "load_artifact",
    "compare_artifacts",
    # registry
    "make",
    "available",
    "MISAlgorithm",
    "MISResult",
]
