"""Continuous benchmark harness (``repro bench``).

Three layers, each usable on its own:

* :mod:`~repro.bench.suite` — the declarative benchmark suite: engine
  throughput, service latency percentiles, cache warm-vs-cold speedup,
  and deterministic per-algorithm round/message counts.
* :mod:`~repro.bench.artifact` — schema-versioned ``BENCH_<sha>.json``
  artifacts with an environment fingerprint.
* :mod:`~repro.bench.compare` — baseline comparison with per-metric
  deltas and regression gating (count metrics gate on any deviation;
  timing metrics are report-only unless ``strict_timing``).

The CLI front-end is ``repro bench`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from .artifact import (
    SCHEMA_VERSION,
    default_artifact_path,
    environment_fingerprint,
    git_sha,
    load_artifact,
    make_artifact,
    write_artifact,
)
from .compare import CompareReport, CompareRow, compare_artifacts
from .suite import BenchConfig, run_suite
from .trend import MetricTrend, TrendPoint, TrendReport, build_trend, collect_artifacts

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "CompareReport",
    "CompareRow",
    "MetricTrend",
    "TrendPoint",
    "TrendReport",
    "build_trend",
    "collect_artifacts",
    "compare_artifacts",
    "default_artifact_path",
    "environment_fingerprint",
    "git_sha",
    "load_artifact",
    "make_artifact",
    "run_suite",
    "write_artifact",
]
