"""Schema-versioned benchmark artifacts (``BENCH_<sha>.json``).

An artifact is a plain JSON document::

    {
      "schema": "repro-bench/1",
      "git_sha": "939e3b7",
      "created_unix": 1754400000.0,
      "environment": {...},          # host + toolchain fingerprint
      "config": {...},               # suite knobs the run used
      "metrics": {name: {...}, ...}  # one entry per benchmark metric
    }

Each metric entry carries ``value``, ``unit``, ``kind`` (``"timing"`` or
``"count"``), ``higher_is_better``, ``gate``, ``tolerance_pct`` and
optional ``details``.  The ``kind``/``gate`` fields are what makes
cross-machine comparison sane: deterministic count metrics gate hard,
wall-clock timing metrics are advisory by default (see
:mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "default_artifact_path",
    "environment_fingerprint",
    "git_sha",
    "load_artifact",
    "make_artifact",
    "write_artifact",
]

#: Bump on any backwards-incompatible artifact layout change.
SCHEMA_VERSION = "repro-bench/1"


def git_sha(short: bool = True) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd, capture_output=True, text=True, timeout=10, check=False
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def environment_fingerprint() -> dict[str, Any]:
    """Host/toolchain facts that explain timing differences between runs."""
    import numpy as np

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "bench_knobs": {
            "REPRO_BENCH_TRIALS": os.environ.get("REPRO_BENCH_TRIALS"),
            "REPRO_BENCH_CITY_N": os.environ.get("REPRO_BENCH_CITY_N"),
            "REPRO_BENCH_FULL": os.environ.get("REPRO_BENCH_FULL"),
        },
    }


def default_artifact_path(root: str | Path = ".", sha: str | None = None) -> Path:
    """``<root>/BENCH_<sha>.json`` for the current (or given) commit."""
    return Path(root) / f"BENCH_{sha if sha is not None else git_sha()}.json"


def make_artifact(
    metrics: Mapping[str, Mapping[str, Any]],
    config: Mapping[str, Any],
) -> dict[str, Any]:
    """Assemble the artifact document for one suite run."""
    return {
        "schema": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "config": dict(config),
        "metrics": {name: dict(entry) for name, entry in metrics.items()},
    }


def write_artifact(doc: Mapping[str, Any], path: str | Path) -> Path:
    """Serialize *doc* to *path* (pretty-printed, trailing newline)."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load and schema-check an artifact; raises ``ValueError`` on mismatch."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench artifact schema {schema!r} in {path} "
            f"(expected {SCHEMA_VERSION!r})"
        )
    if not isinstance(doc.get("metrics"), dict):
        raise ValueError(f"bench artifact {path} has no metrics mapping")
    return doc
