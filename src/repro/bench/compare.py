"""Baseline comparison and regression gating for bench artifacts.

The comparison walks the union of metric names in two artifacts and
classifies each shared metric:

* ``count`` metrics are deterministic — *any* delta beyond the metric's
  tolerance (default 0%) is a behavioural regression and gates whenever
  the metric's ``gate`` flag is set.
* ``timing`` metrics are machine-dependent — a bad-direction delta
  beyond tolerance is *reported* but only gates when the caller passes
  ``strict_timing=True`` (same-machine comparisons, perf CI boxes).

``repro bench --compare BASELINE.json`` prints :meth:`CompareReport.format`
and exits nonzero when :attr:`CompareReport.ok` is false.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["CompareReport", "CompareRow", "compare_artifacts"]


@dataclass
class CompareRow:
    """One metric's baseline-vs-current verdict."""

    name: str
    kind: str
    unit: str
    baseline: float | None
    current: float | None
    delta_pct: float | None
    tolerance_pct: float
    regressed: bool
    gated: bool
    note: str = ""


@dataclass
class CompareReport:
    """All rows plus the overall gate verdict."""

    rows: list[CompareRow] = field(default_factory=list)
    baseline_sha: str = "unknown"
    current_sha: str = "unknown"
    strict_timing: bool = False

    @property
    def gating_failures(self) -> list[CompareRow]:
        return [r for r in self.rows if r.regressed and r.gated]

    @property
    def ok(self) -> bool:
        """True when no gated metric regressed."""
        return not self.gating_failures

    def format(self) -> str:
        """Human-readable report (fixed-width table + verdict)."""
        lines = [
            f"bench compare: baseline {self.baseline_sha} -> "
            f"current {self.current_sha}"
            + (" [strict timing]" if self.strict_timing else ""),
            f"{'metric':<38} {'kind':<7} {'baseline':>12} {'current':>12} "
            f"{'delta':>9}  verdict",
        ]
        for r in sorted(self.rows, key=lambda r: (not r.regressed, r.name)):
            base = "-" if r.baseline is None else f"{r.baseline:.4g}"
            cur = "-" if r.current is None else f"{r.current:.4g}"
            delta = "-" if r.delta_pct is None else f"{r.delta_pct:+.1f}%"
            if r.regressed and r.gated:
                verdict = "REGRESSED"
            elif r.regressed:
                verdict = "regressed (not gated)"
            else:
                verdict = "ok"
            if r.note:
                verdict += f" [{r.note}]"
            lines.append(
                f"{r.name:<38} {r.kind:<7} {base:>12} {cur:>12} {delta:>9}  "
                f"{verdict}"
            )
        failures = self.gating_failures
        if failures:
            lines.append(
                f"FAIL: {len(failures)} gated metric(s) regressed: "
                + ", ".join(r.name for r in failures)
            )
        else:
            lines.append(f"OK: {len(self.rows)} metric(s) compared, no gated "
                         "regressions")
        return "\n".join(lines)


def _delta_pct(baseline: float, current: float) -> float | None:
    """Relative change in percent; ``None`` when it is undefined.

    A zero baseline admits no percentage (every report renderer would
    otherwise have to special-case ``inf``/JSON-illegal values), so a
    nonzero-from-zero move returns ``None`` and the caller annotates
    the row ``new from zero`` and judges regression by direction, not
    magnitude.
    """
    if baseline == 0:
        return 0.0 if current == 0 else None
    return (current - baseline) / abs(baseline) * 100.0


def compare_artifacts(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance_pct: float | None = None,
    strict_timing: bool = False,
) -> CompareReport:
    """Compare two artifact documents (see :mod:`repro.bench.artifact`).

    ``tolerance_pct`` overrides every metric's own tolerance when given.
    """
    report = CompareReport(
        baseline_sha=str(baseline.get("git_sha", "unknown")),
        current_sha=str(current.get("git_sha", "unknown")),
        strict_timing=strict_timing,
    )
    base_metrics: Mapping[str, Any] = baseline.get("metrics", {})
    cur_metrics: Mapping[str, Any] = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base_entry = base_metrics.get(name)
        cur_entry = cur_metrics.get(name)
        if base_entry is None or cur_entry is None:
            missing = "baseline" if base_entry is None else "current"
            entry = cur_entry if base_entry is None else base_entry
            report.rows.append(CompareRow(
                name=name,
                kind=str(entry.get("kind", "timing")),
                unit=str(entry.get("unit", "")),
                baseline=None if base_entry is None else float(base_entry["value"]),
                current=None if cur_entry is None else float(cur_entry["value"]),
                delta_pct=None,
                tolerance_pct=0.0,
                regressed=False,
                gated=False,
                note=f"missing in {missing}",
            ))
            continue

        kind = str(cur_entry.get("kind", "timing"))
        base_val = float(base_entry["value"])
        cur_val = float(cur_entry["value"])
        delta = _delta_pct(base_val, cur_val)
        tol = (
            float(tolerance_pct)
            if tolerance_pct is not None
            else float(cur_entry.get("tolerance_pct", 0.0))
        )

        note = "" if delta is not None else "new from zero"
        if kind == "count":
            # Deterministic: any deviation beyond tolerance is real.  A
            # nonzero-from-zero move has no percentage but is always a
            # behavioural change, so it regresses regardless of tolerance.
            regressed = True if delta is None else abs(delta) > tol
            gated = bool(cur_entry.get("gate", True))
        else:
            higher_is_better = bool(cur_entry.get("higher_is_better", False))
            if delta is None:
                # From-zero timing: bad only in the bad direction.
                regressed = cur_val > 0 and not higher_is_better
            else:
                bad = -delta if higher_is_better else delta
                regressed = bad > tol
            gated = strict_timing or bool(cur_entry.get("gate", False))

        report.rows.append(CompareRow(
            name=name,
            kind=kind,
            unit=str(cur_entry.get("unit", "")),
            baseline=base_val,
            current=cur_val,
            delta_pct=delta,
            tolerance_pct=tol,
            regressed=regressed,
            gated=gated,
            note=note,
        ))
    return report
