"""The declarative benchmark suite behind ``repro bench``.

Every benchmark is a :class:`BenchCase` whose ``fn(config)`` returns one
or more *metric entries* (flat dicts, see :mod:`repro.bench.artifact`).
Two kinds coexist:

``timing``
    Wall-clock-derived (throughput, latency percentiles, speedups).
    Machine-dependent, so comparisons treat them as advisory unless
    explicitly gated (``repro bench --compare --strict-timing``).

``count``
    Deterministic given the pinned seeds — synchronous rounds and
    message totals from :class:`~repro.runtime.metrics.RunMetrics`, fast
    engine iteration counts.  Any deviation from baseline is a real
    behavioural change and gates by default.

Count cases use *fixed* graph sizes and seeds independent of the scale
knobs, so a ``--quick`` baseline stays valid for full runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["BenchCase", "BenchConfig", "build_cases", "run_suite"]

#: Advisory tolerance for timing metrics (percent) before a comparison
#: even mentions the delta as a regression candidate.
TIMING_TOLERANCE_PCT = 25.0

# Pinned inputs for deterministic count metrics — never scaled by knobs.
_COUNT_N = 60
_COUNT_SEED = 12345


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass
class BenchConfig:
    """Scale knobs for one suite run.

    ``quick`` pins a small deterministic workload for CI smoke gates;
    otherwise ``REPRO_BENCH_TRIALS`` / ``REPRO_BENCH_CITY_N`` (the same
    knobs as ``benchmarks/conftest.py``) set the scale.
    """

    quick: bool = False
    trials: int = field(default=0)
    tree_n: int = field(default=0)
    service_requests: int = field(default=0)
    graph_side: int = field(default=0)
    only: str | None = None

    def __post_init__(self) -> None:
        if self.trials <= 0:
            self.trials = 200 if self.quick else _env_int("REPRO_BENCH_TRIALS", 400)
        if self.tree_n <= 0:
            self.tree_n = 120 if self.quick else _env_int("REPRO_BENCH_CITY_N", 400)
        if self.service_requests <= 0:
            self.service_requests = 6 if self.quick else 16
        if self.graph_side <= 0:
            # side of the construction/IO benchmark grid (n = side**2);
            # REPRO_BENCH_GRAPH_SIDE=1000 reproduces the million-node
            # acceptance measurement.
            self.graph_side = (
                60 if self.quick else _env_int("REPRO_BENCH_GRAPH_SIDE", 250)
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "quick": self.quick,
            "trials": self.trials,
            "tree_n": self.tree_n,
            "service_requests": self.service_requests,
            "graph_side": self.graph_side,
            "count_n": _COUNT_N,
            "count_seed": _COUNT_SEED,
        }


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark producing one or more metric entries."""

    name: str
    fn: Callable[[BenchConfig], dict[str, dict[str, Any]]]
    description: str = ""


def _entry(
    value: float,
    unit: str,
    kind: str,
    higher_is_better: bool,
    gate: bool,
    tolerance_pct: float,
    details: dict[str, Any] | None = None,
) -> dict[str, Any]:
    out: dict[str, Any] = {
        "value": float(value),
        "unit": unit,
        "kind": kind,
        "higher_is_better": higher_is_better,
        "gate": gate,
        "tolerance_pct": tolerance_pct,
    }
    if details:
        out["details"] = details
    return out


def _timing(value: float, unit: str, higher_is_better: bool, **kw: Any):
    return _entry(
        value, unit, "timing", higher_is_better,
        gate=False, tolerance_pct=TIMING_TOLERANCE_PCT, **kw,
    )


def _count(value: float, unit: str, **kw: Any):
    return _entry(
        value, unit, "count", higher_is_better=False,
        gate=True, tolerance_pct=0.0, **kw,
    )


def _bench_tree(n: int, seed: int = 7):
    from ..graphs.generators import random_tree

    return random_tree(n, seed=seed).graph


# --------------------------------------------------------------------- #
# timing cases
# --------------------------------------------------------------------- #
def _engine_throughput(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Exact per-trial throughput (trials/sec) for the fast engines."""
    from ..fast.fair_tree import FastFairTree
    from ..fast.luby import FastLuby
    from ..runtime.rng import generator_from

    graph = _bench_tree(config.tree_n)
    trials = max(1, config.trials // 4)
    out: dict[str, dict[str, Any]] = {}
    for algorithm in (FastLuby(), FastFairTree()):
        rng = generator_from(0)
        started = time.perf_counter()
        for _ in range(trials):
            algorithm.run(graph, rng)
        elapsed = time.perf_counter() - started
        out[f"engine.{algorithm.name}.throughput"] = _timing(
            trials / elapsed, "trials/s", higher_is_better=True,
            details={"trials": trials, "n": config.tree_n},
        )
    return out


def _batched_throughput(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Disjoint-union batched throughput (trials/sec), all five engines."""
    from ..fast.batched import (
        batched_color_mis_trials,
        batched_fair_bipart_trials,
        batched_fair_rooted_trials,
        batched_fair_tree_trials,
        batched_luby_trials,
    )

    graph = _bench_tree(config.tree_n)
    out: dict[str, dict[str, Any]] = {}
    for name, runner in (
        ("batched_luby", batched_luby_trials),
        ("batched_fair_tree", batched_fair_tree_trials),
        ("batched_fair_rooted", batched_fair_rooted_trials),
        ("batched_fair_bipart", batched_fair_bipart_trials),
        ("batched_color_mis", batched_color_mis_trials),
    ):
        started = time.perf_counter()
        runner(graph, config.trials, seed=0)
        elapsed = time.perf_counter() - started
        out[f"engine.{name}.throughput"] = _timing(
            config.trials / elapsed, "trials/s", higher_is_better=True,
            details={"trials": config.trials, "n": config.tree_n},
        )
    return out


def _shm_transport(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Zero-copy transport: bytes shipped per pool handle vs a pickled
    graph, and the cold attach latency on the worker side.

    Byte counts are reported as advisory (``timing``) entries: pickle
    framing differs across interpreter versions, so gating them would
    make the baseline interpreter-specific.
    """
    import pickle

    from ..graphs.shm import (
        ShmUnavailable,
        detach_graph,
        export_graph,
        shm_enabled,
    )
    from ..graphs.shm import attach_graph as _attach

    graph = _bench_tree(config.tree_n)
    graph_bytes = len(pickle.dumps(graph))
    if not shm_enabled():
        return {}
    try:
        shared = export_graph(graph)
    except ShmUnavailable:
        return {}
    try:
        handle_bytes = len(pickle.dumps(shared.handle))
        started = time.perf_counter()
        _attach(shared.handle)
        attach_ms = (time.perf_counter() - started) * 1e3
        detach_graph(shared.handle.content_hash)
    finally:
        shared.close()
    details = {
        "n": config.tree_n,
        "graph_pickle_bytes": graph_bytes,
        "shared_bytes": shared.handle.nbytes_shared,
    }
    return {
        "shm.handle_bytes": _timing(
            handle_bytes, "bytes", higher_is_better=False, details=details,
        ),
        "shm.bytes_shipped_ratio": _timing(
            graph_bytes / handle_bytes, "x", higher_is_better=True,
            details=details,
        ),
        "shm.attach_ms": _timing(
            attach_ms, "ms", higher_is_better=False, details=details,
        ),
    }


def _service_latency(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Submit→complete latency percentiles through the estimation service."""
    from ..service.estimator import Estimator

    graph = _bench_tree(max(40, config.tree_n // 4))
    trials = max(8, config.trials // 8)
    with Estimator(n_jobs=1) as service:
        handles = [
            service.submit(
                graph=graph,
                algorithm="fair_tree_fast",
                trials=trials,
                seed=1000 + i,  # distinct seeds: no cache coalescing
            )
            for i in range(config.service_requests)
        ]
        for handle in handles:
            handle.result(timeout=120.0)
        summaries = service.registry.quantiles("service_request_latency_seconds")
    out: dict[str, dict[str, Any]] = {}
    for labels, summary in summaries.items():
        if summary["count"] == 0:  # empty histogram → None quantiles
            continue
        for pct in ("p50", "p95", "p99"):
            value = summary[pct]
            if value is None:
                continue
            out[f"service.latency_ms.{pct}"] = _timing(
                value * 1e3, "ms", higher_is_better=False,
                details={
                    "labels": labels,
                    "count": summary["count"],
                    "mean_ms": summary["mean"] * 1e3,
                },
            )
        break  # single algorithm submitted → single label set
    return out


def _cache_speedup(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Warm-vs-cold speedup of an identical repeated request."""
    from ..service.estimator import Estimator

    graph = _bench_tree(max(40, config.tree_n // 4))
    trials = max(8, config.trials // 4)
    with Estimator(n_jobs=1) as service:
        started = time.perf_counter()
        service.estimate(graph=graph, algorithm="fair_tree_fast",
                         trials=trials, seed=0, timeout=120.0)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        service.estimate(graph=graph, algorithm="fair_tree_fast",
                         trials=trials, seed=0, timeout=120.0)
        warm = time.perf_counter() - started
    return {
        "cache.warm_cold_speedup": _timing(
            cold / warm if warm > 0 else float("inf"), "x",
            higher_is_better=True,
            details={"cold_ms": cold * 1e3, "warm_ms": warm * 1e3,
                     "trials": trials},
        )
    }


def _sequential_stopping(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Precision-request economics: evidence reuse and realized trials.

    The acceptance workload is pinned (tree:500, ``fair_tree_fast``,
    2000-trial fixed budget) independent of the scale knobs, so the gated
    counts stay valid between ``--quick`` and full runs.  One fixed
    request deposits evidence; the following default-precision request
    must satisfy its CI from that evidence alone (``warm_new_trials``
    gates at 0 — any regression in the evidence plane or the stopping
    rule shows up as new trials executed).  A cold seeded sweep then
    records the realized-trials distribution of default-precision
    requests (p50/p95, gated with slack for stopping-boundary wobble).
    """
    import warnings as _warnings

    import numpy as np

    from ..service.estimator import Estimator
    from ..service.precision import Precision

    graph = _bench_tree(500, seed=_COUNT_SEED)
    fixed_trials = 2000
    with Estimator(n_jobs=1) as service:
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DeprecationWarning)
            started = time.perf_counter()
            service.estimate(
                graph=graph, algorithm="fair_tree_fast",
                trials=fixed_trials, seed=_COUNT_SEED, timeout=300.0,
            )
            cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = service.estimate(
            graph=graph, algorithm="fair_tree_fast",
            precision=Precision.default(), seed=_COUNT_SEED + 1,
            timeout=300.0,
        )
        warm_s = time.perf_counter() - started
        warm_new = warm.realized_trials - warm.prior_trials

        sweep_graph = _bench_tree(150, seed=_COUNT_SEED)
        sweep_realized: list[int] = []
        for i in range(5):
            service.cache.clear()  # each sweep request starts cold
            result = service.estimate(
                graph=sweep_graph, algorithm="fair_tree_fast",
                precision=Precision.default(), seed=3000 + i,
                timeout=300.0,
            )
            sweep_realized.append(result.realized_trials)
    p50 = float(np.percentile(sweep_realized, 50))
    p95 = float(np.percentile(sweep_realized, 95))
    details = {
        "n": 500, "fixed_trials": fixed_trials,
        "prior_trials": warm.prior_trials,
        "realized_trials": warm.realized_trials,
        "stopped_early": warm.stopped_early,
    }
    sweep_details = {
        "n": 150, "requests": len(sweep_realized),
        "realized": sweep_realized,
        "precision": Precision.default().to_json(),
    }
    return {
        "sequential.warm_new_trials": _count(
            warm_new, "trials", details=details,
        ),
        "sequential.warm_speedup": _timing(
            cold_s / warm_s if warm_s > 0 else float("inf"), "x",
            higher_is_better=True,
            details={"cold_ms": cold_s * 1e3, "warm_ms": warm_s * 1e3,
                     **details},
        ),
        "sequential.realized_trials.p50": _entry(
            p50, "trials", "count", higher_is_better=False,
            gate=True, tolerance_pct=10.0, details=sweep_details,
        ),
        "sequential.realized_trials.p95": _entry(
            p95, "trials", "count", higher_is_better=False,
            gate=True, tolerance_pct=10.0, details=sweep_details,
        ),
    }


def _remote_telemetry(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Cross-process telemetry plane: merge completeness and overhead.

    A real 2-worker pool runs the same seeded workload twice — once with
    the plane attached (worker registries + span capture piggybacked on
    every chunk) and once bare.  The gated counts assert the plane's
    contract, not the clock: every dispatched chunk's telemetry must be
    merged exactly once (``unmerged_chunks`` and ``duplicate_chunks``
    both 0) and the merged registry must carry per-worker labeled
    series.  The on/off wall-clock ratio is advisory; the hard <5%
    bound lives in ``benchmarks/test_engine_speed.py``.
    """
    from ..analysis.montecarlo import TrialPool
    from ..fast.luby import FastLuby
    from ..obs.metrics import MetricsRegistry, parse_label_key
    from ..obs.remote import RemoteTelemetry, telemetry_enabled

    if not telemetry_enabled():  # REPRO_TELEMETRY=0 → nothing to measure
        return {}
    graph = _bench_tree(max(40, config.tree_n // 4))
    trials = max(16, config.trials // 4)
    workers = 2
    registry = MetricsRegistry()
    telemetry = RemoteTelemetry(registry)

    pool = TrialPool(FastLuby(), graph, workers=workers, telemetry=telemetry)
    try:
        started = time.perf_counter()
        pool.run(trials, seed=0)
        on_s = time.perf_counter() - started
    finally:
        pool.close()
    # pool.run partitions seeds over workers*4 chunks, dropping empties
    dispatched = min(workers * 4, trials)
    merged = registry.counter("telemetry_chunks_merged_total").value
    duplicates = registry.counter("telemetry_chunks_duplicate_total").value
    chunk_hist = registry.snapshot()["histograms"].get("worker_chunk_seconds", {})
    worker_labels = {
        parse_label_key(key).get("worker", "") for key in chunk_hist
    }
    missing_series = 0 if worker_labels - {""} else 1

    bare = TrialPool(FastLuby(), graph, workers=workers)
    try:
        started = time.perf_counter()
        bare.run(trials, seed=0)
        off_s = time.perf_counter() - started
    finally:
        bare.close()

    details = {
        "trials": trials, "workers": workers, "n": graph.n,
        "dispatched": dispatched, "merged": merged,
        "worker_series": sorted(worker_labels),
        "on_ms": on_s * 1e3, "off_ms": off_s * 1e3,
    }
    return {
        "telemetry.unmerged_chunks": _count(
            dispatched - merged, "chunks", details=details,
        ),
        "telemetry.duplicate_chunks": _count(
            duplicates, "chunks", details=details,
        ),
        "telemetry.missing_worker_series": _count(
            missing_series, "series", details=details,
        ),
        "telemetry.plane_overhead": _timing(
            on_s / off_s if off_s > 0 else float("inf"), "x",
            higher_is_better=False, details=details,
        ),
    }


def _profiled_run(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """One profiled FastFairTree run; per-phase breakdown in details."""
    from ..fast.fair_tree import FastFairTree
    from ..obs.profile import use_profiler
    from ..runtime.rng import generator_from

    graph = _bench_tree(config.tree_n)
    with use_profiler() as prof:
        started = time.perf_counter()
        FastFairTree().run(graph, generator_from(0))
        elapsed = time.perf_counter() - started
    report = prof.report()
    return {
        "profile.fair_tree_fast.run_ms": _timing(
            elapsed * 1e3, "ms", higher_is_better=False,
            details={"phases": report["phases"], "counts": report["counts"]},
        )
    }


def _grid_edge_tuples(rows: int, cols: int) -> list[tuple[int, int]]:
    """Nested-loop grid edges — the pre-array construction reference."""
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def _graph_build(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Array-native construction vs the tuple-of-tuples reference path.

    The gated metric is a *hash-mismatch count*: every generator family
    in the pinned sweep must produce bit-identical ``content_hash`` to an
    independently-written tuple-path reference (nested loops feeding
    ``from_edges`` with a Python list), and a shuffled/reversed tuple
    round-trip of a random tree must re-canonicalize to the same hash.
    Any nonzero value means the vectorized canonicalization changed graph
    content.  The speedup itself is wall-clock and therefore advisory.
    """
    import numpy as np

    from ..graphs.generators import (
        complete_graph,
        cycle_graph,
        grid_graph,
        path_graph,
        random_tree,
        star_graph,
        triangulated_grid,
    )
    from ..graphs.graph import StaticGraph

    mismatches = 0
    checked: list[str] = []

    def check(name: str, graph: StaticGraph, reference: StaticGraph) -> None:
        nonlocal mismatches
        checked.append(name)
        if graph.content_hash() != reference.content_hash():
            mismatches += 1

    n = _COUNT_N
    check("path", path_graph(n),
          StaticGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)]))
    check("cycle", cycle_graph(n),
          StaticGraph.from_edges(
              n, [(i, (i + 1) % n) for i in range(n)]))
    check("star", star_graph(n),
          StaticGraph.from_edges(n, [(0, i) for i in range(1, n)]))
    check("complete", complete_graph(12),
          StaticGraph.from_edges(
              12, [(i, j) for i in range(12) for j in range(i + 1, 12)]))
    check("grid", grid_graph(12, 9),
          StaticGraph.from_edges(12 * 9, _grid_edge_tuples(12, 9)))
    tri_ref = _grid_edge_tuples(7, 5) + [
        (r * 5 + c, (r + 1) * 5 + c + 1)
        for r in range(6) for c in range(4)
    ]
    check("triangulated_grid", triangulated_grid(7, 5),
          StaticGraph.from_edges(7 * 5, tri_ref))
    # Canonicalization equivalence: feed the canonical edges back as a
    # shuffled, endpoint-swapped Python tuple list; the slow path must
    # reproduce the same canonical form.
    tree = random_tree(n, seed=_COUNT_SEED).graph
    scrambled = [(int(v), int(u)) for u, v in tree.edges.tolist()]
    np.random.default_rng(_COUNT_SEED).shuffle(scrambled)  # type: ignore[arg-type]
    check("random_tree_scrambled", tree,
          StaticGraph.from_edges(n, scrambled))

    side = config.graph_side
    started = time.perf_counter()
    fast = grid_graph(side, side)
    array_s = time.perf_counter() - started
    started = time.perf_counter()
    slow = StaticGraph.from_edges(side * side, _grid_edge_tuples(side, side))
    tuple_s = time.perf_counter() - started
    if fast.content_hash() != slow.content_hash():
        mismatches += 1
        checked.append("grid_timing_pair")

    started = time.perf_counter()
    random_tree(side * side, seed=_COUNT_SEED)
    tree_s = time.perf_counter() - started

    details = {"side": side, "n": side * side, "m": fast.m,
               "array_ms": array_s * 1e3, "tuple_ms": tuple_s * 1e3}
    return {
        "graph.build.hash_mismatches": _count(
            mismatches, "graphs", details={"checked": checked},
        ),
        "graph.build.grid_speedup": _timing(
            tuple_s / array_s if array_s > 0 else float("inf"), "x",
            higher_is_better=True, details=details,
        ),
        "graph.build.grid_ms": _timing(
            array_s * 1e3, "ms", higher_is_better=False, details=details,
        ),
        "graph.build.random_tree_ms": _timing(
            tree_s * 1e3, "ms", higher_is_better=False,
            details={"n": side * side, "seed": _COUNT_SEED},
        ),
    }


def _graph_load(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """On-disk formats: memmap open latency vs the ``.npz`` decompress path.

    The gated metric counts round-trip hash mismatches across all three
    loaders (``.reprograph`` with verification, ``.npz``, and a SNAP
    edge-list rendering that includes duplicate reversed rows and a
    self-loop) plus a check that a memmapped load arrives with its CSR
    pre-materialized.  Timings are advisory: memmap open cost is a
    header read, so it is reported at whatever scale ``graph_side``
    pins.
    """
    import tempfile
    from pathlib import Path

    from ..graphs.diskgraph import load_reprograph, save_reprograph
    from ..graphs.generators import grid_graph, random_tree
    from ..graphs.io import load_graph, save_graph
    from ..graphs.snap import load_snap_edgelist

    side = config.graph_side
    graph = grid_graph(side, side)
    mismatches = 0
    checked: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        root = Path(tmp)
        disk = root / "g.reprograph"
        file_bytes = save_reprograph(disk, graph)
        started = time.perf_counter()
        loaded = load_reprograph(disk)
        memmap_s = time.perf_counter() - started
        checked.append("reprograph")
        if load_reprograph(disk, verify=True).content_hash() != graph.content_hash():
            mismatches += 1
        checked.append("reprograph_csr_premat")
        if "_csr" not in loaded.__dict__:
            mismatches += 1

        npz = root / "g.npz"
        save_graph(npz, graph)
        started = time.perf_counter()
        npz_graph = load_graph(npz)
        npz_s = time.perf_counter() - started
        checked.append("npz")
        if npz_graph.content_hash() != graph.content_hash():
            mismatches += 1

        # SNAP text round-trip on a pinned small graph: both directions
        # of every edge, a comment, and a self-loop to exercise parsing.
        small = random_tree(_COUNT_N, seed=_COUNT_SEED).graph
        lines = ["# bench snap roundtrip"]
        for u, v in small.edges.tolist():
            lines.append(f"{u}\t{v}")
            lines.append(f"{v} {u}")
        lines.append("3 3")
        text = root / "g.txt"
        text.write_text("\n".join(lines) + "\n", encoding="utf-8")
        snap = load_snap_edgelist(text)
        checked.append("snap")
        if (
            snap.graph.content_hash() != small.content_hash()
            or snap.self_loops_dropped != 1
        ):
            mismatches += 1

    details = {"side": side, "n": graph.n, "m": graph.m,
               "file_mb": file_bytes / 1e6,
               "memmap_ms": memmap_s * 1e3, "npz_ms": npz_s * 1e3}
    return {
        "graph.load.roundtrip_mismatches": _count(
            mismatches, "graphs", details={"checked": checked},
        ),
        "graph.load.reprograph_ms": _timing(
            memmap_s * 1e3, "ms", higher_is_better=False, details=details,
        ),
        "graph.load.npz_vs_reprograph": _timing(
            npz_s / memmap_s if memmap_s > 0 else float("inf"), "x",
            higher_is_better=True, details=details,
        ),
    }


# --------------------------------------------------------------------- #
# count cases (deterministic; gate on any deviation)
# --------------------------------------------------------------------- #
def _faithful_counts(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Rounds/messages of the faithful engines on a pinned seeded run."""
    from ..algorithms.fair_tree import FairTree
    from ..algorithms.luby import LubyMIS
    from ..runtime.rng import generator_from

    graph = _bench_tree(_COUNT_N, seed=_COUNT_SEED)
    out: dict[str, dict[str, Any]] = {}
    for algorithm in (LubyMIS(), FairTree()):
        result = algorithm.run(graph, generator_from(_COUNT_SEED))
        metrics = result.metrics
        assert metrics is not None
        out[f"faithful.{algorithm.name}.rounds"] = _count(
            metrics.rounds, "rounds", details={"n": _COUNT_N, "seed": _COUNT_SEED}
        )
        out[f"faithful.{algorithm.name}.messages"] = _count(
            metrics.total_messages, "messages",
            details={"n": _COUNT_N, "seed": _COUNT_SEED},
        )
    return out


def _fast_counts(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Iteration counts of the fast engines on a pinned seeded run."""
    from ..fast.luby import FastLuby
    from ..runtime.rng import generator_from

    graph = _bench_tree(_COUNT_N, seed=_COUNT_SEED)
    out: dict[str, dict[str, Any]] = {}
    for variant in ("priority", "degree"):
        algorithm = FastLuby(variant=variant)
        result = algorithm.run(graph, generator_from(_COUNT_SEED))
        out[f"fast.{algorithm.name}.iterations"] = _count(
            result.info["iterations"], "iterations",
            details={"n": _COUNT_N, "seed": _COUNT_SEED},
        )
    return out


def _frontend_load(config: BenchConfig) -> dict[str, dict[str, Any]]:
    """Closed-loop load through the sharded TCP front end.

    Structure over speed: wall-clock throughput depends on the host's
    core count (a 1-core runner cannot show a shard speedup), so the
    *gated* metrics are the structural invariants that must hold on any
    machine — warm requests route to the same shard and cost zero new
    trials, nominal (self-calibrated, half-capacity) load sheds nothing,
    and overload sheds *structurally*: at least one shed, every
    non-success carrying a machine-readable error code.  The goodput
    numbers (nominal rps, 4-vs-1-shard ratio, overloaded-admitted p99)
    are recorded as advisory timing metrics with the host's cpu count in
    the details.
    """
    import asyncio
    import contextlib

    from ..frontend import Frontend, FrontendConfig, run_loadgen, run_tcp_server
    from ..obs.metrics import MetricsRegistry

    nominal_spec = f"tree:120:{_COUNT_SEED}"
    warm_specs = [f"tree:{80 + i}:1" for i in range(6)]
    cmp_specs = [f"tree:{90 + i}:2" for i in range(8)]
    overload_specs = [f"tree:{130 + i}:3" for i in range(10)]
    evidence_spec = f"tree:500:{_COUNT_SEED}"

    def v1(spec: str, **kw: Any) -> dict[str, Any]:
        return {
            "graph": spec, "algorithm": "luby_fast", "trials": 40,
            "seed": 0, **kw,
        }

    async def start(shards: int, queue_limit: int = 128):
        cfg = FrontendConfig(
            shards=shards, shard_jobs=1, include_counts=False,
            queue_limit=queue_limit, inherit_shard_stderr=False,
        )
        fe = Frontend(cfg, registry=MetricsRegistry())
        ready = asyncio.Event()
        task = asyncio.create_task(
            run_tcp_server(fe, "127.0.0.1", 0, ready=ready)
        )
        await asyncio.wait_for(ready.wait(), timeout=180)
        return fe, task

    async def stop(task) -> None:
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    async def rpc(port: int, obj: dict[str, Any]) -> dict[str, Any]:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write((json.dumps(obj) + "\n").encode())
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=300)
            return json.loads(line)
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def bench() -> dict[str, dict[str, Any]]:
        (fe1, t1), (fe4, t4) = await asyncio.gather(start(1), start(4))
        port1, port4 = fe1.bound_port, fe4.bound_port
        try:
            # -- warm path on 4 shards: same graph → same shard, cached.
            warm_errors = warm_route_changes = warm_trials_run = 0
            for i, spec in enumerate(warm_specs):
                first = await rpc(port4, v1(spec, id=f"w{i}a"))
                repeat = await rpc(port4, v1(spec, id=f"w{i}b"))
                if "error" in first or "error" in repeat:
                    warm_errors += 1
                    continue
                if repeat.get("shard") != first.get("shard"):
                    warm_route_changes += 1
                if not repeat.get("cached"):
                    warm_trials_run += int(repeat.get("trials_run", 1)) or 1

            # -- sharded evidence economics (mirrors sequential_stopping
            #    at the wire): a fixed deposit, then a default-precision
            #    request with a fresh seed must cost zero new trials.
            deposit = await rpc(port4, {
                "graph": evidence_spec, "algorithm": "fair_tree_fast",
                "trials": 2000, "seed": _COUNT_SEED, "id": "ev-cold",
            })
            warm_v2 = await rpc(port4, {
                "v": 2, "graph": evidence_spec, "algorithm": "fair_tree_fast",
                "seed": _COUNT_SEED + 1, "id": "ev-warm",
            })
            if "error" in deposit or "error" in warm_v2:
                warm_errors += 1
                warm_new_trials = -1
            else:
                if warm_v2.get("shard") != deposit.get("shard"):
                    warm_route_changes += 1
                warm_new_trials = int(warm_v2["realized_trials"]) - int(
                    warm_v2["prior_trials"]
                )

            # -- calibrate: warm mean latency of the nominal request.
            lat: list[float] = []
            for i in range(6):
                t0 = time.perf_counter()
                probe = await rpc(port1, v1(nominal_spec, id=f"cal{i}"))
                lat.append(time.perf_counter() - t0)
                if "error" in probe:
                    warm_errors += 1
            mean_lat = sum(lat[1:]) / len(lat[1:])  # drop the cold first

            # -- nominal: half the measured capacity must shed nothing.
            nominal_rate = max(2.0, 0.5 / mean_lat)
            nominal = await run_loadgen(
                "127.0.0.1", port1, [v1(nominal_spec)] * 30,
                rate=nominal_rate, slo_ms=10_000.0, timeout_s=300,
            )

            # -- 1 vs 4 shards at the same super-capacity offered load.
            for spec in cmp_specs:  # pre-warm both frontends
                await rpc(port1, v1(spec))
                await rpc(port4, v1(spec))
            cmp_rate = 3.0 / mean_lat
            cmp_requests = [v1(cmp_specs[i % len(cmp_specs)]) for i in range(48)]
            cmp1 = await run_loadgen(
                "127.0.0.1", port1, cmp_requests,
                rate=cmp_rate, slo_ms=10_000.0, timeout_s=300,
            )
            cmp4 = await run_loadgen(
                "127.0.0.1", port4, cmp_requests,
                rate=cmp_rate, slo_ms=10_000.0, timeout_s=300,
            )

            # -- overload: shrink the shard queue and slam it 4x over
            #    capacity with uncached graphs; shedding must happen and
            #    every non-success must carry a structured code.
            fe1.config.queue_limit = 2
            for shard in fe1.shards:
                shard.queue_limit = 2
            overload_rate = max(50.0, 4.0 / mean_lat)
            overload = await run_loadgen(
                "127.0.0.1", port1,
                [v1(overload_specs[i % len(overload_specs)], seed=i)
                 for i in range(30)],
                rate=overload_rate, slo_ms=10_000.0, timeout_s=300,
            )
        finally:
            await asyncio.gather(stop(t1), stop(t4))

        details = {
            "cpu_count": os.cpu_count(),
            "calibrated_latency_ms": round(mean_lat * 1e3, 3),
            "nominal_rate_rps": round(nominal_rate, 2),
            "cmp_rate_rps": round(cmp_rate, 2),
            "overload_rate_rps": round(overload_rate, 2),
            "nominal": nominal.to_json(),
            "cmp_1shard": cmp1.to_json(),
            "cmp_4shard": cmp4.to_json(),
            "overload": overload.to_json(),
        }
        ratio = (
            cmp4.goodput_rps / cmp1.goodput_rps
            if cmp1.goodput_rps > 0 else float("inf")
        )
        return {
            "frontend.warm_errors": _count(
                warm_errors, "requests", details=details),
            "frontend.warm_route_changes": _count(
                warm_route_changes, "requests", details=details),
            "frontend.warm_trials_run": _count(
                warm_trials_run, "trials", details=details),
            "frontend.warm_new_trials": _count(
                warm_new_trials, "trials", details=details),
            "frontend.nominal_shed": _count(
                nominal.shed + nominal.rate_limited, "requests",
                details=details),
            "frontend.overload_shed_missing": _count(
                0 if overload.shed > 0 else 1, "flag", details=details),
            "frontend.overload_unstructured_errors": _count(
                overload.errors, "requests", details=details),
            "frontend.nominal_goodput_rps": _timing(
                nominal.goodput_rps, "rps", higher_is_better=True,
                details=details),
            "frontend.shard_goodput_ratio": _timing(
                ratio, "x", higher_is_better=True, details=details),
            "frontend.overload_admitted_p99_ms": _timing(
                overload.latency_ms(0.99), "ms", higher_is_better=False,
                details=details),
        }

    return asyncio.run(bench())


def build_cases(config: BenchConfig) -> list[BenchCase]:
    """The suite, optionally filtered by ``config.only`` (substring)."""
    cases = [
        BenchCase("engine_throughput", _engine_throughput,
                  "exact per-trial fast-engine throughput"),
        BenchCase("batched_throughput", _batched_throughput,
                  "disjoint-union batched throughput"),
        BenchCase("shm_transport", _shm_transport,
                  "zero-copy graph transport bytes and attach latency"),
        BenchCase("service_latency", _service_latency,
                  "service submit→complete latency percentiles"),
        BenchCase("cache_speedup", _cache_speedup,
                  "result-cache warm vs cold speedup"),
        BenchCase("sequential_stopping", _sequential_stopping,
                  "precision-request evidence reuse and realized trials"),
        BenchCase("remote_telemetry", _remote_telemetry,
                  "cross-process telemetry merge completeness + overhead"),
        BenchCase("profiled_run", _profiled_run,
                  "per-phase profile of one FAIRTREE run"),
        BenchCase("graph_build", _graph_build,
                  "array-native construction speedup + hash equivalence"),
        BenchCase("graph_load", _graph_load,
                  "memmap open latency + on-disk round-trip equivalence"),
        BenchCase("faithful_counts", _faithful_counts,
                  "faithful-engine rounds/messages (deterministic)"),
        BenchCase("fast_counts", _fast_counts,
                  "fast-engine iteration counts (deterministic)"),
        BenchCase("frontend", _frontend_load,
                  "sharded front end: warm routing, admission, overload"),
    ]
    if config.only:
        needle = config.only.lower()
        cases = [c for c in cases if needle in c.name.lower()]
    return cases


def run_suite(
    config: BenchConfig,
    progress: Callable[[str], None] | None = None,
    cases: Iterable[BenchCase] | None = None,
) -> dict[str, dict[str, Any]]:
    """Execute the suite; returns ``{metric_name: entry}`` for the artifact."""
    metrics: dict[str, dict[str, Any]] = {}
    for case in cases if cases is not None else build_cases(config):
        if progress is not None:
            progress(f"bench: {case.name} ({case.description})")
        started = time.perf_counter()
        produced = case.fn(config)
        elapsed = time.perf_counter() - started
        for name, entry in produced.items():
            if name in metrics:
                raise ValueError(f"duplicate bench metric name {name!r}")
            metrics[name] = entry
        if progress is not None:
            progress(f"bench: {case.name} done in {elapsed:.2f}s "
                     f"({len(produced)} metrics)")
    return metrics
