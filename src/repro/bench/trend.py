"""Trend history over a directory of bench artifacts.

One artifact answers "how fast is this commit"; a directory of them
answers the question regressions actually pose — "*when* did this
metric move".  This module loads every ``BENCH_*.json`` under the given
paths, orders them by ``created_unix``, and builds a per-metric
trajectory: the value at each run, a sparkline of the whole series, and
step flags wherever a consecutive pair regresses under the exact
:func:`~repro.bench.compare.compare_artifacts` semantics (count metrics
gate on any out-of-tolerance delta, timing metrics flag bad-direction
moves).  ``repro bench trend`` renders the result as an ANSI/markdown
table or ``--json``.

Trend is a *reporting* surface, not a gate: flagged steps are visible
but the command exits 0 — gating stays with ``repro bench --compare``,
which compares against a curated baseline rather than whatever artifact
happens to precede you in a directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..analysis.ascii import sparkline
from .artifact import load_artifact
from .compare import compare_artifacts

__all__ = [
    "MetricTrend",
    "TrendPoint",
    "TrendReport",
    "collect_artifacts",
    "build_trend",
]


@dataclass(frozen=True)
class TrendPoint:
    """One metric's value in one artifact."""

    sha: str
    created_unix: float
    value: float | None
    regressed: bool = False
    gated: bool = False
    note: str = ""


@dataclass
class MetricTrend:
    """Time-ordered trajectory of one metric across the artifact set."""

    name: str
    kind: str
    unit: str
    points: list[TrendPoint] = field(default_factory=list)

    @property
    def values(self) -> list[float]:
        return [
            float("nan") if p.value is None else p.value for p in self.points
        ]

    @property
    def steps(self) -> list[TrendPoint]:
        """Points where the metric regressed versus its predecessor."""
        return [p for p in self.points if p.regressed]

    def spark(self) -> str:
        return sparkline(self.values)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "points": [
                {
                    "sha": p.sha,
                    "created_unix": p.created_unix,
                    "value": p.value,
                    "regressed": p.regressed,
                    "gated": p.gated,
                    "note": p.note,
                }
                for p in self.points
            ],
        }


@dataclass
class TrendReport:
    """All metric trajectories over one artifact directory."""

    artifacts: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[MetricTrend] = field(default_factory=list)

    @property
    def flagged(self) -> list[MetricTrend]:
        """Metrics with at least one regressing step, steps-first."""
        bad = [m for m in self.metrics if m.steps]
        return sorted(bad, key=lambda m: (-len(m.steps), m.name))

    def to_json(self) -> dict[str, Any]:
        return {
            "artifacts": [
                {
                    "git_sha": a.get("git_sha", "unknown"),
                    "created_unix": a.get("created_unix"),
                }
                for a in self.artifacts
            ],
            "metrics": [m.to_json() for m in self.metrics],
        }

    def format(self, markdown: bool = False) -> str:
        """Render the trend table (ANSI fixed-width or GitHub markdown)."""
        n = len(self.artifacts)
        header = (
            f"bench trend: {n} artifact(s), "
            f"{self.artifacts[0].get('git_sha', '?')} -> "
            f"{self.artifacts[-1].get('git_sha', '?')}"
            if n
            else "bench trend: no artifacts"
        )
        lines = [header]
        if not n:
            return header
        if markdown:
            lines.append("")
            lines.append("| metric | kind | first | last | trend | steps |")
            lines.append("|---|---|---:|---:|---|---|")
        else:
            lines.append(
                f"{'metric':<38} {'kind':<7} {'first':>12} {'last':>12} "
                f"{'trend':<{max(n, 5)}}  steps"
            )
        for m in sorted(self.metrics, key=lambda m: m.name):
            vals = [p.value for p in m.points if p.value is not None]
            first = f"{vals[0]:.4g}" if vals else "-"
            last = f"{vals[-1]:.4g}" if vals else "-"
            steps = ", ".join(
                f"{p.sha}{' [' + p.note + ']' if p.note else ''}"
                for p in m.steps
            )
            if markdown:
                lines.append(
                    f"| {m.name} | {m.kind} | {first} | {last} "
                    f"| `{m.spark()}` | {steps or '-'} |"
                )
            else:
                lines.append(
                    f"{m.name:<38} {m.kind:<7} {first:>12} {last:>12} "
                    f"{m.spark():<{max(n, 5)}}  {steps or '-'}"
                )
        flagged = self.flagged
        if flagged:
            lines.append(
                f"{len(flagged)} metric(s) stepped: "
                + ", ".join(m.name for m in flagged)
            )
        else:
            lines.append("no regressing steps")
        return "\n".join(lines)


def collect_artifacts(paths: list[str | Path]) -> list[dict[str, Any]]:
    """Load artifacts from files and/or directories, oldest first.

    Directories contribute every ``BENCH_*.json`` inside them;
    unreadable or schema-mismatched files are skipped (a trend over a
    long-lived directory must survive one stray file).  Ordering is by
    ``created_unix`` (path name as tie-break, for stable output).
    """
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    docs: list[tuple[float, str, dict[str, Any]]] = []
    for f in files:
        try:
            doc = load_artifact(f)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        docs.append((float(doc.get("created_unix", 0.0)), str(f), doc))
    docs.sort(key=lambda t: (t[0], t[1]))
    return [doc for _, _, doc in docs]


def build_trend(
    artifacts: list[Mapping[str, Any]],
    tolerance_pct: float | None = None,
    strict_timing: bool = False,
    only: list[str] | None = None,
) -> TrendReport:
    """Per-metric trajectories with consecutive-pair step flags.

    Each adjacent artifact pair goes through
    :func:`~repro.bench.compare.compare_artifacts`, so a step here means
    exactly what a ``--compare`` failure would have meant between those
    two runs (count deltas beyond tolerance; bad-direction timing moves,
    gated only under *strict_timing* or the metric's own gate flag).
    """
    report = TrendReport(artifacts=[dict(a) for a in artifacts])
    if not artifacts:
        return report
    names: dict[str, dict[str, str]] = {}
    for doc in artifacts:
        for name, entry in doc.get("metrics", {}).items():
            if only and name not in only:
                continue
            names.setdefault(
                name,
                {
                    "kind": str(entry.get("kind", "timing")),
                    "unit": str(entry.get("unit", "")),
                },
            )
    # Pairwise verdicts, reusing the compare gate semantics verbatim.
    verdicts: list[dict[str, Any]] = []
    for prev, cur in zip(artifacts, artifacts[1:]):
        rows = compare_artifacts(
            cur,
            prev,
            tolerance_pct=tolerance_pct,
            strict_timing=strict_timing,
        ).rows
        verdicts.append({r.name: r for r in rows})
    for name in sorted(names):
        trend = MetricTrend(name=name, **names[name])
        for i, doc in enumerate(artifacts):
            entry = doc.get("metrics", {}).get(name)
            value = None if entry is None else float(entry.get("value"))
            regressed = gated = False
            note = ""
            if i > 0:
                row = verdicts[i - 1].get(name)
                if row is not None:
                    regressed, gated, note = row.regressed, row.gated, row.note
            trend.points.append(
                TrendPoint(
                    sha=str(doc.get("git_sha", "unknown")),
                    created_unix=float(doc.get("created_unix", 0.0)),
                    value=value,
                    regressed=regressed,
                    gated=gated,
                    note=note,
                )
            )
        report.metrics.append(trend)
    return report
