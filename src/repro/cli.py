"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      registered algorithms
``run``       one MIS execution on a graph spec, printed summary
``estimate``  Monte-Carlo join probabilities + inequality factor
``serve``     estimation service: JSON requests on stdin → results on stdout
``batch``     estimation service over a JSON-lines request file
``stats``     probe the service and print its metrics exposition
``trace``     export a span tree as Chrome trace-event / Perfetto JSON
``top``       live terminal dashboard over service stats snapshots
``explain``   render a request's convergence trace (why it stopped)
``evidence``  introspect/purge the cache's pooled evidence plane
``health``    evaluate SLO health rules; exit 0 ok / 1 warn / 2 crit
``bench``     continuous benchmark suite → ``BENCH_<sha>.json`` artifact
              (``bench trend`` aggregates a directory of artifacts)
``graph``     convert/inspect on-disk graphs (``.npz``/``.reprograph``/SNAP)
``table1``    regenerate Table I
``figure4``   regenerate Figure 4 (ASCII CDF panels)
``star``      the §I star demonstration
``cone``      the §VIII lower-bound sweep
``bounds``    Theorems 3/8/13/17 checks
``rounds``    round-complexity measurement (faithful layer)
``optimal``   exact optimal fairness (LP) on small families

Graph specs (``--graph``) are parsed by :mod:`repro.graphs.spec` — see
its docstring for the full ``kind:arg`` grammar (``tree:N[:SEED]``,
``path:N``, ``grid:RxC``, ``city:N[:SEED]``, ...).

``--jobs`` follows the canonical semantics of
:func:`repro.analysis.montecarlo.normalize_jobs`: ``1`` inline, ``0`` or
negative = all cores, ``k > 1`` = that many worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from contextlib import contextmanager
from typing import IO, Iterable

import numpy as np

from .core.registry import available, make
from .graphs.graph import StaticGraph
from .graphs.spec import GraphSpecError, build_graph

__all__ = ["main", "parse_graph_spec"]


def _graph_from_spec(spec: str) -> StaticGraph:
    """Build a graph from a CLI spec string; exits with a message on error."""
    try:
        return build_graph(spec)
    except GraphSpecError as exc:
        raise SystemExit(f"{exc} (see --help)") from exc


def parse_graph_spec(spec: str) -> StaticGraph:
    """Deprecated alias — use :meth:`repro.graphs.spec.GraphSpec.parse` /
    :func:`repro.graphs.spec.build_graph` instead.

    Kept so existing scripts importing ``repro.cli.parse_graph_spec``
    continue to work (including its ``SystemExit`` error behavior).
    """
    warnings.warn(
        "repro.cli.parse_graph_spec is deprecated; use "
        "repro.graphs.spec.GraphSpec.parse(...).build() or build_graph()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _graph_from_spec(spec)


def _cmd_list(_args: argparse.Namespace) -> None:
    for name in available():
        print(name)


def _cmd_run(args: argparse.Namespace) -> None:
    graph = _graph_from_spec(args.graph)
    alg = make(args.algorithm)
    result = alg.run(graph, np.random.default_rng(args.seed))
    result.validate(graph)
    print(f"graph     : {args.graph} (n={graph.n}, m={graph.m})")
    print(f"algorithm : {alg.name}")
    print(f"MIS size  : {result.size}")
    if result.rounds:
        print(f"rounds    : {result.rounds}")
    if result.info:
        print(f"info      : {dict(result.info)}")


def _cmd_estimate(args: argparse.Namespace) -> None:
    from .analysis.ascii import render_histogram

    graph = _graph_from_spec(args.graph)
    if args.ci is not None or args.ineq_ci is not None:
        # v2 precision mode: target a CI, let the scheduler stop early.
        from .service import Estimator, Precision

        spec: dict[str, object] = {
            "node_ci": args.ci,
            "inequality_ci": args.ineq_ci,
            "confidence": args.confidence,
        }
        if args.max_trials is not None:
            spec["max_trials"] = args.max_trials
        with Estimator(n_jobs=args.jobs) as service:
            result = service.estimate(
                graph=graph,
                algorithm=args.algorithm,
                precision=Precision(**spec),  # type: ignore[arg-type]
                seed=args.seed,
            )
        est = result.estimate
        stop = "stopped early" if result.stopped_early else "hit trial cap"
        budget = (
            f"trials: {est.trials} ({stop}; "
            f"{result.prior_trials} from cached evidence)"
        )
    else:
        from .analysis.montecarlo import run_trials

        alg = make(args.algorithm)
        est = run_trials(
            alg, graph, args.trials, seed=args.seed, n_jobs=args.jobs
        )
        budget = f"trials: {args.trials}"
    lower, upper = est.inequality_bounds()
    print(f"graph        : {args.graph} (n={graph.n})")
    print(f"algorithm    : {args.algorithm}   {budget}")
    print(f"inequality   : {est.inequality:.3f}   (95% CI [{lower:.2f}, {upper:.2f}])")
    print(f"min/max join : {est.min_probability:.3f} / {est.max_probability:.3f}")
    print("join-frequency histogram:")
    print("  " + render_histogram(est.probabilities))


def _cmd_table1(args: argparse.Namespace) -> None:
    from .experiments.table1 import format_table1, run_table1

    rows = run_table1(
        trials=args.trials, seed=args.seed, city_n=args.city_n, n_jobs=args.jobs
    )
    print(format_table1(rows))


def _cmd_figure4(args: argparse.Namespace) -> None:
    from .analysis.ascii import render_cdf
    from .experiments.figure4 import format_figure4, run_figure4

    series = run_figure4(
        trials=args.trials, seed=args.seed, city_n=args.city_n, n_jobs=args.jobs
    )
    print(format_figure4(series))
    panels: dict[str, dict[str, object]] = {}
    for s in series:
        panels.setdefault(s.panel, {})[f"{s.algorithm[:12]}:{s.tree[:18]}"] = s.cdf
    for panel, cdfs in panels.items():
        print(f"\nFigure 4 ({panel}):")
        print(render_cdf(cdfs))  # type: ignore[arg-type]


def _cmd_star(args: argparse.Namespace) -> None:
    from .experiments.star import format_star, run_star_experiment

    print(format_star(run_star_experiment(trials=args.trials, seed=args.seed)))


def _cmd_cone(args: argparse.Namespace) -> None:
    from .experiments.cone import format_cone, run_cone_experiment

    print(format_cone(run_cone_experiment(trials=args.trials, seed=args.seed)))


def _cmd_bounds(args: argparse.Namespace) -> None:
    from .experiments.bounds import format_bounds, run_all_bounds

    print(format_bounds(run_all_bounds(trials=args.trials, seed=args.seed)))


def _cmd_rounds(args: argparse.Namespace) -> None:
    from .experiments.rounds import format_rounds, run_rounds_experiment

    print(format_rounds(run_rounds_experiment(seed=args.seed)))


def _cmd_optimal(args: argparse.Namespace) -> None:
    from .experiments.optimal import format_optimal, run_optimal_experiment

    print(format_optimal(run_optimal_experiment(trials=args.trials, seed=args.seed)))


def _cmd_families(args: argparse.Namespace) -> None:
    from .experiments.families import format_family_sweep, run_family_sweep

    print(format_family_sweep(run_family_sweep(trials=args.trials, seed=args.seed)))


def _latency_summary(registry) -> dict[str, dict[str, float | None]]:
    """Per-algorithm request-latency percentiles (ms) from the registry.

    Empty histograms yield ``None`` entries (rendered as ``-`` by
    ``repro stats``), never a crash.
    """
    out: dict[str, dict[str, float | None]] = {}
    summaries = registry.quantiles("service_request_latency_seconds")
    for labels, summary in summaries.items():
        out[labels or "all"] = {
            "count": summary["count"],
            "mean_ms": _ms(summary["mean"]),
            "p50_ms": _ms(summary["p50"]),
            "p95_ms": _ms(summary["p95"]),
            "p99_ms": _ms(summary["p99"]),
        }
    return out


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1e3


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:.2f}ms"


def _fmt_count(value: float | None) -> str:
    return "-" if value is None else f"{value:.0f}"


def _service_loop(
    lines: Iterable[str],
    out: IO[str],
    *,
    jobs: int,
    cache_size: int,
    mode: str,
    include_counts: bool,
    stats_every: int = 0,
    stats_stream: IO[str] | None = None,
    shm: bool = True,
    max_line_bytes: int | None = None,
) -> int:
    """Run JSON-lines requests through one warm Estimator; returns #errors.

    Malformed JSON, unknown ``"v"`` envelopes, oversized lines, and
    schema violations never raise — each comes back as a structured
    per-line error object in the request's protocol shape
    (:mod:`repro.frontend.protocol`).  With ``stats_every=N`` a one-line
    JSON stats snapshot (counters, request-latency percentiles, plus the
    full metrics-registry snapshot) is written after every N served
    requests — the live-monitoring hook for ``serve``/``batch``.
    Snapshots go to *stats_stream* when given (``--stats-file``,
    JSON-lines), otherwise to stderr.
    """
    from .frontend.protocol import (
        DEFAULT_MAX_LINE_BYTES,
        error_payload,
        parse_request_line,
    )
    from .service import Estimator

    errors = 0
    served = 0
    v1_noted = False
    limit = max_line_bytes if max_line_bytes is not None else DEFAULT_MAX_LINE_BYTES
    with Estimator(n_jobs=jobs, cache_size=cache_size, shm=shm) as service:
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parsed = parse_request_line(
                line, lineno=lineno, max_bytes=limit, default_mode=mode
            )
            if parsed.obj is not None and parsed.version == 1 and not v1_noted:
                # Once per connection, not per line: v1 traffic is
                # legal but deprecated (docs/API.md migration table).
                v1_noted = True
                print(
                    "note: v1 fixed-trial requests are deprecated; "
                    'send {"v": 2, ...} with a "precision" block '
                    "(see docs/API.md)",
                    file=sys.stderr,
                )
            if not parsed.ok:
                errors += 1
                payload = parsed.error
            else:
                try:
                    result = service.estimate(parsed.request)
                    payload = result.to_json(include_counts=include_counts)
                except Exception as exc:  # noqa: BLE001 - reported per request
                    errors += 1
                    payload = error_payload(
                        "internal",
                        str(exc),
                        version=parsed.version,
                        line=lineno,
                        request_id=parsed.request.id,
                    )
            out.write(json.dumps(payload) + "\n")
            out.flush()
            served += 1
            if stats_every and served % stats_every == 0:
                import time as _time

                snapshot = {
                    "event": "stats",
                    "ts": _time.time(),
                    "requests_served": served,
                    "counters": service.counters.snapshot(),
                    "latency_ms": _latency_summary(service.registry),
                    "metrics": service.registry.snapshot(),
                }
                target = stats_stream if stats_stream is not None else sys.stderr
                target.write(json.dumps(snapshot) + "\n")
                target.flush()
        stats = service.counters.snapshot()
    print(
        "service: {requests} requests, {cache_hits} cache hits, "
        "{trials_executed} trials executed".format(**stats),
        file=sys.stderr,
    )
    return errors


def _configure_service_logging(args: argparse.Namespace) -> None:
    """Enable structured JSON logging on stderr when ``--log-level`` set."""
    if getattr(args, "log_level", None):
        from .obs.logging import configure_logging

        configure_logging(stream=sys.stderr, level=args.log_level)


@contextmanager
def _stats_stream(args: argparse.Namespace):
    """Open ``--stats-file`` (append-mode JSON lines), or yield ``None``."""
    path = getattr(args, "stats_file", None)
    if not path:
        yield None
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            yield fh
    except OSError as exc:
        raise SystemExit(f"error: cannot open {path}: {exc.strerror}")


@contextmanager
def _trace_sink(args: argparse.Namespace):
    """Register a ``--trace-file`` JSONL span sink for the duration."""
    path = getattr(args, "trace_file", None)
    if not path:
        yield None
        return
    from .obs.export import JsonlSpanSink
    from .obs.spans import register_span_sink, unregister_span_sink

    try:
        sink = JsonlSpanSink(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot open {path}: {exc.strerror}")
    register_span_sink(sink)
    try:
        yield sink
    finally:
        unregister_span_sink(sink)
        sink.close()


@contextmanager
def _flush_on_signals(*flushables):
    """Flush the given sinks on SIGTERM/SIGINT before exiting.

    Short ``serve`` runs are routinely stopped by a signal; without this
    their buffered ``--stats-file``/``--trace-file`` tails are lost.
    SIGTERM flushes and exits 143 (128+15); SIGINT flushes and re-raises
    as ``KeyboardInterrupt`` so the existing handling runs.  Handlers
    can only be installed on the main thread — elsewhere this is a
    no-op passthrough.
    """
    import signal

    def _flush_all() -> None:
        for sink in flushables:
            if sink is None:
                continue
            try:
                sink.flush()
            except Exception:  # noqa: BLE001 - flushing is best-effort
                pass

    def _on_term(_signum, _frame):
        _flush_all()
        raise SystemExit(143)

    def _on_int(_signum, _frame):
        _flush_all()
        raise KeyboardInterrupt

    try:
        prev_term = signal.signal(signal.SIGTERM, _on_term)
        prev_int = signal.signal(signal.SIGINT, _on_int)
    except ValueError:  # non-main thread: keep default delivery
        yield
        return
    try:
        yield
    finally:
        _flush_all()
        signal.signal(signal.SIGTERM, prev_term)
        signal.signal(signal.SIGINT, prev_int)


def _parse_hostport(text: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``:PORT``/``PORT``) → ``(host, port)``."""
    host, _, port = text.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"error: expected HOST:PORT, got {text!r}")


def _cmd_serve_network(args: argparse.Namespace) -> None:
    """The ``serve --tcp/--http`` front end (docs/SERVICE.md)."""
    import asyncio

    from .frontend import (
        Frontend,
        FrontendConfig,
        run_http_server,
        run_tcp_server,
    )
    from .frontend.protocol import DEFAULT_MAX_LINE_BYTES

    if args.tcp and args.http:
        raise SystemExit("error: choose one of --tcp / --http")
    host, port = _parse_hostport(args.tcp or args.http)
    config = FrontendConfig(
        shards=args.shards,
        shard_jobs=args.shard_jobs,
        cache_size=args.cache_size,
        mode=args.mode,
        include_counts=not args.no_counts,
        shm=not args.no_shm,
        queue_limit=args.queue_limit,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        admission_half_life_s=args.admission_half_life,
        shed_threshold=args.shed_threshold,
        max_line_bytes=args.max_line_bytes or DEFAULT_MAX_LINE_BYTES,
        shard_log_level=args.log_level,
    )
    runner = run_tcp_server if args.tcp else run_http_server
    frontend = Frontend(config)
    print(
        f"repro front end listening on {host}:{port} "
        f"({'tcp' if args.tcp else 'http'}, {config.shards} shard"
        f"{'s' if config.shards != 1 else ''}); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        with _stats_stream(args) as stats_stream, _flush_on_signals(
            stats_stream
        ):
            asyncio.run(
                runner(frontend, host, port, stats_stream=stats_stream)
            )
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        raise SystemExit(130)


def _cmd_serve(args: argparse.Namespace) -> None:
    _configure_service_logging(args)
    if args.tcp or args.http:
        _cmd_serve_network(args)
        return
    print(
        "repro estimation service ready — one JSON request per line "
        "(see docs/SERVICE.md); EOF to stop",
        file=sys.stderr,
    )
    try:
        with _stats_stream(args) as stats_stream, _trace_sink(
            args
        ) as trace_sink, _flush_on_signals(stats_stream, trace_sink):
            errors = _service_loop(
                sys.stdin,
                sys.stdout,
                jobs=args.jobs,
                cache_size=args.cache_size,
                mode=args.mode,
                include_counts=not args.no_counts,
                stats_every=args.stats_every,
                stats_stream=stats_stream,
                shm=not args.no_shm,
                max_line_bytes=args.max_line_bytes,
            )
    except KeyboardInterrupt:
        # The Estimator context has already torn its workers down.
        print("interrupted", file=sys.stderr)
        raise SystemExit(130)
    if errors:
        raise SystemExit(1)


def _cmd_loadgen(args: argparse.Namespace) -> None:
    import asyncio

    from .frontend import run_loadgen

    host, port = _parse_hostport(args.connect)
    specs = [s.strip() for s in args.graph.split(",") if s.strip()]
    if not specs:
        raise SystemExit("error: --graph must name at least one spec")
    requests: list[dict] = []
    for i in range(args.requests):
        spec = specs[i % len(specs)]
        if args.v2:
            requests.append(
                {"v": 2, "graph": spec, "algorithm": args.algorithm, "seed": 0}
            )
        else:
            requests.append(
                {
                    "graph": spec,
                    "algorithm": args.algorithm,
                    "trials": args.trials,
                    "seed": 0,
                }
            )
    try:
        report = asyncio.run(
            run_loadgen(
                host,
                port,
                requests,
                rate=args.rate,
                slo_ms=args.slo_ms,
                timeout_s=args.timeout,
            )
        )
    except ConnectionError as exc:
        raise SystemExit(f"error: cannot reach {host}:{port}: {exc}")
    except KeyboardInterrupt:
        raise SystemExit(130)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())


def _cmd_batch(args: argparse.Namespace) -> None:
    _configure_service_logging(args)
    try:
        with open(args.input, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise SystemExit(f"error: cannot read {args.input}: {exc.strerror}")
    with _stats_stream(args) as stats_stream, _trace_sink(
        args
    ) as trace_sink, _flush_on_signals(stats_stream, trace_sink):
        if args.output == "-":
            errors = _service_loop(
                lines,
                sys.stdout,
                jobs=args.jobs,
                cache_size=args.cache_size,
                mode=args.mode,
                include_counts=not args.no_counts,
                stats_every=args.stats_every,
                stats_stream=stats_stream,
                shm=not args.no_shm,
                max_line_bytes=args.max_line_bytes,
            )
        else:
            with open(args.output, "w", encoding="utf-8") as out:
                errors = _service_loop(
                    lines,
                    out,
                    jobs=args.jobs,
                    cache_size=args.cache_size,
                    mode=args.mode,
                    include_counts=not args.no_counts,
                    stats_every=args.stats_every,
                    stats_stream=stats_stream,
                    shm=not args.no_shm,
                    max_line_bytes=args.max_line_bytes,
                )
    if errors:
        raise SystemExit(1)


def _cmd_stats(args: argparse.Namespace) -> None:
    """Exercise the service with a small probe and print its metrics.

    The probe issues one exact-mode request (filling the rounds-per-trial,
    trials-per-chunk and latency histograms), repeats it (filling the
    cache-hit path), and runs a precision-targeted request twice (cold,
    then seeded from the deposited evidence — filling the precision
    plane), then renders the estimator's registry in Prometheus text
    and/or JSON form.
    """
    from .service import Estimator, Precision

    graph = _graph_from_spec(args.graph)
    with Estimator(n_jobs=args.jobs, cache_size=8) as service:
        for _ in range(2):  # second pass exercises the cache-hit path
            service.estimate(
                graph=graph,
                algorithm=args.algorithm,
                trials=args.trials,
                seed=args.seed,
                mode="exact",
            )
        for _ in range(2):  # second pass is served from pooled evidence
            service.estimate(
                graph=graph,
                algorithm=args.algorithm,
                precision=Precision.default(),
                seed=args.seed,
            )
        counters = service.counters.snapshot()
        registry = service.registry
        latency = _latency_summary(registry)
        if args.format in ("prom", "both"):
            print(registry.render_prometheus(), end="")
        if args.format in ("json", "both"):
            if args.format == "both":
                print()
            print(
                json.dumps(
                    {
                        "counters": counters,
                        "latency_ms": latency,
                        "metrics": registry.snapshot(),
                    },
                    indent=2,
                )
            )
        for labels, summary in latency.items():
            print(
                f"latency[{labels}]: p50 {_fmt_ms(summary['p50_ms'])}  "
                f"p95 {_fmt_ms(summary['p95_ms'])}  "
                f"p99 {_fmt_ms(summary['p99_ms'])}  "
                f"(n={summary['count']:.0f})",
                file=sys.stderr,
            )
        # Precision plane: the sequential-stopping economics in one line
        # (plus fleet-wide realized-trials percentiles, worker/algorithm
        # labels summed away).
        precision_requests = counters["precision_requests"]
        if precision_requests:
            early_ratio = counters["early_stops"] / precision_requests
            looked = counters["evidence_hits"] + counters["evidence_misses"]
            hit_rate = counters["evidence_hits"] / looked if looked else None
            realized = registry.aggregated_quantiles(
                "service_realized_trials",
                qs=(0.5, 0.95),
                drop_labels=("worker", "algorithm"),
            ).get("", {})
            print(
                f"precision: {precision_requests} requests  "
                f"early-stop {early_ratio * 100:.0f}%  "
                "evidence hit "
                + ("-" if hit_rate is None else f"{hit_rate * 100:.0f}%")
                + f"  realized trials p50 "
                f"{_fmt_count(realized.get('p50'))} "
                f"p95 {_fmt_count(realized.get('p95'))}",
                file=sys.stderr,
            )


def _render_trace(trace) -> str:
    """Render one convergence trace as the ``repro explain`` report."""
    from .analysis.ascii import sparkline

    reason = {
        "satisfied": "precision satisfied before the cap (stopped early)",
        "capped": "hard trial cap reached before the CI closed",
        "fixed-budget": "fixed trial budget (v1) — no stopping decision",
    }[trace.stop_reason]
    lines = [
        f"request    : {trace.request_id or '-'}   "
        f"algorithm {trace.algorithm}   mode {trace.mode}",
        f"graph hash : {trace.graph_hash}",
        f"stop reason: {trace.stop_reason} — {reason}",
        f"evidence   : {trace.prior_trials} prior (pooled) + "
        f"{trace.new_trials} fresh trials"
        + ("   [served from prior alone]" if trace.cached else ""),
    ]
    if trace.precision:
        target = ", ".join(
            f"{k}={v}" for k, v in trace.precision.items() if v is not None
        )
        lines.append(f"target     : {target}")
    lines.append("")
    lines.append(
        f"{'round':>5} {'chunks':>6} {'new':>7} {'total':>7} "
        f"{'node hw':>9} {'target':>8} {'ineq hw':>9} {'predict':>8} "
        f"{'wall ms':>9}  outcome"
    )
    for f in trace.frames:
        tgt = "-" if f.node_target is None else f"{f.node_target:.4g}"
        ineq = (
            "-"
            if f.inequality_halfwidth is None
            else f"{f.inequality_halfwidth:.4f}"
        )
        lines.append(
            f"{f.round:>5} {f.chunks:>6} {f.new_trials:>7} {f.trials:>7} "
            f"{f.node_halfwidth:>9.4f} {tgt:>8} {ineq:>9} "
            f"{f.predicted_remaining:>8} {f.wall_s * 1e3:>9.2f}  {f.outcome}"
        )
    widths = trace.node_halfwidths()
    if len(widths) > 1:
        lines.append("")
        lines.append(
            f"node half-width {widths[0]:.4f} "
            f"{sparkline(widths, lo=0.0)} {widths[-1]:.4f}"
        )
    return "\n".join(lines)


def _cmd_explain(args: argparse.Namespace) -> None:
    """Render a request's convergence trace (why the estimator stopped).

    Two modes:

    * **file mode** (``--input results.jsonl``): read result lines from a
      ``serve``/``batch`` run (the request must have asked for
      ``"trace": true``) and explain one of them (``--id``, default the
      last trace-bearing line).
    * **probe mode** (default): run one cold default-precision request
      through a live Estimator and explain it — the one-command way to
      watch the Wilson half-width close round by round.
    """
    from .service.journal import ConvergenceTrace

    if args.input:
        traces: list[ConvergenceTrace] = []
        try:
            with open(args.input, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(obj, dict) and "convergence" in obj:
                        traces.append(
                            ConvergenceTrace.from_json(obj["convergence"])
                        )
        except OSError as exc:
            raise SystemExit(f"error: cannot read {args.input}: {exc.strerror}")
        if args.id is not None:
            traces = [t for t in traces if t.request_id == args.id]
        if not traces:
            what = f"request id {args.id!r}" if args.id else "convergence traces"
            raise SystemExit(
                f"error: no {what} in {args.input} (did the requests set "
                '"trace": true?)'
            )
        trace = traces[-1]
    else:
        from .service import Estimator, Precision

        graph = _graph_from_spec(args.graph)
        with Estimator(n_jobs=args.jobs, clamp_to_host=False) as service:
            service.estimate(
                graph=graph,
                algorithm=args.algorithm,
                precision=Precision.default(),
                seed=args.seed,
                trace=True,
                request_id="probe",
                timeout=300,
            )
            trace = service.journal.last()
        assert trace is not None
    if args.json:
        print(json.dumps(trace.to_json(), indent=2))
    else:
        print(_render_trace(trace))


def _cmd_evidence(args: argparse.Namespace) -> None:
    """Introspect (or purge) the cache's pooled evidence plane.

    Runs requests first so there is a plane to inspect: either the
    JSON-lines file given with ``--requests`` (same schema as ``batch``)
    or a small two-algorithm precision probe.  Then ``ls`` tabulates
    every ``(graph, algorithm)`` pool, ``show`` dumps matching pools in
    detail, and ``purge`` drops them (reporting the freed count).
    """
    from .service import Estimator, EstimateRequest, Precision

    graph = _graph_from_spec(args.graph)
    with Estimator(n_jobs=args.jobs, clamp_to_host=False) as service:
        if args.requests:
            try:
                with open(args.requests, "r", encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError as exc:
                raise SystemExit(
                    f"error: cannot read {args.requests}: {exc.strerror}"
                )
            for line in lines:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                request = EstimateRequest.from_json(json.loads(line))
                service.estimate(request, timeout=300)
        else:
            for algorithm in (args.algorithm, "luby_fast"):
                service.estimate(
                    graph=graph,
                    algorithm=algorithm,
                    precision=Precision.default(),
                    seed=args.seed,
                    timeout=300,
                )
        rows = service.cache.evidence_entries()
        if args.graph_hash:
            rows = [r for r in rows if r["graph_hash"].startswith(args.graph_hash)]
        if args.match_algorithm:
            rows = [r for r in rows if r["algorithm"] == args.match_algorithm]
        if args.evidence_command == "purge":
            purged = 0
            for r in rows:
                purged += service.cache.purge_evidence(
                    graph_hash=r["graph_hash"], algorithm_key=r["algorithm"]
                )
            print(f"purged {purged} evidence pool(s)")
            return
        if args.json:
            print(json.dumps(rows, indent=2))
            return
        if not rows:
            print("evidence plane is empty (no matching pools)")
            return
        if args.evidence_command == "show":
            for r in rows:
                print(f"graph hash : {r['graph_hash']}")
                print(f"algorithm  : {r['algorithm']}")
                print(f"trials     : {r['trials']} pooled over {r['nodes']} nodes")
                print(f"resident   : {r['bytes']} bytes   dedup tags {r['tags']}")
                print(f"age        : {r['age_s']:.1f}s since first deposit")
                print(
                    f"achievable : ±{r['achievable_halfwidth']:.4f} node CI "
                    "half-width at 95% from the pool alone"
                )
                print()
            return
        print(
            f"{'graph hash':<16} {'algorithm':<22} {'trials':>8} {'nodes':>7} "
            f"{'bytes':>10} {'age s':>7} {'tags':>5} {'±hw@95%':>9}"
        )
        for r in rows:
            print(
                f"{r['graph_hash'][:14] + '…':<16} {r['algorithm']:<22} "
                f"{r['trials']:>8} {r['nodes']:>7} {r['bytes']:>10} "
                f"{r['age_s']:>7.1f} {r['tags']:>5} "
                f"{r['achievable_halfwidth']:>9.4f}"
            )


def _cmd_health(args: argparse.Namespace) -> None:
    """Evaluate the SLO health rules; exit 0 ok / 1 warn / 2 crit.

    With ``--stats-file`` the newest snapshot in a ``serve``/``batch``
    stats JSONL is judged (the CI-gate mode); without one a short
    in-process probe exercises the precision, evidence, and cache paths
    first so the rate rules have data.
    """
    from .obs.health import evaluate_health, load_stats_snapshot

    if args.stats_file:
        try:
            snapshot = load_stats_snapshot(args.stats_file)
        except OSError as exc:
            raise SystemExit(
                f"error: cannot read {args.stats_file}: {exc.strerror}"
            )
        if snapshot is None:
            raise SystemExit(
                f"error: no stats snapshots in {args.stats_file} (run "
                "serve/batch with --stats-every N --stats-file PATH)"
            )
    else:
        from .obs.dashboard import snapshot_from_registry
        from .service import Estimator, Precision

        graph = _graph_from_spec(args.graph)
        with Estimator(n_jobs=args.jobs, clamp_to_host=False) as service:
            for _ in range(2):  # repeat: second pass hits evidence + cache
                service.estimate(
                    graph=graph,
                    algorithm=args.algorithm,
                    precision=Precision.default(),
                    seed=args.seed,
                    timeout=300,
                )
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    service.estimate(
                        graph=graph,
                        algorithm=args.algorithm,
                        trials=64,
                        seed=args.seed,
                        mode="exact",
                        timeout=300,
                    )
            snapshot = snapshot_from_registry(service.registry, service.counters)
    report = evaluate_health(snapshot, slo_ms=args.slo_ms)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    if report.exit_code:
        raise SystemExit(report.exit_code)


def _cmd_trace(args: argparse.Namespace) -> None:
    """Export a span tree as Chrome trace-event / Perfetto JSON.

    Two modes:

    * **file mode** (``--input spans.jsonl``): read records captured by a
      ``serve``/``batch`` run's ``--trace-file`` and export one trace
      (``--trace-id``, default: the last one seen); ``--list`` prints the
      available trace IDs instead.
    * **probe mode** (default): install the in-process span collector,
      run one precision request through a live Estimator (honoring
      ``--jobs``/``--start-method``), and export that request's trace —
      the one-command way to see the estimator → scheduler →
      worker-chunk → engine-phase tree.
    """
    from .obs.export import to_chrome_trace

    if args.input:
        from .obs.export import read_spans_jsonl

        try:
            records = read_spans_jsonl(args.input)
        except OSError as exc:
            raise SystemExit(f"error: cannot read {args.input}: {exc.strerror}")
        trace_ids: list[str] = []
        for r in records:
            tid = r.get("trace_id")
            if tid and tid not in trace_ids:
                trace_ids.append(tid)
        if args.list:
            for tid in trace_ids:
                n = sum(1 for r in records if r.get("trace_id") == tid)
                print(f"{tid}  ({n} spans)")
            return
        trace_id = args.trace_id or (trace_ids[-1] if trace_ids else None)
        if trace_id is None:
            raise SystemExit(f"error: no span records in {args.input}")
    else:
        from .obs.export import install_collector, uninstall_collector
        from .service import Estimator, Precision

        graph = _graph_from_spec(args.graph)
        collector = install_collector()
        try:
            # The probe's whole point is exercising the cross-process
            # plane, so honor --jobs even on a small host.
            with Estimator(
                n_jobs=args.jobs,
                context=args.start_method,
                clamp_to_host=False,
            ) as service:
                handle = service.submit(
                    graph=graph,
                    algorithm=args.algorithm,
                    precision=Precision.default(),
                    seed=args.seed,
                )
                handle.result(timeout=300)
                trace_id = handle.trace_id
            records = collector.records()
        finally:
            uninstall_collector()
    doc = to_chrome_trace(records, trace_id)
    if not doc["traceEvents"]:
        raise SystemExit(f"error: no spans recorded for trace {trace_id}")
    payload = json.dumps(doc, indent=None if args.out != "-" else 2)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(
            f"wrote {args.out} ({len(doc['traceEvents'])} spans, "
            f"trace {trace_id}) — open in chrome://tracing or "
            "https://ui.perfetto.dev",
            file=sys.stderr,
        )


def _cmd_top(args: argparse.Namespace) -> None:
    """Live terminal dashboard over service stats snapshots.

    With ``--stats-file`` it tails the file a running ``serve``/``batch``
    writes (start that side with ``--stats-every N --stats-file PATH``).
    Without one it runs a short in-process probe — a few requests
    against a multi-worker Estimator — and renders the resulting frame,
    which is also what ``--once`` mode is for in CI.
    """
    from .obs.dashboard import TopDashboard, run_top, snapshot_from_registry

    if args.stats_file:
        try:
            run_top(
                args.stats_file,
                interval=args.interval,
                slo_ms=args.slo_ms,
                slo_target=args.slo_target,
                window_s=args.window,
                once=args.once,
            )
        except FileNotFoundError:
            raise SystemExit(f"error: no such stats file: {args.stats_file}")
        except KeyboardInterrupt:
            pass
        return
    from .service import Estimator, Precision

    graph = _graph_from_spec(args.graph)
    dash = TopDashboard(
        slo_ms=args.slo_ms, slo_target=args.slo_target, window_s=args.window
    )
    with Estimator(n_jobs=args.jobs, clamp_to_host=False) as service:
        served = 0
        dash.update(
            snapshot_from_registry(service.registry, service.counters, served)
        )
        for _ in range(3):
            service.estimate(
                graph=graph,
                algorithm=args.algorithm,
                precision=Precision.default(),
                seed=None,
                timeout=300,
            )
            served += 1
            dash.update(
                snapshot_from_registry(
                    service.registry, service.counters, served
                )
            )
        sys.stdout.write(dash.render(ansi=False))
        # Fleet-wide latency with worker/algorithm labels summed away —
        # the aggregate the per-row dashboard view cannot show.
        fleet = service.registry.aggregated_quantiles(
            "service_request_latency_seconds",
            drop_labels=("worker", "algorithm"),
        ).get("", {})
        if fleet.get("count"):
            sys.stdout.write(
                f"fleet latency (all algorithms): "
                f"p50 {_fmt_ms(_ms(fleet.get('p50')))}  "
                f"p95 {_fmt_ms(_ms(fleet.get('p95')))}  "
                f"p99 {_fmt_ms(_ms(fleet.get('p99')))}\n"
            )


def _cmd_bench(args: argparse.Namespace) -> None:
    """Run the benchmark suite, write the artifact, optionally gate."""
    from .bench import (
        BenchConfig,
        compare_artifacts,
        default_artifact_path,
        load_artifact,
        make_artifact,
        run_suite,
        write_artifact,
    )
    from .bench.suite import build_cases

    config = BenchConfig(quick=args.quick, only=args.only)
    cases = build_cases(config)
    if args.list:
        for case in cases:
            print(f"{case.name:<22} {case.description}")
        return
    if not cases:
        raise SystemExit(f"error: no bench cases match --only {args.only!r}")

    def progress(message: str) -> None:
        print(message, file=sys.stderr)
        sys.stderr.flush()

    metrics = run_suite(config, progress=progress, cases=cases)
    doc = make_artifact(metrics, config.as_dict())
    out_path = args.out if args.out else default_artifact_path(sha=doc["git_sha"])
    write_artifact(doc, out_path)
    print(f"wrote {out_path} ({len(metrics)} metrics)", file=sys.stderr)
    for name in sorted(metrics):
        entry = metrics[name]
        print(f"{name:<38} {entry['value']:>12.4g} {entry['unit']}")
    if args.compare:
        try:
            baseline = load_artifact(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot load baseline {args.compare}: {exc}")
        report = compare_artifacts(
            doc,
            baseline,
            tolerance_pct=args.tolerance,
            strict_timing=args.strict_timing,
        )
        print(report.format())
        if not report.ok:
            raise SystemExit(1)


def _cmd_bench_trend(args: argparse.Namespace) -> None:
    """Aggregate a directory of bench artifacts into a trend report."""
    from .bench import build_trend, collect_artifacts

    artifacts = collect_artifacts(args.paths)
    if not artifacts:
        raise SystemExit(
            "error: no readable BENCH_*.json artifacts under "
            + ", ".join(args.paths)
        )
    report = build_trend(
        artifacts,
        tolerance_pct=args.tolerance,
        strict_timing=args.strict_timing,
        only=args.metric or None,
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format(markdown=args.format == "md"))


def _load_graph_input(args: argparse.Namespace) -> StaticGraph:
    """Resolve the ``graph convert`` INPUT argument to a graph.

    Existing files are dispatched by suffix (``.reprograph`` memmap,
    ``.npz`` archive, anything else parsed as a SNAP-style edge list);
    non-files are treated as generator specs (``grid:1000x1000``, ...).
    """
    from pathlib import Path

    source = Path(args.input)
    if not source.exists():
        if ":" in args.input or args.input.isalpha():
            return _graph_from_spec(args.input)
        raise SystemExit(f"error: no such file: {args.input}")
    if source.suffix == ".reprograph":
        from .graphs.diskgraph import load_reprograph

        return load_reprograph(source, verify=args.verify)
    if source.suffix == ".npz":
        from .graphs.io import load_graph

        return load_graph(source)
    from .graphs.snap import load_snap_edgelist

    result = load_snap_edgelist(source, compact_ids=not args.no_compact_ids)
    if result.self_loops_dropped:
        print(
            f"note: dropped {result.self_loops_dropped} self-loop(s)",
            file=sys.stderr,
        )
    return result.graph


def _cmd_graph_convert(args: argparse.Namespace) -> None:
    from pathlib import Path

    graph = _load_graph_input(args)
    out = Path(args.output)
    if out.suffix == ".reprograph":
        from .graphs.diskgraph import save_reprograph

        nbytes = save_reprograph(out, graph, compact=args.compact)
    elif out.suffix == ".npz":
        if args.compact:
            raise SystemExit("error: --compact only applies to .reprograph output")
        from .graphs.io import save_graph

        save_graph(out, graph)
        nbytes = out.stat().st_size
    else:
        raise SystemExit(
            f"error: unsupported output suffix {out.suffix!r} "
            "(use .reprograph or .npz)"
        )
    print(
        f"wrote {out} (n={graph.n}, m={graph.m}, "
        f"{nbytes / 1e6:.1f} MB, hash {graph.content_hash()[:12]}…)"
    )


def _cmd_graph_inspect(args: argparse.Namespace) -> None:
    from .graphs.diskgraph import inspect_reprograph
    from .graphs.graph import GraphValidationError

    try:
        head = inspect_reprograph(args.path)
    except (OSError, GraphValidationError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(head, indent=2))
        return
    layout = "int32 (compact)" if head["compact"] else "int64 (zero-copy)"
    print(f"path        : {args.path}")
    print(f"version     : {head['version']}")
    print(f"n, m        : {head['n']}, {head['m']}")
    print(f"layout      : {layout}")
    print(f"content hash: {head['content_hash']}")
    print(f"file bytes  : {head['file_bytes']}")
    print(
        "offsets     : edges={edges_offset} indptr={indptr_offset} "
        "indices={indices_offset}".format(**head)
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair Maximal Independent Sets (IPDPS 2014) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms").set_defaults(
        fn=_cmd_list
    )

    jobs_help = (
        "worker processes: 1 = inline, 0 or negative = all cores, "
        "k > 1 = that many (repro.analysis.montecarlo.normalize_jobs)"
    )

    def common(p: argparse.ArgumentParser, trials_default: int = 2000) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trials", type=int, default=trials_default)
        p.add_argument("--jobs", type=int, default=1, help=jobs_help)

    p = sub.add_parser("run", help="one execution, validated")
    p.add_argument("--graph", required=True)
    p.add_argument("--algorithm", default="fair_tree_fast")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("estimate", help="Monte-Carlo fairness estimate")
    p.add_argument("--graph", required=True)
    p.add_argument("--algorithm", default="fair_tree_fast")
    common(p)
    p.add_argument(
        "--ci",
        type=float,
        default=None,
        metavar="HW",
        help="v2 precision mode: target per-node join-frequency CI "
        "half-width (runs trial rounds until it closes; --trials ignored)",
    )
    p.add_argument(
        "--ineq-ci",
        type=float,
        default=None,
        metavar="HW",
        help="v2 precision mode: target inequality-factor CI half-width",
    )
    p.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for --ci/--ineq-ci targets (default 0.95)",
    )
    p.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="N",
        help="hard trial cap for precision mode (default 20000)",
    )
    p.set_defaults(fn=_cmd_estimate)

    for name, fn, help_text in (
        ("table1", _cmd_table1, "regenerate Table I"),
        ("figure4", _cmd_figure4, "regenerate Figure 4 (ASCII)"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("--city-n", type=int, default=2500)
        p.set_defaults(fn=fn)

    for name, fn, help_text, default_trials in (
        ("star", _cmd_star, "§I star demonstration", 4000),
        ("cone", _cmd_cone, "§VIII lower-bound sweep", 6000),
        ("bounds", _cmd_bounds, "theorem bound checks", 3000),
        ("optimal", _cmd_optimal, "exact optimal fairness (LP)", 3000),
        ("families", _cmd_families, "fairness landscape matrix", 1500),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, default_trials)
        p.set_defaults(fn=fn)

    p = sub.add_parser("rounds", help="round complexity (faithful layer)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_rounds)

    def service_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=0, help=jobs_help)
        p.add_argument("--cache-size", type=int, default=128)
        p.add_argument(
            "--mode",
            choices=("auto", "exact", "vectorized"),
            default="auto",
            help="default executor for requests that do not specify one",
        )
        p.add_argument(
            "--no-counts",
            action="store_true",
            help="omit per-node count vectors from result JSON",
        )
        p.add_argument(
            "--stats-every",
            type=int,
            default=0,
            metavar="N",
            help="emit a JSON stats snapshot to stderr every N requests "
            "(0 = off)",
        )
        p.add_argument(
            "--stats-file",
            default=None,
            metavar="PATH",
            help="append stats snapshots to PATH (JSON lines) instead of "
            "interleaving them on stderr",
        )
        p.add_argument(
            "--trace-file",
            default=None,
            metavar="PATH",
            help="append completed span records to PATH (JSON lines; "
            "includes worker-process spans merged by the telemetry "
            "plane) — export later with 'repro trace --input PATH'",
        )
        p.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error"),
            default=None,
            help="enable structured JSON-lines logging on stderr",
        )
        p.add_argument(
            "--no-shm",
            action="store_true",
            help="ship graphs to workers by pickling instead of the "
            "zero-copy shared-memory transport",
        )
        p.add_argument(
            "--max-line-bytes",
            type=int,
            default=None,
            metavar="N",
            help="reject request lines larger than N bytes with a "
            "structured line_too_large error (default 1 MiB)",
        )

    p = sub.add_parser(
        "serve",
        help="estimation service: JSON lines stdin -> stdout, or a "
        "sharded network front end with --tcp/--http",
    )
    service_opts(p)
    net = p.add_argument_group(
        "network front end (docs/SERVICE.md, 'Network deployment')"
    )
    net.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="serve the JSON line protocol over TCP, fanned across "
        "--shards serve subprocesses",
    )
    net.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="serve single requests over HTTP (POST /estimate, "
        "GET /metrics, GET /healthz)",
    )
    net.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard subprocesses behind the front end (each owns its "
        "own pools, cache, and evidence)",
    )
    net.add_argument(
        "--shard-jobs",
        type=int,
        default=1,
        help="worker processes per shard (the shard's serve --jobs)",
    )
    net.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="max in-flight requests per shard; a full queue sheds "
        "with a structured overloaded error",
    )
    net.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="RPS",
        help="per-client sustained requests/s (token bucket; 0 = off)",
    )
    net.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        metavar="N",
        help="per-client burst allowance (default 2x --rate-limit)",
    )
    net.add_argument(
        "--admission-half-life",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="decay half-life of the peak-hold load estimate",
    )
    net.add_argument(
        "--shed-threshold",
        type=float,
        default=0.85,
        metavar="LOAD",
        help="normalized queue pressure above which admission "
        "control starts shedding",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a 'serve --tcp' front end",
    )
    p.add_argument(
        "--connect",
        default="127.0.0.1:7070",
        metavar="HOST:PORT",
        help="front end to drive",
    )
    p.add_argument(
        "--graph",
        default="tree:200:1",
        help="graph spec(s) to request, comma-separated; requests "
        "rotate through them",
    )
    p.add_argument("--algorithm", default="luby_fast")
    p.add_argument(
        "--trials", type=int, default=200, help="fixed trial budget per request"
    )
    p.add_argument(
        "--requests", "-n", type=int, default=100, help="total requests to offer"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=50.0,
        metavar="RPS",
        help="open-loop offered rate (departures never wait for responses)",
    )
    p.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="latency SLO used for goodput and attainment",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="give up waiting for stragglers after this long",
    )
    p.add_argument(
        "--v2",
        action="store_true",
        help="send v2 precision requests instead of fixed-trial v1",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of the summary",
    )
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser(
        "batch", help="estimation service over a JSON-lines request file"
    )
    p.add_argument("--input", required=True, help="request file (JSON lines)")
    p.add_argument("--output", default="-", help="result file, or - for stdout")
    service_opts(p)
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser(
        "stats", help="probe the service and print its metrics exposition"
    )
    p.add_argument("--graph", default="tree:63", help="probe graph spec")
    p.add_argument("--algorithm", default="luby_fast")
    p.add_argument("--trials", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help=jobs_help)
    p.add_argument(
        "--format",
        choices=("prom", "json", "both"),
        default="both",
        help="exposition format: Prometheus text, JSON snapshot, or both",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="export a span tree as Chrome trace-event / Perfetto JSON",
    )
    p.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="read span records from a --trace-file JSONL instead of "
        "running an in-process probe",
    )
    p.add_argument(
        "--trace-id",
        default=None,
        help="which trace to export from --input (default: the last one)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list trace IDs found in --input and exit",
    )
    p.add_argument("--graph", default="tree:63", help="probe graph spec")
    p.add_argument("--algorithm", default="luby_fast")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=2, help=jobs_help)
    p.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the probe pool "
        "(default: REPRO_MP_START or the platform's)",
    )
    p.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="output path for the trace JSON (- for stdout)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "top", help="live terminal dashboard over service stats snapshots"
    )
    p.add_argument(
        "--stats-file",
        default=None,
        metavar="PATH",
        help="tail this JSONL stats file (from serve/batch "
        "--stats-every N --stats-file PATH); omit to run an "
        "in-process probe",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh poll interval in seconds (default 2)",
    )
    p.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="latency SLO target in milliseconds (default 250)",
    )
    p.add_argument(
        "--slo-target",
        type=float,
        default=0.95,
        help="fraction of requests that must meet --slo-ms (default 0.95)",
    )
    p.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="sliding window for rates/percentiles in seconds (default 60)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single plain frame and exit (scripting/CI mode)",
    )
    p.add_argument("--graph", default="tree:63", help="probe graph spec")
    p.add_argument("--algorithm", default="luby_fast")
    p.add_argument("--jobs", type=int, default=2, help=jobs_help)
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser(
        "explain",
        help="render a request's convergence trace (why the estimator "
        "stopped)",
    )
    p.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="read result lines from a serve/batch output file instead of "
        'running a probe (the requests must have set "trace": true)',
    )
    p.add_argument(
        "--id",
        default=None,
        help="explain the trace with this request id (default: the last "
        "trace in --input, or the probe request)",
    )
    p.add_argument("--graph", default="tree:120", help="probe graph spec")
    p.add_argument("--algorithm", default="fair_tree_fast")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help=jobs_help)
    p.add_argument(
        "--json", action="store_true", help="machine-readable trace JSON"
    )
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "evidence", help="introspect or purge the pooled evidence plane"
    )
    esub = p.add_subparsers(dest="evidence_command", required=True)
    for ename, ehelp in (
        ("ls", "tabulate every (graph, algorithm) evidence pool"),
        ("show", "dump matching pools in detail"),
        ("purge", "drop matching pools (dedup tags go with them)"),
    ):
        e = esub.add_parser(ename, help=ehelp)
        e.add_argument(
            "--requests",
            default=None,
            metavar="PATH",
            help="JSON-lines request file to run first (same schema as "
            "batch); default: a small two-algorithm precision probe",
        )
        e.add_argument(
            "--graph-hash",
            default=None,
            help="only pools whose graph hash starts with this prefix",
        )
        e.add_argument(
            "--match-algorithm",
            default=None,
            metavar="KEY",
            help="only pools with this exact algorithm key",
        )
        e.add_argument("--graph", default="tree:120", help="probe graph spec")
        e.add_argument("--algorithm", default="fair_tree_fast")
        e.add_argument("--seed", type=int, default=0)
        e.add_argument("--jobs", type=int, default=1, help=jobs_help)
        e.add_argument(
            "--json", action="store_true", help="machine-readable rows"
        )
        e.set_defaults(fn=_cmd_evidence)

    p = sub.add_parser(
        "health",
        help="evaluate SLO health rules; exit 0 ok / 1 warn / 2 crit",
    )
    p.add_argument(
        "--stats-file",
        default=None,
        metavar="PATH",
        help="judge the newest snapshot in this stats JSONL (from "
        "serve/batch --stats-every N --stats-file PATH); omit to run "
        "an in-process probe",
    )
    p.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="latency SLO driving the p99 thresholds (default 250)",
    )
    p.add_argument("--graph", default="tree:120", help="probe graph spec")
    p.add_argument("--algorithm", default="fair_tree_fast")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help=jobs_help)
    p.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p.set_defaults(fn=_cmd_health)

    p = sub.add_parser(
        "bench", help="continuous benchmark suite -> BENCH_<sha>.json"
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="small deterministic workload (CI smoke scale)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: BENCH_<git-sha>.json in the cwd)",
    )
    p.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline artifact; exit 1 on gated regression",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="PCT",
        help="override every metric's tolerance (percent)",
    )
    p.add_argument(
        "--strict-timing",
        action="store_true",
        help="gate timing metrics too (same-machine comparisons only)",
    )
    p.add_argument(
        "--only",
        default=None,
        metavar="SUBSTR",
        help="run only bench cases whose name contains SUBSTR",
    )
    p.add_argument(
        "--list", action="store_true", help="list bench cases and exit"
    )
    p.set_defaults(fn=_cmd_bench)
    # `repro bench` with no subcommand keeps its historical flat form;
    # `repro bench trend` is the artifact-history view.
    bsub = p.add_subparsers(dest="bench_command", required=False)
    b = bsub.add_parser(
        "trend",
        help="aggregate BENCH_*.json artifacts into a per-metric history",
    )
    b.add_argument(
        "paths",
        nargs="+",
        help="artifact files and/or directories holding BENCH_*.json",
    )
    b.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to this metric (repeatable)",
    )
    b.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="PCT",
        help="override every metric's tolerance for step flagging",
    )
    b.add_argument(
        "--strict-timing",
        action="store_true",
        help="flag bad-direction timing steps as gated too",
    )
    b.add_argument(
        "--format",
        choices=("ansi", "md"),
        default="ansi",
        help="table style: fixed-width terminal or GitHub markdown",
    )
    b.add_argument(
        "--json", action="store_true", help="machine-readable trend document"
    )
    b.set_defaults(fn=_cmd_bench_trend)

    p = sub.add_parser(
        "graph", help="convert/inspect on-disk graphs (.npz/.reprograph/SNAP)"
    )
    gsub = p.add_subparsers(dest="graph_command", required=True)

    g = gsub.add_parser(
        "convert",
        help="build or load a graph and write it as .reprograph or .npz",
    )
    g.add_argument(
        "input",
        help="source: a .reprograph/.npz file, a SNAP-style edge list "
        "(.txt/.gz/...), or a generator spec like grid:1000x1000",
    )
    g.add_argument("output", help="destination (.reprograph or .npz)")
    g.add_argument(
        "--compact",
        action="store_true",
        help="store .reprograph buffers as int32 (halves the file; "
        "loads widen with one copy instead of mapping zero-copy)",
    )
    g.add_argument(
        "--no-compact-ids",
        action="store_true",
        help="SNAP input: use node ids as-is instead of remapping to 0..n-1",
    )
    g.add_argument(
        "--verify",
        action="store_true",
        help=".reprograph input: re-hash the edge buffer against the header",
    )
    g.set_defaults(fn=_cmd_graph_convert)

    g = gsub.add_parser(
        "inspect", help="print .reprograph header metadata (no data mapped)"
    )
    g.add_argument("path")
    g.add_argument("--json", action="store_true", help="machine-readable output")
    g.set_defaults(fn=_cmd_graph_inspect)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
