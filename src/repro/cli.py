"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      registered algorithms
``run``       one MIS execution on a graph spec, printed summary
``estimate``  Monte-Carlo join probabilities + inequality factor
``table1``    regenerate Table I
``figure4``   regenerate Figure 4 (ASCII CDF panels)
``star``      the §I star demonstration
``cone``      the §VIII lower-bound sweep
``bounds``    Theorems 3/8/13/17 checks
``rounds``    round-complexity measurement (faithful layer)
``optimal``   exact optimal fairness (LP) on small families

Graph specs (``--graph``)::

    tree:N[:SEED]     random labeled tree
    path:N            path graph
    star:N            star graph
    cycle:N           cycle
    binary:DEPTH      complete binary tree
    kary:B,D          complete B-ary tree of depth D
    alt:B,D           alternating tree
    grid:RxC          grid graph
    trigrid:RxC       triangulated grid (planar, non-bipartite)
    apex:RxC          apex grid (planar, high degree)
    cone:K            the lower-bound cone graph
    campus[:SEED]     Dartmouth-like WAP MST
    city:N[:SEED]     NYC-like WAP MST
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.registry import available, make
from .graphs.graph import StaticGraph

__all__ = ["main", "parse_graph_spec"]


def parse_graph_spec(spec: str) -> StaticGraph:
    """Build a graph from a CLI spec string (see module docstring)."""
    from .graphs import generators as gen
    from .graphs.geometric import campus_model, city_model, wap_tree

    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []

    def ints(csv: str) -> list[int]:
        return [int(x) for x in csv.replace("x", ",").split(",")]

    try:
        if kind == "tree":
            n = int(parts[0])
            seed = int(parts[1]) if len(parts) > 1 else 0
            return gen.random_tree(n, seed=seed).graph
        if kind == "path":
            return gen.path_graph(int(parts[0]))
        if kind == "star":
            return gen.star_graph(int(parts[0]))
        if kind == "cycle":
            return gen.cycle_graph(int(parts[0]))
        if kind == "binary":
            return gen.complete_tree(2, int(parts[0])).graph
        if kind == "kary":
            b, d = ints(parts[0])
            return gen.complete_tree(b, d).graph
        if kind == "alt":
            b, d = ints(parts[0])
            return gen.alternating_tree(b, d).graph
        if kind == "grid":
            r, c = ints(parts[0])
            return gen.grid_graph(r, c)
        if kind == "trigrid":
            r, c = ints(parts[0])
            return gen.triangulated_grid(r, c)
        if kind == "apex":
            r, c = ints(parts[0])
            return gen.apex_grid(r, c)
        if kind == "cone":
            return gen.cone_graph(int(parts[0]))
        if kind == "campus":
            seed = int(parts[0]) if parts else 11
            return wap_tree(campus_model(seed=seed))
        if kind == "city":
            n = int(parts[0]) if parts else 2500
            seed = int(parts[1]) if len(parts) > 1 else 12
            return wap_tree(city_model(n=n, seed=seed))
    except (ValueError, IndexError) as exc:
        raise SystemExit(f"bad graph spec {spec!r}: {exc}") from exc
    raise SystemExit(f"unknown graph kind {kind!r} (see --help)")


def _cmd_list(_args: argparse.Namespace) -> None:
    for name in available():
        print(name)


def _cmd_run(args: argparse.Namespace) -> None:
    graph = parse_graph_spec(args.graph)
    alg = make(args.algorithm)
    result = alg.run(graph, np.random.default_rng(args.seed))
    result.validate(graph)
    print(f"graph     : {args.graph} (n={graph.n}, m={graph.m})")
    print(f"algorithm : {alg.name}")
    print(f"MIS size  : {result.size}")
    if result.rounds:
        print(f"rounds    : {result.rounds}")
    if result.info:
        print(f"info      : {dict(result.info)}")


def _cmd_estimate(args: argparse.Namespace) -> None:
    from .analysis.ascii import render_histogram
    from .analysis.montecarlo import run_trials

    graph = parse_graph_spec(args.graph)
    alg = make(args.algorithm)
    est = run_trials(alg, graph, args.trials, seed=args.seed, n_jobs=args.jobs)
    lower, upper = est.inequality_bounds()
    print(f"graph        : {args.graph} (n={graph.n})")
    print(f"algorithm    : {alg.name}   trials: {args.trials}")
    print(f"inequality   : {est.inequality:.3f}   (95% CI [{lower:.2f}, {upper:.2f}])")
    print(f"min/max join : {est.min_probability:.3f} / {est.max_probability:.3f}")
    print("join-frequency histogram:")
    print("  " + render_histogram(est.probabilities))


def _cmd_table1(args: argparse.Namespace) -> None:
    from .experiments.table1 import format_table1, run_table1

    rows = run_table1(
        trials=args.trials, seed=args.seed, city_n=args.city_n, n_jobs=args.jobs
    )
    print(format_table1(rows))


def _cmd_figure4(args: argparse.Namespace) -> None:
    from .analysis.ascii import render_cdf
    from .experiments.figure4 import format_figure4, run_figure4

    series = run_figure4(
        trials=args.trials, seed=args.seed, city_n=args.city_n, n_jobs=args.jobs
    )
    print(format_figure4(series))
    panels: dict[str, dict[str, object]] = {}
    for s in series:
        panels.setdefault(s.panel, {})[f"{s.algorithm[:12]}:{s.tree[:18]}"] = s.cdf
    for panel, cdfs in panels.items():
        print(f"\nFigure 4 ({panel}):")
        print(render_cdf(cdfs))  # type: ignore[arg-type]


def _cmd_star(args: argparse.Namespace) -> None:
    from .experiments.star import format_star, run_star_experiment

    print(format_star(run_star_experiment(trials=args.trials, seed=args.seed)))


def _cmd_cone(args: argparse.Namespace) -> None:
    from .experiments.cone import format_cone, run_cone_experiment

    print(format_cone(run_cone_experiment(trials=args.trials, seed=args.seed)))


def _cmd_bounds(args: argparse.Namespace) -> None:
    from .experiments.bounds import format_bounds, run_all_bounds

    print(format_bounds(run_all_bounds(trials=args.trials, seed=args.seed)))


def _cmd_rounds(args: argparse.Namespace) -> None:
    from .experiments.rounds import format_rounds, run_rounds_experiment

    print(format_rounds(run_rounds_experiment(seed=args.seed)))


def _cmd_optimal(args: argparse.Namespace) -> None:
    from .experiments.optimal import format_optimal, run_optimal_experiment

    print(format_optimal(run_optimal_experiment(trials=args.trials, seed=args.seed)))


def _cmd_families(args: argparse.Namespace) -> None:
    from .experiments.families import format_family_sweep, run_family_sweep

    print(format_family_sweep(run_family_sweep(trials=args.trials, seed=args.seed)))


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair Maximal Independent Sets (IPDPS 2014) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms").set_defaults(
        fn=_cmd_list
    )

    def common(p: argparse.ArgumentParser, trials_default: int = 2000) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trials", type=int, default=trials_default)
        p.add_argument("--jobs", type=int, default=1)

    p = sub.add_parser("run", help="one execution, validated")
    p.add_argument("--graph", required=True)
    p.add_argument("--algorithm", default="fair_tree_fast")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("estimate", help="Monte-Carlo fairness estimate")
    p.add_argument("--graph", required=True)
    p.add_argument("--algorithm", default="fair_tree_fast")
    common(p)
    p.set_defaults(fn=_cmd_estimate)

    for name, fn, help_text in (
        ("table1", _cmd_table1, "regenerate Table I"),
        ("figure4", _cmd_figure4, "regenerate Figure 4 (ASCII)"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("--city-n", type=int, default=2500)
        p.set_defaults(fn=fn)

    for name, fn, help_text, default_trials in (
        ("star", _cmd_star, "§I star demonstration", 4000),
        ("cone", _cmd_cone, "§VIII lower-bound sweep", 6000),
        ("bounds", _cmd_bounds, "theorem bound checks", 3000),
        ("optimal", _cmd_optimal, "exact optimal fairness (LP)", 3000),
        ("families", _cmd_families, "fairness landscape matrix", 1500),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, default_trials)
        p.set_defaults(fn=fn)

    p = sub.add_parser("rounds", help="round complexity (faithful layer)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_rounds)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
