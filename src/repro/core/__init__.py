"""Core contracts: the fair-MIS problem statement, results, and registry."""

from .registry import AlgorithmNotFound, available, make, register
from .result import InvalidMISError, MISAlgorithm, MISResult

__all__ = [
    "AlgorithmNotFound",
    "available",
    "make",
    "register",
    "InvalidMISError",
    "MISAlgorithm",
    "MISResult",
]
