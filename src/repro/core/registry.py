"""Name-based registry of MIS algorithm constructors.

The experiment harness and the CLI-style examples refer to algorithms by
short names ("luby", "fair_tree", ...).  Registration happens at import of
the implementing module; :func:`make` instantiates with keyword overrides.
"""

from __future__ import annotations

from typing import Any, Callable

from .result import MISAlgorithm

__all__ = ["register", "make", "available", "AlgorithmNotFound"]

_REGISTRY: dict[str, Callable[..., MISAlgorithm]] = {}


class AlgorithmNotFound(KeyError):
    """Requested algorithm name has not been registered."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        )
        self.name = name


def register(name: str) -> Callable[[Callable[..., MISAlgorithm]], Callable[..., MISAlgorithm]]:
    """Class decorator registering an algorithm constructor under *name*."""

    def deco(ctor: Callable[..., MISAlgorithm]) -> Callable[..., MISAlgorithm]:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} registered twice")
        _REGISTRY[name] = ctor
        return ctor

    return deco


def make(name: str, **kwargs: Any) -> MISAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        ctor = _REGISTRY[name]
    except KeyError:
        raise AlgorithmNotFound(name) from None
    return ctor(**kwargs)


def available() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_REGISTRY)
