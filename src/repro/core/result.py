"""Result and contract types for the fair-MIS problem (Section III).

Every algorithm in this library — faithful node-process or fast vectorized
— returns a :class:`MISResult`, and exposes itself through the
:class:`MISAlgorithm` protocol so the analysis layer can treat all engines
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

from ..graphs.graph import StaticGraph
from ..runtime.metrics import RunMetrics

__all__ = ["MISResult", "MISAlgorithm", "InvalidMISError"]


class InvalidMISError(AssertionError):
    """An algorithm produced a set violating independence or maximality."""


@dataclass
class MISResult:
    """Outcome of one MIS execution.

    Attributes
    ----------
    membership:
        Boolean array of length ``n``; ``True`` means the vertex output 1.
    rounds:
        Synchronous rounds consumed (0 for fast engines that do not model
        rounds explicitly, unless they track them).
    metrics:
        Full runtime metrics when produced by the faithful layer.
    info:
        Algorithm-specific extras (e.g. ``fallback_used`` for FAIRTREE,
        ``colors_used`` for COLORMIS).
    """

    membership: np.ndarray
    rounds: int = 0
    metrics: RunMetrics | None = None
    info: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.membership = np.asarray(self.membership, dtype=bool)

    @property
    def size(self) -> int:
        """Number of vertices in the independent set."""
        return int(self.membership.sum())

    def validate(self, graph: StaticGraph) -> "MISResult":
        """Assert independence and maximality against *graph*; returns self.

        Independence and maximality must hold on *every* execution
        (Section III requires them unconditionally; only termination is
        probabilistic), so this check is cheap insurance everywhere.
        """
        m = self.membership
        if m.shape != (graph.n,):
            raise InvalidMISError(
                f"membership has shape {m.shape}, expected ({graph.n},)"
            )
        es, ed = graph.edge_src, graph.edge_dst
        if es.size and bool(np.any(m[es] & m[ed])):
            bad = np.nonzero(m[es] & m[ed])[0][0]
            raise InvalidMISError(
                f"independence violated on edge ({es[bad]}, {ed[bad]})"
            )
        covered = m.copy()
        if es.size:
            covered |= np.bincount(
                ed, weights=m[es].astype(np.float64), minlength=graph.n
            ).astype(bool)
        if not bool(covered.all()):
            v = int(np.nonzero(~covered)[0][0])
            raise InvalidMISError(f"maximality violated at vertex {v}")
        return self


@runtime_checkable
class MISAlgorithm(Protocol):
    """Uniform callable contract used by the analysis/experiment layers.

    Implementations must be deterministic given ``(graph, rng state)``.
    """

    @property
    def name(self) -> str:
        """Short stable identifier (used in tables and benchmarks)."""
        ...

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        """Execute once and return the resulting MIS."""
        ...
