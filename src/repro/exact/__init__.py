"""Exact small-graph analysis: MIS enumeration, optimal fairness, and
centralized baselines.

Importing registers ``centralized_fair_bipartite`` and ``uniform_mis``
with the algorithm registry.
"""

from .centralized import CentralizedFairBipartite, UniformMISSampler
from .enumerate import count_mis, maximal_independent_sets, mis_membership_matrix
from .optimal import OptimalFairness, feasible_inequality, optimal_inequality

__all__ = [
    "CentralizedFairBipartite",
    "UniformMISSampler",
    "count_mis",
    "maximal_independent_sets",
    "mis_membership_matrix",
    "OptimalFairness",
    "feasible_inequality",
    "optimal_inequality",
]
