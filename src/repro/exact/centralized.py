"""Centralized perfectly fair MIS algorithms (the §V remark).

Section V opens by noting "it is not difficult to create a *centralized*
algorithm A′ that guarantees P(u) = P(v) for all u, v" on any bipartite
graph — the real contribution is doing it distributedly.  This module
supplies that centralized A′ (as the natural baseline the fair
distributed algorithms approximate) plus a uniform-over-MIS sampler for
exact small-graph studies.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import GraphValidationError, StaticGraph
from .enumerate import mis_membership_matrix

__all__ = ["CentralizedFairBipartite", "UniformMISSampler"]


@register("centralized_fair_bipartite")
class CentralizedFairBipartite:
    """The §V centralized A′: perfectly fair on bipartite graphs.

    Per connected component, flip one coin to pick a side of the
    bipartition; that side (plus any isolated vertices of the other side,
    which have no neighbors and must join for maximality) is the MIS.
    Every non-isolated vertex joins with probability exactly 1/2 and
    isolated vertices with probability 1, so ``F = 1`` on every connected
    bipartite graph with ``n > 1`` — the target the distributed
    CNTRLFAIRBIPART matches (Lemma 7).
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate

    @property
    def name(self) -> str:
        return "centralized_fair_bipartite"

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        sides = graph.bipartition()
        if sides is None:
            raise GraphValidationError("graph is not bipartite")
        count, labels = graph.connected_components()
        coin = rng.integers(0, 2, size=max(count, 1))
        member = sides == coin[labels]
        # isolated vertices always join (their component is a single
        # vertex, so the coin covers them only half the time otherwise)
        member |= graph.degrees == 0
        result = MISResult(membership=member, info={"engine": "centralized"})
        if self.validate:
            result.validate(graph)
        return result


@register("uniform_mis")
class UniformMISSampler:
    """Samples uniformly among *all* maximal independent sets.

    A natural centralized baseline for fairness studies: its join
    probabilities are exactly ``(# MIS containing v) / (# MIS)``.  Not
    fair in general (e.g. the star: the center is in 1 of 2 sets, each
    leaf also in 1 of 2 — actually fair there; the cone is the
    counterexample), and exponential-time — use on small graphs only.
    """

    def __init__(self, validate: bool = False) -> None:
        self.validate = validate
        self._cache: tuple[StaticGraph, np.ndarray] | None = None

    @property
    def name(self) -> str:
        return "uniform_mis"

    def _sets(self, graph: StaticGraph) -> np.ndarray:
        if self._cache is not None and self._cache[0] is graph:
            return self._cache[1]
        sets = mis_membership_matrix(graph)
        self._cache = (graph, sets)
        return sets

    def exact_probabilities(self, graph: StaticGraph) -> np.ndarray:
        """Closed-form join probabilities (no sampling)."""
        sets = self._sets(graph)
        return sets.mean(axis=0)

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        sets = self._sets(graph)
        idx = int(rng.integers(0, len(sets)))
        result = MISResult(
            membership=sets[idx].copy(), info={"engine": "exact-uniform"}
        )
        if self.validate:
            result.validate(graph)
        return result
