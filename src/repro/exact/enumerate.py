"""Exact enumeration of maximal independent sets (small graphs).

A bitset Bron–Kerbosch (with pivoting) over the *complement* graph lists
every maximal independent set of graphs up to a few dozen vertices.  The
exact layer turns Monte-Carlo claims into checkable identities: every
algorithm's output must be one of these sets, and distributions over them
are the object the optimal-fairness LP (:mod:`repro.exact.optimal`)
optimizes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graphs.graph import StaticGraph

__all__ = ["maximal_independent_sets", "mis_membership_matrix", "count_mis"]

#: Enumeration guard: Bron–Kerbosch is exponential; MIS counts explode
#: beyond this size (worst case 3^(n/3)).
MAX_EXACT_N = 40


def _nonneighbor_masks(graph: StaticGraph) -> list[int]:
    """Bitmask per vertex of its *non*-neighbors (excluding itself).

    An independent set of ``G`` is a clique of the complement, so
    Bron–Kerbosch runs over these masks.
    """
    n = graph.n
    full = (1 << n) - 1
    masks = []
    for v in range(n):
        m = full & ~(1 << v)
        for w in graph.neighbors(v):
            m &= ~(1 << int(w))
        masks.append(m)
    return masks


def maximal_independent_sets(graph: StaticGraph) -> Iterator[frozenset[int]]:
    """Yield every maximal independent set of *graph* exactly once.

    Bron–Kerbosch with Tomita pivoting on the complement graph.  Raises
    for graphs larger than :data:`MAX_EXACT_N`.
    """
    n = graph.n
    if n > MAX_EXACT_N:
        raise ValueError(
            f"exact enumeration limited to n <= {MAX_EXACT_N} (got {n})"
        )
    if n == 0:
        yield frozenset()
        return
    nbr = _nonneighbor_masks(graph)
    full = (1 << n) - 1

    def bits(x: int) -> Iterator[int]:
        while x:
            lsb = x & -x
            yield lsb.bit_length() - 1
            x ^= lsb

    def bk(r: int, p: int, x: int) -> Iterator[int]:
        if p == 0 and x == 0:
            yield r
            return
        # pivot: vertex of P ∪ X maximizing |P ∩ N'(u)|
        pivot = max(bits(p | x), key=lambda u: bin(p & nbr[u]).count("1"))
        for v in list(bits(p & ~nbr[pivot])):
            vb = 1 << v
            yield from bk(r | vb, p & nbr[v], x & nbr[v])
            p &= ~vb
            x |= vb

    for mask in bk(0, full, 0):
        yield frozenset(i for i in range(n) if (mask >> i) & 1)


def mis_membership_matrix(graph: StaticGraph) -> np.ndarray:
    """All maximal independent sets as a ``(num_sets, n)`` bool matrix."""
    sets = list(maximal_independent_sets(graph))
    out = np.zeros((len(sets), graph.n), dtype=bool)
    for i, s in enumerate(sets):
        out[i, list(s)] = True
    return out


def count_mis(graph: StaticGraph) -> int:
    """Number of maximal independent sets."""
    return sum(1 for _ in maximal_independent_sets(graph))
