"""Optimal fairness of a graph, computed exactly (small graphs).

Any MIS algorithm — distributed or not — induces a probability
distribution over the maximal independent sets of the input graph, so the
best achievable inequality factor is

    F*(G) = min over distributions π   max_{u,v}  P_π(u) / P_π(v).

With the MIS family enumerated, "does a distribution with inequality
≤ r exist?" is a linear feasibility problem (variables π_S and a floor
``t``: ``t ≤ P(v) ≤ r·t`` for all ``v``), so ``F*`` falls out of a
bisection over ``r``.

This answers the paper's structural question *exactly* on small graphs:

* trees / bipartite graphs: ``F* = 1`` (the §V centralized remark);
* the cone ``C_k``: ``F* = k`` — making Theorem 19's Ω(n) tight and
  measurable (experiment E12, `benchmarks/test_optimal_fairness.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import StaticGraph
from .enumerate import mis_membership_matrix

__all__ = ["OptimalFairness", "optimal_inequality", "feasible_inequality"]


@dataclass(frozen=True)
class OptimalFairness:
    """Result of the optimal-fairness computation.

    Attributes
    ----------
    inequality:
        ``F*(G)`` up to the bisection tolerance.
    distribution:
        Optimal MIS distribution (aligned with ``sets``).
    probabilities:
        Per-node join probabilities under that distribution.
    sets:
        ``(num_sets, n)`` membership matrix of all maximal independent
        sets.
    """

    inequality: float
    distribution: np.ndarray
    probabilities: np.ndarray
    sets: np.ndarray


def feasible_inequality(
    sets: np.ndarray, ratio: float
) -> np.ndarray | None:
    """Return a distribution achieving inequality <= *ratio*, or None.

    Feasibility LP over variables ``(π_1..π_S, t)``::

        Σ π = 1,   π >= 0,   t >= t_min,
        P(v) = Σ_{S ∋ v} π_S >= t        for all v,
        P(v)                  <= ratio·t  for all v.
    """
    from scipy.optimize import linprog

    num_sets, n = sets.shape
    if n == 0:
        return np.ones(max(num_sets, 1)) / max(num_sets, 1)
    a = sets.astype(np.float64).T  # (n, num_sets): P = a @ π

    # inequality constraints in the form A_ub x <= b_ub, x = (π, t)
    rows = []
    rhs = []
    for v in range(n):
        rows.append(np.concatenate([-a[v], [1.0]]))  # t - P(v) <= 0
        rhs.append(0.0)
        rows.append(np.concatenate([a[v], [-ratio]]))  # P(v) - r t <= 0
        rhs.append(0.0)
    a_ub = np.array(rows)
    b_ub = np.array(rhs)
    a_eq = np.concatenate([np.ones(num_sets), [0.0]])[None, :]
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * num_sets + [(1e-9, None)]
    # maximize t so degenerate all-zero solutions are excluded
    c = np.zeros(num_sets + 1)
    c[-1] = -1.0
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success or res.x is None:
        return None
    pi = np.maximum(res.x[:num_sets], 0.0)
    total = pi.sum()
    if total <= 0:
        return None
    return pi / total


def optimal_inequality(
    graph: StaticGraph, tol: float = 1e-4, max_ratio: float | None = None
) -> OptimalFairness:
    """Compute ``F*(G)`` by bisection over the feasibility LP."""
    sets = mis_membership_matrix(graph)
    if graph.n == 0:
        return OptimalFairness(1.0, np.ones(1), np.empty(0), sets)
    hi = float(max_ratio if max_ratio is not None else graph.n + 1)
    lo = 1.0
    best = feasible_inequality(sets, hi)
    if best is None:
        raise RuntimeError(
            "no feasible distribution at the maximum ratio — a vertex is "
            "in no maximal independent set, which is impossible"
        )
    if (dist := feasible_inequality(sets, 1.0)) is not None:
        best, hi = dist, 1.0
    else:
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            dist = feasible_inequality(sets, mid)
            if dist is None:
                lo = mid
            else:
                best, hi = dist, mid
    probs = sets.astype(np.float64).T @ best
    return OptimalFairness(
        inequality=hi, distribution=best, probabilities=probs, sets=sets
    )
