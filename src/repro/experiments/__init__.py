"""Experiment harnesses for every table, figure, and theorem (DESIGN.md §5)."""

from .ablation import (
    GammaSweepRow,
    format_gamma_sweep,
    run_fairbipart_gamma_sweep,
    run_fairtree_gamma_sweep,
    run_luby_variant_comparison,
)
from .bounds import (
    BoundCheck,
    check_colormis_bound,
    check_fairbipart_bound,
    check_fairrooted_bound,
    check_fairtree_bound,
    format_bounds,
    run_all_bounds,
)
from .cone import ConeRow, format_cone, run_cone_experiment
from .convergence import (
    ConvergenceRow,
    format_convergence,
    run_convergence_experiment,
)
from .datasets import (
    DEFAULT_CITY_N,
    EvalTree,
    alternating_tree_b10,
    alternating_tree_b30,
    binary_tree,
    campus_tree,
    city_tree,
    five_ary_tree,
    table1_trees,
)
from .families import FamilyCell, format_family_sweep, run_family_sweep
from .figure4 import Figure4Series, format_figure4, run_figure4
from .messages import MessageRow, format_messages, run_message_experiment
from .optimal import OptimalRow, format_optimal, run_optimal_experiment
from .rounds import RoundsRow, format_rounds, run_rounds_experiment
from .star import StarRow, format_star, run_star_experiment
from .table1 import Table1Row, format_table1, run_table1

__all__ = [
    "GammaSweepRow",
    "format_gamma_sweep",
    "run_fairbipart_gamma_sweep",
    "run_fairtree_gamma_sweep",
    "run_luby_variant_comparison",
    "BoundCheck",
    "check_colormis_bound",
    "check_fairbipart_bound",
    "check_fairrooted_bound",
    "check_fairtree_bound",
    "format_bounds",
    "run_all_bounds",
    "ConeRow",
    "format_cone",
    "run_cone_experiment",
    "ConvergenceRow",
    "format_convergence",
    "run_convergence_experiment",
    "DEFAULT_CITY_N",
    "EvalTree",
    "alternating_tree_b10",
    "alternating_tree_b30",
    "binary_tree",
    "campus_tree",
    "city_tree",
    "five_ary_tree",
    "table1_trees",
    "FamilyCell",
    "format_family_sweep",
    "run_family_sweep",
    "Figure4Series",
    "format_figure4",
    "run_figure4",
    "MessageRow",
    "format_messages",
    "run_message_experiment",
    "OptimalRow",
    "format_optimal",
    "run_optimal_experiment",
    "RoundsRow",
    "format_rounds",
    "run_rounds_experiment",
    "StarRow",
    "format_star",
    "run_star_experiment",
    "Table1Row",
    "format_table1",
    "run_table1",
]
