"""Ablation experiments for the design constants DESIGN.md calls out.

* **FAIRTREE γ sweep** — smaller stage budgets make CNTRLFAIRBIPART fail
  more often, pushing nodes into the (unfair) Luby fallback; the sweep
  records fallback frequency and inequality per γ constant.
* **FAIRBIPART γ sweep** — the §VI-C remark: growing ``c`` in
  ``γ = c·lg n`` drives the inequality bound from 8 toward 4 (block
  probability → 1/2) at a linear round cost.
* **Luby variant comparison** — priority vs ``1/(2d)`` marking on the same
  trees: both unfair, with variant-specific skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.montecarlo import run_trials
from ..core.result import MISAlgorithm
from ..fast.blocks import FastFairBipart
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..graphs.generators import alternating_tree, random_tree
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = [
    "GammaSweepRow",
    "run_fairtree_gamma_sweep",
    "run_fairbipart_gamma_sweep",
    "run_luby_variant_comparison",
    "format_gamma_sweep",
]


@dataclass(frozen=True)
class GammaSweepRow:
    """One γ-constant configuration's measured behaviour."""

    algorithm: str
    gamma_c: float
    gamma: int
    inequality: float
    min_join: float
    fallback_fraction: float
    trials: int


def run_fairtree_gamma_sweep(
    gamma_cs: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0),
    n: int = 150,
    trials: int = 2000,
    seed: SeedLike = 0,
) -> list[GammaSweepRow]:
    """Sweep the FAIRTREE stage-budget constant on a random tree."""
    import numpy as np

    graph: StaticGraph = random_tree(n, seed=seed).graph
    rows: list[GammaSweepRow] = []
    for c in gamma_cs:
        alg = FastFairTree(gamma_c=c)
        # fallback frequency needs per-run info, so run trials manually
        rng = np.random.default_rng(seed if isinstance(seed, int) else 1234)
        counts = np.zeros(n, dtype=np.int64)
        fallbacks = 0
        gamma = 0
        for t in range(trials):
            res = alg.run(graph, rng)
            counts += res.membership
            fallbacks += int(bool(res.info.get("fallback_used")))
            gamma = int(res.info.get("gamma", 0))
        from ..analysis.fairness import JoinEstimate

        est = JoinEstimate(counts=counts, trials=trials)
        rows.append(
            GammaSweepRow(
                algorithm="fair_tree_fast",
                gamma_c=c,
                gamma=gamma,
                inequality=est.inequality,
                min_join=est.min_probability,
                fallback_fraction=fallbacks / trials,
                trials=trials,
            )
        )
    return rows


def run_fairbipart_gamma_sweep(
    gamma_cs: tuple[float, ...] = (1.0, 2.0, 4.0),
    n: int = 128,
    trials: int = 2000,
    seed: SeedLike = 0,
) -> list[GammaSweepRow]:
    """Sweep the FAIRBIPART γ constant on a random tree (bipartite)."""
    import numpy as np

    graph: StaticGraph = random_tree(n, seed=seed).graph
    rows: list[GammaSweepRow] = []
    for c in gamma_cs:
        alg = FastFairBipart(gamma_c=c)
        rng = np.random.default_rng(99)
        counts = np.zeros(n, dtype=np.int64)
        luby_frac = 0.0
        gamma = 0
        for _ in range(trials):
            res = alg.run(graph, rng)
            counts += res.membership
            luby_frac += res.info.get("luby_nodes", 0) / n
            gamma = int(res.info.get("gamma", 0))
        from ..analysis.fairness import JoinEstimate

        est = JoinEstimate(counts=counts, trials=trials)
        rows.append(
            GammaSweepRow(
                algorithm="fair_bipart_fast",
                gamma_c=c,
                gamma=gamma,
                inequality=est.inequality,
                min_join=est.min_probability,
                fallback_fraction=luby_frac / trials,
                trials=trials,
            )
        )
    return rows


def run_luby_variant_comparison(
    trials: int = 3000, seed: SeedLike = 0
) -> dict[str, float]:
    """Priority vs degree-marking Luby on the B=10 alternating tree."""
    graph = alternating_tree(10, 4).graph
    out: dict[str, float] = {}
    for alg in (FastLuby("priority"), FastLuby("degree")):
        est = run_trials(alg, graph, trials, seed=seed)
        out[alg.name] = est.inequality
    return out


def format_gamma_sweep(rows: list[GammaSweepRow]) -> str:
    """Render a γ sweep as a text table."""
    header = (
        f"{'Algorithm':<18} {'c':>5} {'γ':>4} {'Ineq.':>8} "
        f"{'minP':>7} {'fallback':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:<18} {r.gamma_c:>5.1f} {r.gamma:>4} "
            f"{r.inequality:>8.2f} {r.min_join:>7.3f} "
            f"{r.fallback_fraction:>9.4f}"
        )
    return "\n".join(lines)
