"""Experiments E7–E10: measure every fairness theorem's bound.

Each runner returns a :class:`BoundCheck` carrying the paper bound, the
measured statistic, and a conservative (Wilson-adjusted) verdict, so the
benchmark suite can regress the paper's *claims* and EXPERIMENTS.md can
print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.fairness import JoinEstimate
from ..analysis.montecarlo import run_trials
from ..analysis.theory import (
    colormis_min_join_probability,
    fairbipart_inequality_bound,
    fairbipart_min_join_probability,
    fairrooted_inequality_bound,
    fairtree_min_join_probability,
)
from ..core.result import MISAlgorithm
from ..fast.blocks import FastColorMIS, FastFairBipart
from ..fast.fair_rooted import FastFairRooted
from ..fast.fair_tree import FastFairTree
from ..graphs.generators import random_tree, random_bipartite, triangulated_grid
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = [
    "BoundCheck",
    "check_fairrooted_bound",
    "check_fairtree_bound",
    "check_fairbipart_bound",
    "check_colormis_bound",
    "run_all_bounds",
    "format_bounds",
]


@dataclass(frozen=True)
class BoundCheck:
    """Paper bound vs measured statistic for one theorem."""

    theorem: str
    algorithm: str
    graph_desc: str
    n: int
    statistic: str
    measured: float
    paper_bound: float
    satisfied: bool
    trials: int


def _measure(
    alg: MISAlgorithm,
    graph: StaticGraph,
    trials: int,
    seed: SeedLike,
) -> JoinEstimate:
    return run_trials(alg, graph, trials, seed=seed)


def check_fairrooted_bound(
    n: int = 120, trials: int = 4000, seed: SeedLike = 0
) -> BoundCheck:
    """Theorem 3: FAIRROOTED inequality ≤ 4 on rooted trees."""
    tree = random_tree(n, seed=seed)
    est = _measure(FastFairRooted(tree=tree), tree.graph, trials, seed)
    lower, _ = est.inequality_bounds()
    bound = fairrooted_inequality_bound()
    return BoundCheck(
        theorem="Theorem 3",
        algorithm="fair_rooted",
        graph_desc=f"random rooted tree",
        n=n,
        statistic="inequality factor",
        measured=est.inequality,
        paper_bound=bound,
        satisfied=lower <= bound,
        trials=trials,
    )


def check_fairtree_bound(
    n: int = 120, trials: int = 4000, seed: SeedLike = 0
) -> BoundCheck:
    """Theorem 8: FAIRTREE min join probability ≥ (1-ε)/4 on trees."""
    tree = random_tree(n, seed=seed)
    est = _measure(FastFairTree(), tree.graph, trials, seed)
    bound = fairtree_min_join_probability(n)
    import numpy as np

    from ..analysis.fairness import wilson_interval

    _, hi = wilson_interval(est.counts, est.trials)
    measured = est.min_probability
    return BoundCheck(
        theorem="Theorem 8",
        algorithm="fair_tree",
        graph_desc="random unrooted tree",
        n=n,
        statistic="min join probability",
        measured=measured,
        paper_bound=bound,
        satisfied=bool(np.all(hi >= bound)),
        trials=trials,
    )


def check_fairbipart_bound(
    a: int = 40, b: int = 40, p: float = 0.08, trials: int = 3000, seed: SeedLike = 0
) -> BoundCheck:
    """Theorem 13 / Lemma 16: FAIRBIPART min join ≥ 1/8 on bipartite graphs."""
    graph = random_bipartite(a, b, p, seed=seed)
    est = _measure(FastFairBipart(), graph, trials, seed)
    n = graph.n
    bound = min(1.0 / 8.0, fairbipart_min_join_probability(n))
    import numpy as np

    from ..analysis.fairness import wilson_interval

    _, hi = wilson_interval(est.counts, est.trials)
    return BoundCheck(
        theorem="Theorem 13",
        algorithm="fair_bipart",
        graph_desc=f"random bipartite G({a},{b},{p})",
        n=n,
        statistic="min join probability",
        measured=est.min_probability,
        paper_bound=bound,
        satisfied=bool(np.all(hi >= bound)),
        trials=trials,
    )


def check_colormis_bound(
    rows: int = 8, cols: int = 8, trials: int = 3000, seed: SeedLike = 0
) -> BoundCheck:
    """Theorem 17 / Corollary 18: COLORMIS join ≥ Ω(1/k) on planar graphs."""
    graph = triangulated_grid(rows, cols)
    alg = FastColorMIS()
    est = _measure(alg, graph, trials, seed)
    k = graph.max_degree + 1
    bound = colormis_min_join_probability(graph.n, k)
    import numpy as np

    from ..analysis.fairness import wilson_interval

    _, hi = wilson_interval(est.counts, est.trials)
    return BoundCheck(
        theorem="Theorem 17",
        algorithm="color_mis",
        graph_desc=f"triangulated {rows}x{cols} grid (planar)",
        n=graph.n,
        statistic=f"min join probability (k={k})",
        measured=est.min_probability,
        paper_bound=bound,
        satisfied=bool(np.all(hi >= bound)),
        trials=trials,
    )


def run_all_bounds(trials: int = 3000, seed: SeedLike = 0) -> list[BoundCheck]:
    """Run every theorem check with a common trial budget."""
    return [
        check_fairrooted_bound(trials=trials, seed=seed),
        check_fairtree_bound(trials=trials, seed=seed),
        check_fairbipart_bound(trials=trials, seed=seed),
        check_colormis_bound(trials=trials, seed=seed),
    ]


def format_bounds(checks: list[BoundCheck]) -> str:
    """Render theorem checks as paper-vs-measured rows."""
    header = (
        f"{'Theorem':<12} {'Algorithm':<14} {'Graph':<32} "
        f"{'Statistic':<28} {'Measured':>9} {'Bound':>9} {'OK':>4}"
    )
    lines = [header, "-" * len(header)]
    for c in checks:
        lines.append(
            f"{c.theorem:<12} {c.algorithm:<14} {c.graph_desc:<32} "
            f"{c.statistic:<28} {c.measured:>9.3f} {c.paper_bound:>9.3f} "
            f"{str(c.satisfied):>4}"
        )
    return "\n".join(lines)
