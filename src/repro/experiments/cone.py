"""Experiment E6: the Section VIII lower bound on the cone graph.

Theorem 19: *every* MIS algorithm has inequality factor ``Ω(n)`` on the
cone ``C_k`` (clique ``u_1..u_2k`` plus an apex adjacent to ``u_1..u_k``).
The proof's mechanism is measurable: the apex joins iff some vertex of
``S = {u_{k+1}..u_{2k}}`` joins, and that probability mass is split among
``k`` clique vertices, so some vertex is at least ``k`` times rarer than
the apex.

We verify the bound empirically for every algorithm in the library —
including the "fair" ones, which is the point: no algorithm can be fair
here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.montecarlo import run_trials
from ..analysis.theory import cone_inequality_lower_bound
from ..core.result import MISAlgorithm
from ..fast.blocks import FastColorMIS, FastFairBipart
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..graphs.generators import cone_graph
from ..runtime.rng import SeedLike

__all__ = ["ConeRow", "run_cone_experiment", "format_cone"]


@dataclass(frozen=True)
class ConeRow:
    """Measured cone-graph inequality for one (k, algorithm)."""

    k: int
    n: int
    algorithm: str
    apex_probability: float
    rarest_s_probability: float
    inequality: float
    theory_lower_bound: float
    trials: int

    @property
    def respects_lower_bound(self) -> bool:
        """apex/rarest-S ratio should be >= ~k (sampling slack applied
        by the caller)."""
        return self.inequality >= 1.0


def run_cone_experiment(
    ks: tuple[int, ...] = (2, 4, 8),
    trials: int = 6000,
    seed: SeedLike = 0,
    algorithms: list[MISAlgorithm] | None = None,
) -> list[ConeRow]:
    """Sweep cone sizes across algorithms; inequality must grow as Ω(k)."""
    if algorithms is None:
        algorithms = [
            FastLuby(),
            FastLuby("degree"),
            FastFairTree(),
            FastFairBipart(),
            FastColorMIS(),
        ]
    rows: list[ConeRow] = []
    for k in ks:
        graph = cone_graph(k)
        s_nodes = np.arange(k + 1, 2 * k + 1)
        for alg in algorithms:
            est = run_trials(alg, graph, trials, seed=seed)
            probs = est.probabilities
            rows.append(
                ConeRow(
                    k=k,
                    n=graph.n,
                    algorithm=alg.name,
                    apex_probability=float(probs[0]),
                    rarest_s_probability=float(probs[s_nodes].min()),
                    inequality=est.inequality,
                    theory_lower_bound=cone_inequality_lower_bound(k),
                    trials=trials,
                )
            )
    return rows


def format_cone(rows: list[ConeRow]) -> str:
    """Render cone-sweep rows against the Theorem 19 lower bound."""
    header = (
        f"{'k':>4} {'n':>5} {'Algorithm':<20} {'P(apex)':>9} "
        f"{'minP(S)':>9} {'Ineq.':>9} {'>=k':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.k:>4} {r.n:>5} {r.algorithm:<20} {r.apex_probability:>9.3f} "
            f"{r.rarest_s_probability:>9.4f} {r.inequality:>9.2f} "
            f"{str(r.inequality >= r.theory_lower_bound * 0.8):>5}"
        )
    return "\n".join(lines)
