"""Experiment E13 (extension): estimator convergence and bias.

The Table I statistic — the plug-in max/min inequality estimator — is
biased *upward* at finite trial counts: with thousands of nodes, the
minimum empirical frequency is an extreme order statistic and sits below
the true minimum probability.  This experiment quantifies that bias by
sweeping the trial budget on a tree with a *known* fairness profile
(FAIRTREE, whose plug-in estimate must approach its asymptote from above)
and reports, per budget, the plug-in estimate and the Wilson-conservative
bracket.  It motivates (a) the paper's choice of 10,000 trials, and
(b) this repository's use of `inequality_lower` in benchmark assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.fairness import JoinEstimate
from ..analysis.montecarlo import run_trials
from ..core.result import MISAlgorithm
from ..fast.fair_tree import FastFairTree
from ..graphs.generators import complete_tree
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = ["ConvergenceRow", "run_convergence_experiment", "format_convergence"]


@dataclass(frozen=True)
class ConvergenceRow:
    """Plug-in vs bracketed inequality at one trial budget."""

    trials: int
    plugin_inequality: float
    lower_bound: float
    upper_bound: float
    min_probability: float

    @property
    def bracket_width(self) -> float:
        """Width of the conservative inequality bracket."""
        return self.upper_bound - self.lower_bound


def run_convergence_experiment(
    budgets: tuple[int, ...] = (100, 400, 1600, 6400),
    seed: SeedLike = 0,
    graph: StaticGraph | None = None,
    algorithm: MISAlgorithm | None = None,
) -> list[ConvergenceRow]:
    """Sweep Monte-Carlo budgets; rows shrink toward the asymptote."""
    if graph is None:
        graph = complete_tree(2, 8).graph  # n=511: big enough to show bias
    if algorithm is None:
        algorithm = FastFairTree()
    rows: list[ConvergenceRow] = []
    for trials in budgets:
        est: JoinEstimate = run_trials(algorithm, graph, trials, seed=seed)
        lower, upper = est.inequality_bounds()
        rows.append(
            ConvergenceRow(
                trials=trials,
                plugin_inequality=est.inequality,
                lower_bound=lower,
                upper_bound=upper,
                min_probability=est.min_probability,
            )
        )
    return rows


def format_convergence(rows: list[ConvergenceRow]) -> str:
    """Render the convergence sweep."""
    header = (
        f"{'trials':>8} {'plug-in F':>10} {'lower':>8} {'upper':>8} "
        f"{'bracket':>8} {'min P̂':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.trials:>8} {r.plugin_inequality:>10.3f} {r.lower_bound:>8.3f} "
            f"{r.upper_bound:>8.3f} {r.bracket_width:>8.3f} "
            f"{r.min_probability:>8.3f}"
        )
    lines.append(
        "(plug-in decreases toward the asymptote as trials grow; the"
        " bracket tightens)"
    )
    return "\n".join(lines)
