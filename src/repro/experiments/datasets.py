"""The six evaluation trees of Table I (and their scalable variants).

Synthetic trees are exact (same ``n`` as the paper); the two "real-world"
trees are rebuilt with the paper's own pipeline (distance-threshold graph
→ MST) over synthetic WAP point clouds — see DESIGN.md §3 for the
substitution rationale.  ``city_tree`` defaults to a laptop-scale ``n``;
pass ``n=17834`` for the paper's full size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.generators import alternating_tree, complete_tree
from ..graphs.geometric import campus_model, city_model, wap_tree
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = [
    "EvalTree",
    "binary_tree",
    "five_ary_tree",
    "alternating_tree_b10",
    "alternating_tree_b30",
    "campus_tree",
    "city_tree",
    "table1_trees",
    "DEFAULT_CITY_N",
]

#: Default laptop-scale size for the NYC-like tree (paper: 17,834).
DEFAULT_CITY_N = 2500


@dataclass(frozen=True)
class EvalTree:
    """One evaluation topology with its Table I metadata."""

    key: str
    label: str
    category: str  # "complete" | "alternating" | "realworld"
    graph: StaticGraph
    paper_luby: float
    paper_fairtree: float


def binary_tree() -> EvalTree:
    """Complete binary tree, depth 10 (|V| = 2047)."""
    return EvalTree(
        key="binary",
        label="Binary tree (Branch=2, Depth=10)",
        category="complete",
        graph=complete_tree(2, 10).graph,
        paper_luby=3.07,
        paper_fairtree=2.22,
    )


def five_ary_tree() -> EvalTree:
    """Complete 5-ary tree, depth 5 (|V| = 3906)."""
    return EvalTree(
        key="5ary",
        label="5-ary tree (Branch=5, Depth=5)",
        category="complete",
        graph=complete_tree(5, 5).graph,
        paper_luby=6.42,
        paper_fairtree=3.09,
    )


def alternating_tree_b10() -> EvalTree:
    """Alternating tree, branch 10 at even depths, depth 5 (|V| = 1221)."""
    return EvalTree(
        key="alt10",
        label="Alternating (Branch=10, Depth=5)",
        category="alternating",
        graph=alternating_tree(10, 5).graph,
        paper_luby=11.92,
        paper_fairtree=3.15,
    )


def alternating_tree_b30() -> EvalTree:
    """Alternating tree, branch 30 at even depths, depth 3 (|V| = 961)."""
    return EvalTree(
        key="alt30",
        label="Alternating (Branch=30, Depth=3)",
        category="alternating",
        graph=alternating_tree(30, 3).graph,
        paper_luby=36.59,
        paper_fairtree=3.09,
    )


def campus_tree(seed: SeedLike = 11) -> EvalTree:
    """Dartmouth-like campus WAP MST (|V| = 178)."""
    return EvalTree(
        key="campus",
        label="Dartmouth-like campus (synthetic)",
        category="realworld",
        graph=wap_tree(campus_model(seed=seed)),
        paper_luby=22.75,
        paper_fairtree=3.07,
    )


def city_tree(n: int = DEFAULT_CITY_N, seed: SeedLike = 12) -> EvalTree:
    """NYC-like city WAP MST (paper: |V| = 17,834; default scaled)."""
    return EvalTree(
        key="city",
        label=f"New-York-like city (synthetic, n={n})",
        category="realworld",
        graph=wap_tree(city_model(n=n, seed=seed)),
        paper_luby=168.49,
        paper_fairtree=3.25,
    )


def table1_trees(
    city_n: int = DEFAULT_CITY_N, seed: SeedLike = 11
) -> list[EvalTree]:
    """All six Table I topologies in paper order."""
    return [
        binary_tree(),
        five_ary_tree(),
        alternating_tree_b10(),
        alternating_tree_b30(),
        campus_tree(seed=seed),
        city_tree(n=city_n, seed=seed),
    ]
