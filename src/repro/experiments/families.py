"""Experiment E14 (extension): the fairness landscape across families.

A cross-product sweep — every fair algorithm and the Luby baseline over a
matrix of graph families — summarizing *who is fair where*.  This is the
"coverage map" a downstream user consults before picking an algorithm:

* FAIRROOTED / FAIRTREE: fair exactly on (rooted/unrooted) trees;
* FAIRBIPART: fair on bipartite graphs (trees included, slower);
* COLORMIS: O(k)-fair wherever a small coloring exists (planar);
* everything: unfair on the cone (Theorem 19).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.montecarlo import run_trials
from ..core.result import MISAlgorithm
from ..fast.blocks import FastColorMIS, FastFairBipart
from ..fast.fair_rooted import FastFairRooted
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..graphs.generators import (
    caterpillar,
    cone_graph,
    grid_graph,
    random_bipartite,
    random_tree,
    star_graph,
    triangulated_grid,
)
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = ["FamilyCell", "run_family_sweep", "format_family_sweep"]


@dataclass(frozen=True)
class FamilyCell:
    """One (family, algorithm) cell of the landscape."""

    family: str
    n: int
    algorithm: str
    inequality: float
    min_join: float
    guaranteed_fair: bool  # does the paper give this pair a constant bound?


#: The paper's guarantees: algorithm name -> families it is provably fair on.
_GUARANTEES: dict[str, set[str]] = {
    "fair_rooted_fast": {"tree", "star", "caterpillar"},
    "fair_tree_fast": {"tree", "star", "caterpillar"},
    "fair_bipart_fast": {"tree", "star", "caterpillar", "grid", "bipartite"},
    "color_mis_fast": {
        "tree",
        "star",
        "caterpillar",
        "grid",
        "bipartite",
        "planar",
    },
    "luby_fast": set(),
}


def _family_matrix(seed: SeedLike) -> list[tuple[str, StaticGraph]]:
    return [
        ("tree", random_tree(80, seed=seed).graph),
        ("star", star_graph(40)),
        ("caterpillar", caterpillar(8, 4).graph),
        ("grid", grid_graph(7, 7)),
        ("bipartite", random_bipartite(20, 20, 0.12, seed=seed)),
        ("planar", triangulated_grid(7, 7)),
        ("cone", cone_graph(8)),
    ]


def _algorithms(tree_only_ok: bool) -> list[MISAlgorithm]:
    algs: list[MISAlgorithm] = [
        FastLuby(),
        FastFairTree(),
        FastFairBipart(),
        FastColorMIS(),
    ]
    if tree_only_ok:
        algs.insert(1, FastFairRooted())
    return algs


def run_family_sweep(
    trials: int = 1500, seed: SeedLike = 0
) -> list[FamilyCell]:
    """Run the full (family × algorithm) fairness matrix."""
    cells: list[FamilyCell] = []
    for family, graph in _family_matrix(seed):
        is_tree = graph.is_forest()
        for alg in _algorithms(tree_only_ok=is_tree):
            est = run_trials(alg, graph, trials, seed=seed)
            cells.append(
                FamilyCell(
                    family=family,
                    n=graph.n,
                    algorithm=alg.name,
                    inequality=est.inequality,
                    min_join=est.min_probability,
                    guaranteed_fair=family in _GUARANTEES.get(alg.name, set()),
                )
            )
    return cells


def format_family_sweep(cells: list[FamilyCell]) -> str:
    """Render the landscape as a matrix-ish table."""
    header = (
        f"{'Family':<12} {'n':>5} {'Algorithm':<18} {'Ineq.':>8} "
        f"{'minP':>7} {'guaranteed':>11}"
    )
    lines = [header, "-" * len(header)]
    for c in cells:
        mark = "fair" if c.guaranteed_fair else "-"
        lines.append(
            f"{c.family:<12} {c.n:>5} {c.algorithm:<18} {c.inequality:>8.2f} "
            f"{c.min_join:>7.3f} {mark:>11}"
        )
    return "\n".join(lines)
