"""Experiment E4: reproduce Figure 4 (join-frequency CDFs).

Figure 4 plots the CDF of each node's empirical join frequency over the
Monte-Carlo runs, for (left) complete trees, (center) alternating trees,
and (right) the real-world trees.  The paper's qualitative claims, which
:func:`run_figure4` turns into numbers:

* FAIRTREE's distribution is *compact* — no tail toward low or high
  probabilities (every node's frequency stays near [1/4, 3/4]);
* Luby's is *diffuse*, with real mass at very low frequencies — e.g. for
  the B=10 alternating tree, ~10% of nodes join only ~10% of the time
  while ~80% of nodes join ~90% of the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.cdf import CDF, cdf_spread_stats, empirical_cdf
from ..analysis.montecarlo import run_trials
from ..core.result import MISAlgorithm
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..runtime.rng import SeedLike
from .datasets import DEFAULT_CITY_N, EvalTree, table1_trees

__all__ = ["Figure4Series", "run_figure4", "format_figure4"]


@dataclass(frozen=True)
class Figure4Series:
    """One CDF curve of Figure 4: a (panel, tree, algorithm) triple."""

    panel: str  # "complete" | "alternating" | "realworld"
    tree: str
    algorithm: str
    trials: int
    frequencies: np.ndarray = field(repr=False)
    cdf: CDF = field(repr=False)
    stats: dict[str, float] = field(repr=False)


def run_figure4(
    trials: int = 10000,
    seed: SeedLike = 0,
    city_n: int = DEFAULT_CITY_N,
    trees: list[EvalTree] | None = None,
    algorithms: list[MISAlgorithm] | None = None,
    n_jobs: int = 1,
) -> list[Figure4Series]:
    """Produce every CDF series of Figure 4.

    ``n_jobs`` follows the canonical semantics of
    :func:`repro.analysis.montecarlo.normalize_jobs` (``0``/negative =
    all cores).
    """
    if trees is None:
        trees = table1_trees(city_n=city_n)
    if algorithms is None:
        algorithms = [FastLuby(), FastFairTree()]
    series: list[Figure4Series] = []
    for tree in trees:
        for alg in algorithms:
            est = run_trials(alg, tree.graph, trials, seed=seed, n_jobs=n_jobs)
            freqs = est.probabilities
            series.append(
                Figure4Series(
                    panel=tree.category,
                    tree=tree.label,
                    algorithm=alg.name,
                    trials=trials,
                    frequencies=freqs,
                    cdf=empirical_cdf(freqs),
                    stats=cdf_spread_stats(freqs),
                )
            )
    return series


def format_figure4(series: list[Figure4Series]) -> str:
    """Render the CDF spread summaries as a text table."""
    header = (
        f"{'Panel':<12} {'Tree':<42} {'Algorithm':<16} "
        f"{'min':>6} {'med':>6} {'max':>6} {'IQR':>6} {'<0.10':>6}"
    )
    lines = [header, "-" * len(header)]
    for s in series:
        st = s.stats
        lines.append(
            f"{s.panel:<12} {s.tree:<42} {s.algorithm:<16} "
            f"{st['min']:>6.2f} {st['median']:>6.2f} {st['max']:>6.2f} "
            f"{st['iqr']:>6.2f} {st['frac_below_0.10']:>6.2f}"
        )
    return "\n".join(lines)
