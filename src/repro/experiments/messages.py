"""Experiment E15 (extension): message and bit complexity.

The model bounds per-message size at ``O(log n)`` bits; total traffic is
the other axis of communication cost.  The faithful runtime counts every
message and slot, so this experiment reports, per algorithm and size:
messages per node, slots per node, and the growth trend — the numbers a
deployment would budget radio time against.

Expected shapes: Luby and FAIRROOTED are ``O(m·log)``-ish light;
FAIRTREE pays its three γ-round CFB floods; FAIRBIPART's chunked leader
tables dominate everything (Θ(γ²) rounds of table traffic — the §VI
price of generality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.fair_bipart import FairBipart
from ..algorithms.fair_rooted import FairRooted
from ..algorithms.fair_tree import FairTree
from ..algorithms.luby import LubyMIS
from ..core.result import MISAlgorithm
from ..graphs.generators import random_tree
from ..runtime.rng import SeedLike, generator_from

__all__ = ["MessageRow", "run_message_experiment", "format_messages"]


@dataclass(frozen=True)
class MessageRow:
    """Traffic statistics for one (algorithm, n) cell."""

    algorithm: str
    n: int
    rounds: float
    messages_per_node: float
    slots_per_node: float
    max_message_slots: int
    repeats: int


def run_message_experiment(
    sizes: tuple[int, ...] = (16, 32, 64),
    repeats: int = 3,
    seed: SeedLike = 0,
    algorithms: list[MISAlgorithm] | None = None,
) -> list[MessageRow]:
    """Measure faithful-layer traffic on random trees of growing size."""
    if algorithms is None:
        algorithms = [LubyMIS(), FairRooted(), FairTree(), FairBipart()]
    rng = generator_from(seed)
    rows: list[MessageRow] = []
    for alg in algorithms:
        for n in sizes:
            graph = random_tree(n, seed=int(rng.integers(2**31))).graph
            msgs, slots, rounds, max_slots = [], [], [], 0
            for _ in range(repeats):
                res = alg.run(graph, rng)
                assert res.metrics is not None
                msgs.append(res.metrics.total_messages)
                slots.append(res.metrics.total_slots)
                rounds.append(res.metrics.rounds)
                max_slots = max(max_slots, res.metrics.max_slots_per_message)
            rows.append(
                MessageRow(
                    algorithm=alg.name,
                    n=n,
                    rounds=float(np.mean(rounds)),
                    messages_per_node=float(np.mean(msgs)) / n,
                    slots_per_node=float(np.mean(slots)) / n,
                    max_message_slots=max_slots,
                    repeats=repeats,
                )
            )
    return rows


def format_messages(rows: list[MessageRow]) -> str:
    """Render the traffic table."""
    header = (
        f"{'Algorithm':<14} {'n':>6} {'rounds':>8} {'msg/node':>10} "
        f"{'slots/node':>11} {'max msg':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:<14} {r.n:>6} {r.rounds:>8.1f} "
            f"{r.messages_per_node:>10.1f} {r.slots_per_node:>11.1f} "
            f"{r.max_message_slots:>8}"
        )
    return "\n".join(lines)
