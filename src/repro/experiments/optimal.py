"""Experiment E12 (extension): exact optimal fairness of small graphs.

The paper closes asking for "a better classification of exactly which
properties unavoidably yield inequality".  On small graphs we can answer
exactly: enumerate every maximal independent set and solve a linear
program for the minimum achievable inequality factor ``F*(G)`` over *all*
MIS distributions (i.e. all algorithms, distributed or not, with any
amount of shared randomness).

Findings this experiment regenerates:

* trees, stars, cycles, cliques, bipartite graphs: ``F* = 1`` — perfect
  fairness is information-theoretically possible (the §V centralized
  remark);
* the cone ``C_k``: ``F* = k`` exactly — Theorem 19's Ω(n) bound is
  *tight*, and our measured algorithm inequalities can be compared
  against the true floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.montecarlo import run_trials
from ..exact.enumerate import count_mis
from ..exact.optimal import optimal_inequality
from ..fast.luby import FastLuby
from ..graphs.generators import (
    complete_graph,
    cone_graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike

__all__ = ["OptimalRow", "run_optimal_experiment", "format_optimal"]


@dataclass(frozen=True)
class OptimalRow:
    """Exact optimal fairness vs a measured algorithm for one graph."""

    graph_desc: str
    n: int
    num_mis: int
    optimal_inequality: float
    luby_inequality: float
    theory_note: str


def _families(seed: SeedLike) -> list[tuple[str, StaticGraph, str]]:
    return [
        ("path P8", path_graph(8), "F*=1 (bipartite)"),
        ("star S8", star_graph(8), "F*=1 (bipartite)"),
        ("cycle C6", cycle_graph(6), "F*=1 (bipartite)"),
        ("cycle C7", cycle_graph(7), "odd cycle"),
        ("clique K5", complete_graph(5), "F*=1 (symmetry)"),
        ("random tree n=10", random_tree(10, seed=seed).graph, "F*=1 (tree)"),
        ("cone C_2", cone_graph(2), "Theorem 19: F* = k = 2"),
        ("cone C_3", cone_graph(3), "Theorem 19: F* = k = 3"),
        ("cone C_4", cone_graph(4), "Theorem 19: F* = k = 4"),
        ("cone C_5", cone_graph(5), "Theorem 19: F* = k = 5"),
    ]


def run_optimal_experiment(
    trials: int = 3000, seed: SeedLike = 0
) -> list[OptimalRow]:
    """Compute ``F*`` for the canonical small families and compare with
    measured Luby inequality."""
    rows: list[OptimalRow] = []
    for desc, graph, note in _families(seed):
        opt = optimal_inequality(graph)
        luby = run_trials(FastLuby(), graph, trials, seed=seed)
        rows.append(
            OptimalRow(
                graph_desc=desc,
                n=graph.n,
                num_mis=count_mis(graph),
                optimal_inequality=opt.inequality,
                luby_inequality=luby.inequality,
                theory_note=note,
            )
        )
    return rows


def format_optimal(rows: list[OptimalRow]) -> str:
    """Render the optimal-fairness table."""
    header = (
        f"{'Graph':<20} {'n':>4} {'#MIS':>6} {'F* (exact)':>11} "
        f"{'Luby':>8}  note"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.graph_desc:<20} {r.n:>4} {r.num_mis:>6} "
            f"{r.optimal_inequality:>11.3f} {r.luby_inequality:>8.2f}  "
            f"{r.theory_note}"
        )
    return "\n".join(lines)
