"""Experiment E11: measured round complexity of the faithful layer.

The paper's complexity claims (Lemma 5: ``O(log* n)`` for FAIRROOTED;
Lemma 9: ``O(log n)`` for FAIRTREE; Lemma 15: ``O(log² n)`` for
FAIRBIPART; [13]: ``O(log n)`` for Luby) are about synchronous rounds —
only the faithful node-process layer counts them, so this experiment runs
that layer on growing instances and reports rounds alongside the claimed
scale function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..algorithms.fair_bipart import FairBipart
from ..algorithms.fair_rooted import FairRooted
from ..algorithms.fair_tree import FairTree
from ..algorithms.luby import LubyMIS
from ..analysis.theory import log_star
from ..core.result import MISAlgorithm
from ..graphs.generators import random_tree
from ..graphs.graph import StaticGraph
from ..runtime.rng import SeedLike, generator_from

__all__ = ["RoundsRow", "run_rounds_experiment", "format_rounds"]


@dataclass(frozen=True)
class RoundsRow:
    """Measured rounds for one (algorithm, n) cell."""

    algorithm: str
    n: int
    rounds_mean: float
    rounds_max: int
    scale: str
    scale_value: float
    repeats: int

    @property
    def normalized(self) -> float:
        """rounds / claimed scale — should stay bounded as n grows."""
        return self.rounds_mean / max(self.scale_value, 1.0)


_SCALES: dict[str, tuple[str, Callable[[int], float]]] = {
    "luby": ("log n", lambda n: math.log2(max(n, 2))),
    "fair_rooted": ("log* n", lambda n: float(max(log_star(n), 1))),
    "fair_tree": ("log n", lambda n: math.log2(max(n, 2))),
    "fair_bipart": ("log^2 n", lambda n: math.log2(max(n, 2)) ** 2),
}


def run_rounds_experiment(
    sizes: tuple[int, ...] = (16, 32, 64, 128),
    repeats: int = 3,
    seed: SeedLike = 0,
    algorithms: list[MISAlgorithm] | None = None,
) -> list[RoundsRow]:
    """Measure faithful-layer rounds on random trees of growing size."""
    if algorithms is None:
        algorithms = [LubyMIS(), FairRooted(), FairTree(), FairBipart()]
    rng = generator_from(seed)
    rows: list[RoundsRow] = []
    for alg in algorithms:
        scale_name, scale_fn = _SCALES.get(
            alg.name, ("log n", lambda n: math.log2(max(n, 2)))
        )
        for n in sizes:
            graph: StaticGraph = random_tree(n, seed=int(rng.integers(2**31))).graph
            rounds = [alg.run(graph, rng).rounds for _ in range(repeats)]
            rows.append(
                RoundsRow(
                    algorithm=alg.name,
                    n=n,
                    rounds_mean=float(np.mean(rounds)),
                    rounds_max=int(np.max(rounds)),
                    scale=scale_name,
                    scale_value=scale_fn(n),
                    repeats=repeats,
                )
            )
    return rows


def format_rounds(rows: list[RoundsRow]) -> str:
    """Render round measurements with their normalized scale ratios."""
    header = (
        f"{'Algorithm':<14} {'n':>6} {'rounds':>8} {'scale':>8} "
        f"{'rounds/scale':>13}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:<14} {r.n:>6} {r.rounds_mean:>8.1f} "
            f"{r.scale_value:>8.1f} {r.normalized:>13.2f}   ({r.scale})"
        )
    return "\n".join(lines)
