"""Experiment E5: the Section I star-graph motivation.

Luby's algorithm on the star ``S_n`` leaves the center ``Θ(n)`` times less
likely to join than the leaves (the center joins only when it draws the
round-1 maximum, probability exactly ``1/n``), while the fair algorithms
keep every node's probability ≥ 1/4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.montecarlo import run_trials
from ..analysis.theory import star_luby_center_probability, star_luby_inequality
from ..core.result import MISAlgorithm
from ..fast.fair_rooted import FastFairRooted
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..graphs.generators import star_graph
from ..runtime.rng import SeedLike

__all__ = ["StarRow", "run_star_experiment", "format_star"]


@dataclass(frozen=True)
class StarRow:
    """Measured vs theoretical star-graph behaviour for one (n, algo)."""

    n: int
    algorithm: str
    center_probability: float
    leaf_probability: float
    inequality: float
    theory_inequality: float | None
    trials: int


def run_star_experiment(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    trials: int = 4000,
    seed: SeedLike = 0,
    algorithms: list[MISAlgorithm] | None = None,
) -> list[StarRow]:
    """Sweep star sizes; Luby inequality should scale linearly in n."""
    if algorithms is None:
        algorithms = [FastLuby(), FastFairTree(), FastFairRooted()]
    rows: list[StarRow] = []
    for n in sizes:
        graph = star_graph(n)
        for alg in algorithms:
            est = run_trials(alg, graph, trials, seed=seed)
            probs = est.probabilities
            theory = star_luby_inequality(n) if "luby" in alg.name else None
            rows.append(
                StarRow(
                    n=n,
                    algorithm=alg.name,
                    center_probability=float(probs[0]),
                    leaf_probability=float(probs[1:].mean()),
                    inequality=est.inequality,
                    theory_inequality=theory,
                    trials=trials,
                )
            )
    return rows


def format_star(rows: list[StarRow]) -> str:
    """Render star-sweep rows, annotating the exact Luby theory values."""
    header = (
        f"{'n':>5} {'Algorithm':<18} {'P(center)':>10} {'P(leaf)':>8} "
        f"{'Ineq.':>8} {'Theory':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        theo = f"{r.theory_inequality:.1f}" if r.theory_inequality else "-"
        lines.append(
            f"{r.n:>5} {r.algorithm:<18} {r.center_probability:>10.3f} "
            f"{r.leaf_probability:>8.3f} {r.inequality:>8.2f} {theo:>8}"
        )
    lines.append(
        f"(exact: P(center) = 1/n = {star_luby_center_probability(rows[0].n):.3f}"
        " for the smallest n shown)"
    )
    return "\n".join(lines)
