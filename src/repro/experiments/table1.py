"""Experiment E1–E3: reproduce Table I.

For every evaluation tree, run Luby's algorithm and FAIRTREE for a number
of Monte-Carlo trials (paper: 10,000) and report the inequality factor.
The expected *shape*: Luby grows with degree heterogeneity (3 → 6 → 12 →
37 → 23 → 168 across the paper's rows) while FAIRTREE stays ≤ ~3.25
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.fairness import JoinEstimate
from ..analysis.montecarlo import run_trials
from ..core.result import MISAlgorithm
from ..fast.fair_tree import FastFairTree
from ..fast.luby import FastLuby
from ..runtime.rng import SeedLike
from .datasets import DEFAULT_CITY_N, EvalTree, table1_trees

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One (tree, algorithm) cell of Table I."""

    tree: str
    category: str
    n: int
    m: int
    algorithm: str
    inequality: float
    #: Wilson-conservative lower bound on the inequality factor — the
    #: plug-in max/min estimator is biased upward at small trial counts
    #: (extreme order statistics over thousands of nodes), so shape
    #: assertions use this bound instead.
    inequality_lower: float
    paper_inequality: float
    min_join: float
    max_join: float
    trials: int

    @property
    def matches_paper_shape(self) -> bool:
        """Same order of magnitude as the paper's number (factor 3)."""
        if self.paper_inequality <= 0:
            return True
        ratio = self.inequality / self.paper_inequality
        return 1 / 3 <= ratio <= 3


def _algorithms() -> list[MISAlgorithm]:
    return [FastLuby(), FastFairTree()]


def run_table1(
    trials: int = 10000,
    seed: SeedLike = 0,
    city_n: int = DEFAULT_CITY_N,
    trees: list[EvalTree] | None = None,
    algorithms: list[MISAlgorithm] | None = None,
    n_jobs: int = 1,
) -> list[Table1Row]:
    """Run the full Table I grid and return its rows.

    ``n_jobs`` follows the canonical semantics of
    :func:`repro.analysis.montecarlo.normalize_jobs` (``0``/negative =
    all cores).
    """
    if trees is None:
        trees = table1_trees(city_n=city_n)
    if algorithms is None:
        algorithms = _algorithms()
    rows: list[Table1Row] = []
    for tree in trees:
        for alg in algorithms:
            est: JoinEstimate = run_trials(
                alg, tree.graph, trials, seed=seed, n_jobs=n_jobs
            )
            paper = (
                tree.paper_luby if "luby" in alg.name else tree.paper_fairtree
            )
            lower, _ = est.inequality_bounds()
            rows.append(
                Table1Row(
                    tree=tree.label,
                    category=tree.category,
                    n=tree.graph.n,
                    m=tree.graph.m,
                    algorithm=alg.name,
                    inequality=est.inequality,
                    inequality_lower=lower,
                    paper_inequality=paper,
                    min_join=est.min_probability,
                    max_join=est.max_probability,
                    trials=trials,
                )
            )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows in the paper's Table I layout (plus paper reference)."""
    header = (
        f"{'Tree':<42} {'|V|':>6} {'Algorithm':<16} "
        f"{'Ineq.':>8} {'Paper':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.tree:<42} {row.n:>6} {row.algorithm:<16} "
            f"{row.inequality:>8.2f} {row.paper_inequality:>8.2f}"
        )
    return "\n".join(lines)
