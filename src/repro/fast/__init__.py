"""Vectorized Monte-Carlo engines (substrate S14).

Importing registers the fast algorithms under the names::

    luby_fast, fair_rooted_fast, fair_tree_fast, fair_bipart_fast,
    color_mis_fast
"""

from .batched import (
    batched_color_mis_trials,
    batched_fair_bipart_trials,
    batched_fair_rooted_trials,
    batched_fair_tree_trials,
    batched_luby_trials,
    disjoint_power,
    disjoint_power_cache_clear,
    disjoint_power_cache_info,
    vector_runner_for,
)
from .blocks import (
    FastColorMIS,
    FastFairBipart,
    arboricity_coloring_fast,
    color_mis_run,
    construct_block_fast,
    draw_radii,
    fair_bipart_run,
    greedy_coloring_fast,
)
from .cfb import cfb_fast
from .engine import (
    edge_both,
    neighbor_any,
    neighbor_count,
    neighbor_max,
    priority_keys,
)
from .fair_rooted import (
    FastColeVishkin,
    FastFairRooted,
    cole_vishkin_colors,
    fair_rooted_run,
)
from .fair_tree import FastFairTree, fair_tree_run
from .luby import FastLuby, luby_degree_sweep, luby_sweep

__all__ = [
    "batched_color_mis_trials",
    "batched_fair_bipart_trials",
    "batched_fair_rooted_trials",
    "batched_fair_tree_trials",
    "batched_luby_trials",
    "disjoint_power",
    "disjoint_power_cache_clear",
    "disjoint_power_cache_info",
    "vector_runner_for",
    "FastColorMIS",
    "FastFairBipart",
    "arboricity_coloring_fast",
    "color_mis_run",
    "construct_block_fast",
    "draw_radii",
    "fair_bipart_run",
    "greedy_coloring_fast",
    "cfb_fast",
    "edge_both",
    "neighbor_any",
    "neighbor_count",
    "neighbor_max",
    "priority_keys",
    "FastColeVishkin",
    "FastFairRooted",
    "cole_vishkin_colors",
    "fair_rooted_run",
    "FastFairTree",
    "fair_tree_run",
    "FastLuby",
    "luby_degree_sweep",
    "luby_sweep",
]
