"""Trial-batched execution via disjoint-union vectorization.

A Monte-Carlo batch of ``C`` independent trials of a per-round vectorized
algorithm is *exactly* one run of that algorithm on the disjoint union of
``C`` copies of the graph: components never interact, every copy draws
its own randomness, and the per-round numpy kernels amortize their fixed
cost over ``C·n`` vertices instead of ``n`` (the guides' "vectorize the
outer loop too" move).  The only subtlety is that size-derived parameters
(FAIRTREE's γ, Luby's iteration cap) must be computed from the *base*
graph's ``n``, not the union's — the runners below pin them explicitly.

Speedups are largest for small graphs and round-dominated algorithms
(~5-20×); see ``benchmarks/test_engine_speed.py``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fairness import JoinEstimate
from ..graphs.graph import StaticGraph
from ..algorithms.fair_tree import default_gamma
from ..obs.profile import phase
from ..runtime.rng import SeedLike, generator_from
from .fair_tree import fair_tree_run
from .luby import luby_sweep

__all__ = [
    "disjoint_power",
    "batched_luby_trials",
    "batched_fair_tree_trials",
    "vector_runner_for",
]


def disjoint_power(graph: StaticGraph, copies: int) -> StaticGraph:
    """The disjoint union of ``copies`` relabeled copies of *graph*.

    Copy ``c`` occupies vertices ``[c*n, (c+1)*n)``.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    n, e = graph.n, graph.edges
    if copies == 1:
        return graph
    offsets = (np.arange(copies, dtype=np.int64) * n)[:, None, None]
    tiled = (e[None, :, :] + offsets).reshape(-1, 2)
    return StaticGraph(n=n * copies, edges=tiled)


def _fold_counts(member: np.ndarray, copies: int, n: int) -> np.ndarray:
    """Sum per-copy membership into per-base-vertex join counts."""
    return member.reshape(copies, n).sum(axis=0).astype(np.int64)


def batched_luby_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
) -> JoinEstimate:
    """Luby (priority variant) join counts over *trials* runs.

    Statistically equivalent to :func:`repro.analysis.montecarlo.run_trials`
    with :class:`~repro.fast.luby.FastLuby` (different stream layout, same
    distribution), several times faster on small/medium graphs.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = generator_from(seed)
    n = graph.n
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = luby_sweep(union, rng)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


def batched_fair_tree_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
    gamma_c: float = 3.0,
    gamma: int | None = None,
) -> JoinEstimate:
    """FAIRTREE join counts over *trials* runs (batched).

    ``γ`` is pinned to the *base* graph's size so the batched algorithm is
    parameter-identical to the per-trial one.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = generator_from(seed)
    n = graph.n
    g_eff = gamma if gamma is not None else default_gamma(n, gamma_c)
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = fair_tree_run(union, rng, gamma=g_eff)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


# --------------------------------------------------------------------- #
# vector-runner registry (consumed by the estimation service)
# --------------------------------------------------------------------- #
def _luby_vector_runner(algorithm, graph, trials, seed):
    return batched_luby_trials(graph, trials, seed=seed).counts


def _fair_tree_vector_runner(algorithm, graph, trials, seed):
    return batched_fair_tree_trials(
        graph,
        trials,
        seed=seed,
        gamma_c=algorithm.gamma_c,
        gamma=algorithm.gamma,
    ).counts


def vector_runner_for(algorithm):
    """Batched (disjoint-union) runner for *algorithm*, or ``None``.

    A runner maps ``(algorithm, graph, trials, seed)`` to an int64 join-
    count vector that is statistically equivalent to per-trial execution
    but uses a different random-stream layout.  Only algorithms whose
    batched kernel is parameter-identical to the per-trial one qualify;
    the service falls back to exact per-trial chunks otherwise.
    """
    from .fair_tree import FastFairTree
    from .luby import FastLuby

    if isinstance(algorithm, FastLuby) and algorithm.variant == "priority":
        return _luby_vector_runner
    if isinstance(algorithm, FastFairTree):
        return _fair_tree_vector_runner
    return None
