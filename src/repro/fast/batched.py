"""Trial-batched execution via disjoint-union vectorization.

A Monte-Carlo batch of ``C`` independent trials of a per-round vectorized
algorithm is *exactly* one run of that algorithm on the disjoint union of
``C`` copies of the graph: components never interact, every copy draws
its own randomness, and the per-round numpy kernels amortize their fixed
cost over ``C·n`` vertices instead of ``n`` (the guides' "vectorize the
outer loop too" move).  The only subtlety is that size-derived parameters
(FAIRTREE's γ, Luby's iteration cap) must be computed from the *base*
graph's ``n``, not the union's — the runners below pin them explicitly.

Speedups are largest for small graphs and round-dominated algorithms
(~5-20×); see ``benchmarks/test_engine_speed.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..analysis.fairness import JoinEstimate
from ..graphs.graph import StaticGraph
from ..algorithms.fair_bipart import default_block_gamma
from ..algorithms.fair_tree import default_gamma
from ..obs.profile import current_profiler, phase
from ..runtime.rng import SeedLike, generator_from
from .fair_tree import fair_tree_run
from .luby import luby_sweep

__all__ = [
    "disjoint_power",
    "disjoint_power_cache_info",
    "disjoint_power_cache_clear",
    "batched_luby_trials",
    "batched_fair_tree_trials",
    "batched_fair_rooted_trials",
    "batched_fair_bipart_trials",
    "batched_color_mis_trials",
    "vector_runner_for",
]


# Memo for built unions, keyed by (base content_hash, copies).  The
# service dispatches many same-sized chunks of the same graph, so without
# this every chunk re-materializes an identical (copies*m, 2) edge array.
# Unions are immutable, so sharing one object across chunks is safe; the
# cache is tiny (a few entries) because only a couple of (graph, batch)
# shapes are live at once.
_UNION_CACHE: OrderedDict[tuple[str, int], StaticGraph] = OrderedDict()
_UNION_CACHE_LOCK = threading.Lock()
_UNION_CACHE_CAP = 4
_union_cache_stats = {"hits": 0, "misses": 0}


def disjoint_power(graph: StaticGraph, copies: int) -> StaticGraph:
    """The disjoint union of ``copies`` relabeled copies of *graph*.

    Copy ``c`` occupies vertices ``[c*n, (c+1)*n)``.  Results are
    memoized by ``(graph.content_hash(), copies)`` so repeated chunks of
    the same batch size reuse one union (and its cached CSR).
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if copies == 1:
        return graph
    key = (graph.content_hash(), copies)
    prof = current_profiler()
    with _UNION_CACHE_LOCK:
        union = _UNION_CACHE.get(key)
        if union is not None:
            _UNION_CACHE.move_to_end(key)
            _union_cache_stats["hits"] += 1
            if prof is not None:
                prof.count("batched.union_cache_hit")
            return union
    n, e = graph.n, graph.edges
    offsets = (np.arange(copies, dtype=np.int64) * n)[:, None, None]
    tiled = (e[None, :, :] + offsets).reshape(-1, 2)
    union = StaticGraph(n=n * copies, edges=tiled)
    with _UNION_CACHE_LOCK:
        _union_cache_stats["misses"] += 1
        _UNION_CACHE[key] = union
        _UNION_CACHE.move_to_end(key)
        while len(_UNION_CACHE) > _UNION_CACHE_CAP:
            _UNION_CACHE.popitem(last=False)
    if prof is not None:
        prof.count("batched.union_cache_miss")
    return union


def disjoint_power_cache_info() -> dict[str, int]:
    """Memo statistics: ``{"hits", "misses", "size", "cap"}``."""
    with _UNION_CACHE_LOCK:
        return {
            "hits": _union_cache_stats["hits"],
            "misses": _union_cache_stats["misses"],
            "size": len(_UNION_CACHE),
            "cap": _UNION_CACHE_CAP,
        }


def disjoint_power_cache_clear() -> None:
    """Drop all memoized unions and reset statistics."""
    with _UNION_CACHE_LOCK:
        _UNION_CACHE.clear()
        _union_cache_stats["hits"] = 0
        _union_cache_stats["misses"] = 0


def _fold_counts(member: np.ndarray, copies: int, n: int) -> np.ndarray:
    """Sum per-copy membership into per-base-vertex join counts."""
    return member.reshape(copies, n).sum(axis=0).astype(np.int64)


def batched_luby_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
) -> JoinEstimate:
    """Luby (priority variant) join counts over *trials* runs.

    Statistically equivalent to :func:`repro.analysis.montecarlo.run_trials`
    with :class:`~repro.fast.luby.FastLuby` (different stream layout, same
    distribution), several times faster on small/medium graphs.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = generator_from(seed)
    n = graph.n
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = luby_sweep(union, rng)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


def batched_fair_tree_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
    gamma_c: float = 3.0,
    gamma: int | None = None,
) -> JoinEstimate:
    """FAIRTREE join counts over *trials* runs (batched).

    ``γ`` is pinned to the *base* graph's size so the batched algorithm is
    parameter-identical to the per-trial one.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = generator_from(seed)
    n = graph.n
    g_eff = gamma if gamma is not None else default_gamma(n, gamma_c)
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = fair_tree_run(union, rng, gamma=g_eff)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


def batched_fair_rooted_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
    parent: np.ndarray | None = None,
) -> JoinEstimate:
    """FAIRROOTED join counts over *trials* runs (batched).

    *parent* is the base graph's parent array (BFS rooting from vertex 0
    when omitted, matching :class:`~repro.fast.fair_rooted.FastFairRooted`).
    Copies get the same rooting shifted by their offset, and the
    Cole–Vishkin stage is pinned to the base graph's size (initial id
    palette and reduction count) so each copy runs exactly one trial.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    from ..graphs.graph import RootedTree
    from .fair_rooted import fair_rooted_run

    rng = generator_from(seed)
    n = graph.n
    if parent is None:
        parent = RootedTree.from_graph(graph).parent
    parent = np.asarray(parent, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
            if copies == 1:
                union_parent = parent
            else:
                offsets = (np.arange(copies, dtype=np.int64) * n)[:, None]
                tiled = np.broadcast_to(parent, (copies, n))
                union_parent = np.where(
                    tiled >= 0, tiled + offsets, np.int64(-1)
                ).reshape(-1)
        with phase("batched.sweep"):
            member, _ = fair_rooted_run(union, union_parent, rng, base_n=n)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


def batched_fair_bipart_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
    gamma_c: float = 2.0,
    gamma: int | None = None,
    p: float = 0.5,
) -> JoinEstimate:
    """FAIRBIPART join counts over *trials* runs (batched).

    ``γ`` (the Linial–Saks radius scale) is pinned to the *base* graph's
    size, exactly as :func:`batched_fair_tree_trials` pins FAIRTREE's γ.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    from .blocks import fair_bipart_run

    rng = generator_from(seed)
    n = graph.n
    g_eff = gamma if gamma is not None else default_block_gamma(n, gamma_c)
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = fair_bipart_run(union, rng, g_eff, p=p)
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


def batched_color_mis_trials(
    graph: StaticGraph,
    trials: int,
    seed: SeedLike = None,
    batch: int = 64,
    k: int | None = None,
    coloring: str = "greedy",
    gamma_c: float = 2.0,
    gamma: int | None = None,
    p: float = 0.5,
) -> JoinEstimate:
    """COLORMIS join counts over *trials* runs (batched).

    Every size-derived parameter — γ, the palette size ``k``, the
    coloring trial budget, and (for ``coloring="arboricity"``) the
    H-partition cap — is resolved from the *base* graph and held fixed on
    the union; the arboricity bound in particular would differ on the
    union (its edge density changes), so pinning is load-bearing, not
    cosmetic.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    from .blocks import FastColorMIS, color_mis_run

    rng = generator_from(seed)
    n = graph.n
    params = FastColorMIS(
        k=k, coloring=coloring, gamma_c=gamma_c, gamma=gamma, p=p
    ).resolved_params(graph)
    counts = np.zeros(n, dtype=np.int64)
    done = 0
    while done < trials:
        copies = min(batch, trials - done)
        with phase("batched.union"):
            union = disjoint_power(graph, copies)
        with phase("batched.sweep"):
            member, _ = color_mis_run(
                union,
                rng,
                gamma=params["gamma"],
                k=params["k"],
                iterations=params["iterations"],
                coloring=coloring,
                cap=params["cap"],
                p=p,
            )
        with phase("batched.fold"):
            counts += _fold_counts(member, copies, n)
        done += copies
    return JoinEstimate(counts=counts, trials=trials)


# --------------------------------------------------------------------- #
# vector-runner registry (consumed by the estimation service)
# --------------------------------------------------------------------- #
def _luby_vector_runner(algorithm, graph, trials, seed):
    return batched_luby_trials(graph, trials, seed=seed).counts


def _fair_tree_vector_runner(algorithm, graph, trials, seed):
    return batched_fair_tree_trials(
        graph,
        trials,
        seed=seed,
        gamma_c=algorithm.gamma_c,
        gamma=algorithm.gamma,
    ).counts


def _fair_rooted_vector_runner(algorithm, graph, trials, seed):
    return batched_fair_rooted_trials(
        graph,
        trials,
        seed=seed,
        parent=algorithm._parents(graph),  # noqa: SLF001 - same package
    ).counts


def _fair_bipart_vector_runner(algorithm, graph, trials, seed):
    return batched_fair_bipart_trials(
        graph,
        trials,
        seed=seed,
        gamma_c=algorithm.gamma_c,
        gamma=algorithm.gamma,
        p=algorithm.p,
    ).counts


def _color_mis_vector_runner(algorithm, graph, trials, seed):
    return batched_color_mis_trials(
        graph,
        trials,
        seed=seed,
        k=algorithm.k,
        coloring=algorithm.coloring,
        gamma_c=algorithm.gamma_c,
        gamma=algorithm.gamma,
        p=algorithm.p,
    ).counts


def vector_runner_for(algorithm):
    """Batched (disjoint-union) runner for *algorithm*, or ``None``.

    A runner maps ``(algorithm, graph, trials, seed)`` to an int64 join-
    count vector that is statistically equivalent to per-trial execution
    but uses a different random-stream layout.  Only algorithms whose
    batched kernel is parameter-identical to the per-trial one qualify —
    all five paper algorithms do in their fast-engine form (size-derived
    parameters pinned to the base graph); the service falls back to exact
    per-trial chunks for anything else.
    """
    from .blocks import FastColorMIS, FastFairBipart
    from .fair_rooted import FastFairRooted
    from .fair_tree import FastFairTree
    from .luby import FastLuby

    if isinstance(algorithm, FastLuby) and algorithm.variant == "priority":
        return _luby_vector_runner
    if isinstance(algorithm, FastFairTree):
        return _fair_tree_vector_runner
    if isinstance(algorithm, FastFairRooted):
        return _fair_rooted_vector_runner
    if isinstance(algorithm, FastFairBipart):
        return _fair_bipart_vector_runner
    if isinstance(algorithm, FastColorMIS):
        return _color_mis_vector_runner
    return None
