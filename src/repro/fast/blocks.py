"""Vectorized Linial–Saks ``Construct_Block`` (§VI-A) and the block-based
algorithms FAIRBIPART and COLORMIS on top of it.

Leader tables are a dense ``(n, γ+1)`` int64 matrix of packed
``id·base + value`` keys (``base = 2`` for parity bits, ``base = k`` for
colors); one superround is a single ``np.maximum.at`` scatter of the
shifted table slice over the symmetric edge list — ``O(γ·m)`` work per
superround, ``O(γ²·m)`` per call, matching the faithful engine's
``O(log² n)`` round structure.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..algorithms.fair_bipart import default_block_gamma
from .engine import neighbor_any, neighbor_count
from .luby import luby_sweep

__all__ = [
    "draw_radii",
    "construct_block_fast",
    "fair_bipart_run",
    "color_mis_run",
    "color_mis_iterations",
    "FastFairBipart",
    "FastColorMIS",
]


def draw_radii(
    rng: np.random.Generator, n: int, gamma: int, p: float = 0.5
) -> np.ndarray:
    """Vectorized sampling from the truncated geometric ``π``.

    ``Pr[r >= k] = p^k`` for ``k <= γ``, so ``r = min(γ, floor(log_p U))``.
    """
    u = np.maximum(rng.random(n), 1e-300)  # guard log(0)
    raw = np.floor(np.log(u) / np.log(p))
    return np.minimum(raw.astype(np.int64), gamma)


def construct_block_fast(
    graph: StaticGraph,
    rng: np.random.Generator,
    gamma: int,
    values: np.ndarray,
    mode: str,
    value_base: int,
    p: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Construct_Block call.

    Parameters
    ----------
    values:
        Per-node candidate-leader value (random bit or random color).
    mode:
        ``"bit"`` (parity-flip per hop) or ``"color"`` (unchanged).
    value_base:
        Packing base — must exceed every value (2 for bits, k for colors).

    Returns ``(in_block, leader, leader_value)``; ``leader_value`` is -1
    outside blocks.
    """
    if mode not in ("bit", "color"):
        raise ValueError(f"unknown mode {mode!r}")
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    radii = draw_radii(rng, n, gamma, p)

    # key = id * base + value ; -1 = empty entry
    table = np.full((n, gamma + 1), -1, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    table[ids, radii] = ids * value_base + values

    if es.size:
        col_base = ed[:, None] * (gamma + 1)  # flattened row offsets
        dst_idx = (col_base + np.arange(gamma, dtype=np.int64)[None, :]).ravel()
    for _ in range(gamma):
        if es.size == 0:
            break
        src = table[es][:, 1:]  # entries at index 1..γ, shifted to 0..γ-1
        if mode == "bit":
            # flip the parity bit of non-empty entries
            flipped = (src // value_base) * value_base + (
                (value_base - 1) - (src % value_base)
            )
            src = np.where(src >= 0, flipped, np.int64(-1))
        flat = table.ravel()
        np.maximum.at(flat, dst_idx, src.ravel())
        table = flat.reshape(n, gamma + 1)

    best = table.max(axis=1)
    leader = np.where(best >= 0, best // value_base, np.int64(-1))
    # highest index holding the leader's id = true-distance entry
    is_best = (table // value_base) == leader[:, None]
    is_best &= table >= 0
    rev_top = np.argmax(is_best[:, ::-1], axis=1)
    top_idx = gamma - rev_top
    has_any = is_best.any(axis=1)
    in_block = has_any & (top_idx > 0)
    leader_value = np.where(
        in_block, table[ids, np.clip(top_idx, 0, gamma)] % value_base, np.int64(-1)
    )
    return in_block, leader, leader_value


def _finalize_fast(
    graph: StaticGraph,
    rng: np.random.Generator,
    candidate: np.ndarray,
) -> tuple[np.ndarray, dict[str, Any]]:
    """Shared tail: drop violations, cover, Luby the remainder."""
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    conflict = candidate & neighbor_any(candidate, es, ed, n)
    fixed = candidate & ~conflict
    covered = fixed | neighbor_any(fixed, es, ed, n)
    member = fixed
    luby_nodes = int((~covered).sum())
    if luby_nodes:
        extra, _ = luby_sweep(graph, rng, active=~covered)
        member = fixed | extra
    return member, {"luby_nodes": luby_nodes}


def fair_bipart_run(
    graph: StaticGraph,
    rng: np.random.Generator,
    gamma: int,
    p: float = 0.5,
) -> tuple[np.ndarray, dict[str, Any]]:
    """One FAIRBIPART execution with explicit γ; ``(membership, info)``.

    The parameter-free entry point is :meth:`FastFairBipart.run`; the
    batched runner calls this directly with γ resolved from the *base*
    graph so every disjoint-union copy behaves like a lone trial.
    """
    bits = rng.integers(0, 2, size=graph.n, dtype=np.int64)
    in_block, _, leader_val = construct_block_fast(
        graph, rng, gamma, bits, mode="bit", value_base=2, p=p
    )
    candidate = in_block & (leader_val == 1)
    member, tail_info = _finalize_fast(graph, rng, candidate)
    info = {
        "engine": "fast",
        "gamma": gamma,
        "block_fraction": float(in_block.mean()) if graph.n else 0.0,
        **tail_info,
    }
    return member, info


@register("fair_bipart_fast")
class FastFairBipart:
    """Vectorized FAIRBIPART (§VI); parameters as the faithful version."""

    def __init__(
        self,
        gamma_c: float = 2.0,
        gamma: int | None = None,
        p: float = 0.5,
        validate: bool = False,
    ) -> None:
        self.gamma_c = gamma_c
        self.gamma = gamma
        self.p = p
        self.validate = validate

    @property
    def name(self) -> str:
        return "fair_bipart_fast"

    def resolved_gamma(self, graph: StaticGraph) -> int:
        """γ this instance would use on *graph* (explicit or size-derived)."""
        return (
            self.gamma
            if self.gamma is not None
            else default_block_gamma(graph.n, self.gamma_c)
        )

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        member, info = fair_bipart_run(
            graph, rng, self.resolved_gamma(graph), p=self.p
        )
        result = MISResult(membership=member, info=info)
        if self.validate:
            result.validate(graph)
        return result


def greedy_coloring_fast(
    graph: StaticGraph,
    rng: np.random.Generator,
    iterations: int,
) -> np.ndarray:
    """Vectorized random-trial ``(deg+1)``-list coloring; -1 = uncolored."""
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    deg = graph.degrees
    colors = np.full(n, -1, dtype=np.int64)
    for _ in range(iterations):
        todo = colors < 0
        if not todo.any():
            break
        prop = rng.integers(0, deg + 1, size=n)
        prop = np.where(todo, prop, colors)
        if es.size:
            # reject: proposal equals a neighbor's color or proposal
            clash = np.zeros(n, dtype=bool)
            same = prop[es] == prop[ed]
            clash[ed[same]] = True
        else:
            clash = np.zeros(n, dtype=bool)
        colors = np.where(todo & ~clash, prop, colors)
    return colors


def arboricity_coloring_fast(
    graph: StaticGraph,
    rng: np.random.Generator,
    cap: int,
    iterations: int,
) -> np.ndarray:
    """Vectorized H-partition coloring (cap+1 colors); -1 = uncolored.

    Peels vertices of active degree <= ``cap`` into classes, then colors
    classes in reverse peel order with palette ``{0..cap}`` by random
    trials — the fast-layer counterpart of
    :class:`repro.algorithms.coloring.HPartitionColoringEngine`.
    """
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    h_class = np.full(n, -1, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    cls = 0
    while active.any():
        deg = neighbor_count(active, es, ed, n) if es.size else np.zeros(n, int)
        peel = active & (deg <= cap)
        if not peel.any():  # cap too small for this subgraph: dump the rest
            h_class[active] = cls
            break
        h_class[peel] = cls
        active &= ~peel
        cls += 1
    colors = np.full(n, -1, dtype=np.int64)
    for c in range(int(h_class.max()), -1, -1):
        in_class = h_class == c
        for _ in range(iterations):
            todo = in_class & (colors < 0)
            if not todo.any():
                break
            prop = rng.integers(0, cap + 1, size=n)
            prop = np.where(todo, prop, colors)
            clash = np.zeros(n, dtype=bool)
            if es.size:
                both = (prop[es] >= 0) & (prop[ed] >= 0)
                same = (prop[es] == prop[ed]) & both
                clash[ed[same]] = True
            colors = np.where(todo & ~clash, prop, colors)
    return colors


def color_mis_iterations(n: int) -> int:
    """Coloring trial budget used by COLORMIS for an ``n``-vertex graph."""
    return 4 * (int(np.log2(max(n, 2))) + 4)


def color_mis_run(
    graph: StaticGraph,
    rng: np.random.Generator,
    gamma: int,
    k: int,
    iterations: int,
    coloring: str = "greedy",
    cap: int | None = None,
    p: float = 0.5,
) -> tuple[np.ndarray, dict[str, Any]]:
    """One COLORMIS execution with every parameter explicit.

    ``(membership, info)``.  ``cap`` is required for
    ``coloring="arboricity"``.  The batched runner resolves γ, k,
    iteration budget, and cap from the *base* graph (via
    :meth:`FastColorMIS.resolved_params`) so disjoint-union copies run
    with identical parameters to lone trials.
    """
    n = graph.n
    if coloring == "greedy":
        colors = greedy_coloring_fast(graph, rng, iterations)
    elif coloring == "arboricity":
        if cap is None:
            raise ValueError("arboricity coloring requires an explicit cap")
        colors = arboricity_coloring_fast(graph, rng, cap, iterations)
    else:
        raise ValueError(f"unknown coloring kind {coloring!r}")
    k = max(1, k)
    chosen = rng.integers(0, k, size=n, dtype=np.int64)
    in_block, _, leader_val = construct_block_fast(
        graph, rng, gamma, chosen, mode="color", value_base=k, p=p
    )
    candidate = in_block & (colors >= 0) & (leader_val == colors)
    member, tail_info = _finalize_fast(graph, rng, candidate)
    info = {
        "engine": "fast",
        "gamma": gamma,
        "k": k,
        "uncolored": int((colors < 0).sum()),
        **tail_info,
    }
    return member, info


@register("color_mis_fast")
class FastColorMIS:
    """Vectorized COLORMIS (§VII).

    ``coloring="greedy"`` (default) uses the ``Δ+1`` trial coloring;
    ``coloring="arboricity"`` uses the H-partition coloring whose palette
    depends on arboricity, not maximum degree — the Corollary 18 route to
    constant fairness on planar graphs.
    """

    def __init__(
        self,
        k: int | None = None,
        coloring: str = "greedy",
        gamma_c: float = 2.0,
        gamma: int | None = None,
        p: float = 0.5,
        validate: bool = False,
    ) -> None:
        if coloring not in ("greedy", "arboricity"):
            raise ValueError(f"unknown coloring kind {coloring!r}")
        self.k = k
        self.coloring = coloring
        self.gamma_c = gamma_c
        self.gamma = gamma
        self.p = p
        self.validate = validate

    @property
    def name(self) -> str:
        return (
            "color_mis_fast"
            if self.coloring == "greedy"
            else "color_mis_arb_fast"
        )

    def resolved_params(self, graph: StaticGraph) -> dict[str, Any]:
        """Size-derived parameters this instance would use on *graph*.

        Returns ``{"gamma", "k", "iterations", "cap"}`` (``cap`` is
        ``None`` for the greedy coloring).  All of γ, the palette size k,
        the coloring trial budget, and the arboricity cap depend on the
        input graph's size/structure, so the batched runner must resolve
        them from the base graph rather than the disjoint union.
        """
        gamma = (
            self.gamma
            if self.gamma is not None
            else default_block_gamma(graph.n, self.gamma_c)
        )
        iterations = color_mis_iterations(graph.n)
        if self.coloring == "greedy":
            cap = None
            k = self.k if self.k is not None else graph.max_degree + 1
        else:
            from ..graphs.properties import arboricity_upper_bound

            cap = max(1, int(2.5 * arboricity_upper_bound(graph)))
            k = self.k if self.k is not None else cap + 1
        return {"gamma": gamma, "k": max(1, k), "iterations": iterations, "cap": cap}

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        params = self.resolved_params(graph)
        member, info = color_mis_run(
            graph,
            rng,
            gamma=params["gamma"],
            k=params["k"],
            iterations=params["iterations"],
            coloring=self.coloring,
            cap=params["cap"],
            p=self.p,
        )
        result = MISResult(membership=member, info=info)
        if self.validate:
            result.validate(graph)
        return result
