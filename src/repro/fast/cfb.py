"""Vectorized CNTRLFAIRBIPART (§V-A) — round-exact numpy emulation.

Reproduces the faithful engine's semantics per round:

* ``γ`` iterations of max-ID flooding over the call's edge set (election);
* ``γ`` iterations of BFS label propagation from self-elected leaders,
  where a node only accepts labels travelling under *its own* elected
  leader's ID (the failure-mode guard of the faithful code);
* join rule ``level + b_leader ≡ 0 (mod 2)``; isolated leaders always join.

Each iteration is one ``O(m)`` scatter, so a full call costs ``O(γ·m)``
numpy work regardless of how many components the masked edge set has —
this is what lets FAIRTREE run 10⁴ Monte-Carlo trials on the paper's
trees.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import StaticGraph
from ..obs.profile import phase
from .engine import neighbor_count

__all__ = ["cfb_fast"]


def cfb_fast(
    graph: StaticGraph,
    rng: np.random.Generator,
    d_hat: int,
    active: np.ndarray,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """One CNTRLFAIRBIPART call; returns the joined mask.

    Parameters
    ----------
    d_hat:
        The ``D̂`` (= γ) round budget for both flooding phases.
    active:
        Participating vertices.
    edge_mask:
        Usable edges (aligned with ``graph.edge_src``); automatically
        intersected with "both endpoints active".
    """
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    emask = active[es] & active[ed]
    if edge_mask is not None:
        emask = emask & edge_mask
    ces, ced = es[emask], ed[emask]

    # -- leader election: d_hat rounds of max-ID flooding ------------------- #
    with phase("cfb.election"):
        ids = np.arange(n, dtype=np.int64)
        max_seen = np.where(active, ids, np.int64(-1))
        for _ in range(d_hat):
            prev = max_seen
            max_seen = prev.copy()
            if ces.size:
                np.maximum.at(max_seen, ced, prev[ces])
        leader = max_seen
        is_leader = active & (leader == ids)

    # -- every node draws a bit; only self-elected leaders' bits are used --- #
    bits = rng.integers(0, 2, size=n, dtype=np.int64)

    # -- parity BFS from leaders, origin-checked ----------------------------- #
    with phase("cfb.bfs"):
        level = np.full(n, -1, dtype=np.int64)
        level[is_leader] = 0
        for _ in range(d_hat):
            if ces.size == 0:
                break
            offer = (
                (level[ces] >= 0) & (level[ced] < 0) & (leader[ces] == leader[ced])
            )
            if not offer.any():
                break
            level[ced[offer]] = level[ces[offer]] + 1

    reached = active & (level >= 0)
    b_leader = bits[np.where(leader >= 0, leader, 0)]
    joined = reached & ((level + b_leader) % 2 == 0)

    # Lemma 7 special case: a leader with no usable neighbors always joins.
    if ces.size:
        peer_count = neighbor_count(active, es, ed, n, edge_mask=emask)
    else:
        peer_count = np.zeros(n, dtype=np.int64)
    joined |= is_leader & (peer_count == 0)
    return joined
