"""Shared vectorized primitives for the fast engines (substrate S14).

Per the HPC guides, every per-round operation is expressed as a scatter
over the symmetric edge list (``np.maximum.at`` / ``np.bincount``) instead
of per-vertex Python loops — one ``O(m)`` numpy kernel per round instead
of ``O(n)`` interpreter iterations.

All helpers take the symmetric edge arrays ``es → ed`` (every undirected
edge appears in both directions) and an optional boolean ``edge_mask``
aligned with them, so staged algorithms can restrict communication to
"uncut" or "both endpoints active" edges without rebuilding structure.
"""

from __future__ import annotations

import numpy as np

from ..obs.profile import current_profiler

__all__ = [
    "neighbor_any",
    "neighbor_max",
    "neighbor_count",
    "edge_both",
    "priority_keys",
]


def neighbor_any(
    mask: np.ndarray,
    es: np.ndarray,
    ed: np.ndarray,
    n: int,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """``out[v] = any(mask[u] for u ~ v)`` over (optionally masked) edges."""
    prof = current_profiler()
    if prof is not None:
        prof.count("engine.neighbor_any")
    out = np.zeros(n, dtype=bool)
    if es.size == 0:
        return out
    hit = mask[es]
    if edge_mask is not None:
        hit = hit & edge_mask
    out[ed[hit]] = True
    return out


def neighbor_max(
    values: np.ndarray,
    es: np.ndarray,
    ed: np.ndarray,
    n: int,
    edge_mask: np.ndarray | None = None,
    fill: int = -1,
) -> np.ndarray:
    """``out[v] = max(values[u] for u ~ v)`` (``fill`` when no neighbor)."""
    prof = current_profiler()
    if prof is not None:
        prof.count("engine.neighbor_max")
    out = np.full(n, fill, dtype=values.dtype)
    if es.size == 0:
        return out
    if edge_mask is not None:
        np.maximum.at(out, ed[edge_mask], values[es[edge_mask]])
    else:
        np.maximum.at(out, ed, values[es])
    return out


def neighbor_count(
    mask: np.ndarray,
    es: np.ndarray,
    ed: np.ndarray,
    n: int,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """``out[v] = #{u ~ v : mask[u]}`` over (optionally masked) edges."""
    prof = current_profiler()
    if prof is not None:
        prof.count("engine.neighbor_count")
    if es.size == 0:
        return np.zeros(n, dtype=np.int64)
    hit = mask[es]
    if edge_mask is not None:
        hit = hit & edge_mask
    return np.bincount(ed[hit], minlength=n).astype(np.int64)


def edge_both(
    mask: np.ndarray, es: np.ndarray, ed: np.ndarray
) -> np.ndarray:
    """Edge mask selecting edges with *both* endpoints in ``mask``."""
    if es.size == 0:
        return np.zeros(0, dtype=bool)
    return mask[es] & mask[ed]


#: Bits reserved for the random part of a tie-broken priority key.
PRIORITY_BITS = 38


def priority_keys(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random priorities with ID tie-break packed into one int64 key.

    ``key = (random << ceil(log2 n)) | id`` reproduces the faithful
    engine's lexicographic ``(priority, id)`` comparison in a single
    vectorized ``>``; supports ``n`` up to ``2^24``.
    """
    id_bits = max(1, int(n - 1).bit_length())
    if id_bits > 24:
        raise ValueError("fast engine supports n < 2^24")
    rand = rng.integers(0, 1 << PRIORITY_BITS, size=n, dtype=np.int64)
    return (rand << id_bits) | np.arange(n, dtype=np.int64)
