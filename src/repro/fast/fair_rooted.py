"""Vectorized FAIRROOTED (§IV) + vectorized Cole–Vishkin.

Stage 1 is two vectorized coin arrays; stage 2 runs a fully vectorized
Cole–Vishkin reduction (the lowest-differing-bit computation is exact in
float64 ``log2`` because the isolated bit is a power of two ≤ 2⁶³) and the
six-phase color-class sweep over the uncovered subforest.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import RootedTree, StaticGraph
from ..algorithms.cole_vishkin import cv_reduction_iterations
from .engine import edge_both, neighbor_any

__all__ = [
    "FastFairRooted",
    "FastColeVishkin",
    "fair_rooted_run",
    "cole_vishkin_colors",
]


def cole_vishkin_colors(
    n: int,
    parent: np.ndarray,
    participating: np.ndarray,
    init_colors: np.ndarray | None = None,
    iterations: int | None = None,
) -> np.ndarray:
    """Vectorized CV color reduction to {0..5} over a rooted subforest.

    ``parent[v]`` must point to a participating parent or be ``-1``;
    non-participants keep color ``-1``.  ``init_colors`` / ``iterations``
    override the defaults (unique ids ``0..n-1``; the reduction count for
    an ``n``-id palette) — the disjoint-union batched runner pins both to
    the *base* graph so every copy reduces exactly as a lone trial would.
    """
    if init_colors is None:
        colors = np.arange(n, dtype=np.int64)
    else:
        colors = np.asarray(init_colors, dtype=np.int64).copy()
    iters = (
        iterations
        if iterations is not None
        else cv_reduction_iterations(max(n - 1, 1))
    )
    has_parent = participating & (parent >= 0)
    roots = participating & (parent < 0)
    safe_parent = np.where(has_parent, parent, 0)
    for _ in range(iters):
        pc = colors[safe_parent]
        # roots fabricate a differing virtual parent color
        pc = np.where(roots, np.where(colors == 0, 1, 0), pc)
        diff = colors ^ pc
        lsb = diff & -diff
        # exact for powers of two up to 2^62
        idx = np.where(diff != 0, np.log2(np.maximum(lsb, 1)).astype(np.int64), 0)
        bit = (colors >> idx) & 1
        new = 2 * idx + bit
        colors = np.where(participating, new, colors)
    out = np.where(participating, colors, -1)
    return out


def fair_rooted_run(
    graph: StaticGraph,
    parent: np.ndarray,
    rng: np.random.Generator,
    base_n: int | None = None,
) -> tuple[np.ndarray, dict[str, Any]]:
    """One FAIRROOTED execution; returns ``(membership, info)``.

    ``base_n`` pins the Cole–Vishkin size-derived parameters (initial id
    palette and reduction iteration count) to a base graph of which this
    graph is a disjoint union of copies — each copy then runs stage 2
    exactly as an isolated trial on the base graph would.
    """
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    cv_init: np.ndarray | None = None
    cv_iters: int | None = None
    if base_n is not None:
        if base_n <= 0 or n % base_n != 0:
            raise ValueError(
                f"base_n={base_n} does not evenly divide union size n={n}"
            )
        cv_init = np.tile(np.arange(base_n, dtype=np.int64), n // base_n)
        cv_iters = cv_reduction_iterations(max(base_n - 1, 1))

    # -- Stage 1: random tags ------------------------------------------------ #
    tags = rng.integers(0, 2, size=n, dtype=np.int64)
    virtual = rng.integers(0, 2, size=n, dtype=np.int64)  # roots' sentinels
    parent_tag = np.where(parent >= 0, tags[np.where(parent >= 0, parent, 0)], virtual)
    i1 = (tags == 0) & (parent_tag == 1)
    covered = i1 | neighbor_any(i1, es, ed, n)

    # -- Stage 2: Cole–Vishkin MIS over the uncovered subforest --------------- #
    resid = ~covered
    resid_parent = np.where(
        (parent >= 0) & resid & resid[np.where(parent >= 0, parent, 0)],
        parent,
        -1,
    )
    colors = cole_vishkin_colors(
        n, resid_parent, resid, init_colors=cv_init, iterations=cv_iters
    )
    member = i1.copy()
    cv_covered = np.zeros(n, dtype=bool)
    emask = edge_both(resid, es, ed)
    for c in range(6):
        join = resid & (colors == c) & ~cv_covered & ~member
        member |= join
        cv_covered |= neighbor_any(join, es, ed, n, edge_mask=emask)
    info = {"engine": "fast", "stage1_size": int(i1.sum())}
    return member, info


@register("cole_vishkin_fast")
class FastColeVishkin:
    """Vectorized Cole–Vishkin MIS for rooted trees/forests.

    Deterministic given the rooting/IDs — its main uses are as the
    FAIRROOTED stage-2 subroutine and, wrapped in
    :class:`~repro.algorithms.random_ids.RandomizedIDs`, as the §II
    "deterministic algorithm under random IDs" study subject.
    """

    def __init__(self, tree: RootedTree | None = None, validate: bool = False) -> None:
        self.tree = tree
        self.validate = validate
        self._cache: tuple[StaticGraph, np.ndarray] | None = None

    @property
    def name(self) -> str:
        return "cole_vishkin_fast"

    def _parents(self, graph: StaticGraph) -> np.ndarray:
        if self.tree is not None:
            return self.tree.parent
        if self._cache is not None and self._cache[0] is graph:
            return self._cache[1]
        parent = RootedTree.from_graph(graph).parent
        self._cache = (graph, parent)
        return parent

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        n = graph.n
        parent = self._parents(graph)
        colors = cole_vishkin_colors(n, parent, np.ones(n, dtype=bool))
        es, ed = graph.edge_src, graph.edge_dst
        member = np.zeros(n, dtype=bool)
        covered = np.zeros(n, dtype=bool)
        for c in range(6):
            join = (colors == c) & ~covered & ~member
            member |= join
            covered |= neighbor_any(join, es, ed, n)
        result = MISResult(membership=member, info={"engine": "fast"})
        if self.validate:
            result.validate(graph)
        return result


@register("fair_rooted_fast")
class FastFairRooted:
    """Vectorized FAIRROOTED as a :class:`~repro.core.result.MISAlgorithm`.

    Accepts an explicit :class:`RootedTree` or roots the input tree
    deterministically from vertex 0 (cached per graph).
    """

    def __init__(self, tree: RootedTree | None = None, validate: bool = False) -> None:
        self.tree = tree
        self.validate = validate
        self._cache: tuple[StaticGraph, np.ndarray] | None = None

    @property
    def name(self) -> str:
        return "fair_rooted_fast"

    def _parents(self, graph: StaticGraph) -> np.ndarray:
        if self.tree is not None:
            return self.tree.parent
        if self._cache is not None and self._cache[0] is graph:
            return self._cache[1]
        parent = RootedTree.from_graph(graph).parent
        self._cache = (graph, parent)
        return parent

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        member, info = fair_rooted_run(graph, self._parents(graph), rng)
        result = MISResult(membership=member, info=info)
        if self.validate:
            result.validate(graph)
        return result
