"""Vectorized FAIRTREE (§V) — the Table I / Figure 4 evaluation engine.

Mirrors the four-stage structure of :mod:`repro.algorithms.fair_tree`
exactly, with every stage expressed as masked :func:`~repro.fast.cfb.cfb_fast`
calls and ``O(m)`` scatters:

* Stage 1 — per-edge cut coins, CFB over ``cut = 0`` edges → ``I₁``;
* Stage 2 — CFB over the subgraph induced by ``I₁`` (resolve) → ``I₂``;
* Stage 3 — CFB over nodes uncovered by ``I₂`` (maximalize) → ``I₃``;
* Stage 4 — drop independence violations, vectorized Luby on any
  remaining uncovered nodes (the ε ≤ 1/n fallback path).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..algorithms.fair_tree import default_gamma
from ..obs.profile import phase
from .cfb import cfb_fast
from .engine import neighbor_any
from .luby import luby_sweep

__all__ = ["FastFairTree", "fair_tree_run"]


def fair_tree_run(
    graph: StaticGraph,
    rng: np.random.Generator,
    gamma: int,
) -> tuple[np.ndarray, dict[str, Any]]:
    """One FAIRTREE execution; returns ``(membership, info)``."""
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    m = graph.m
    all_nodes = np.ones(n, dtype=bool)

    # -- Stage 1: cut + CFB on uncut edges ---------------------------------- #
    with phase("fair_tree.stage1_cut"):
        cut_undirected = rng.integers(0, 2, size=m, dtype=np.int64)
        cut = np.concatenate([cut_undirected, cut_undirected])  # symmetric order
        i1 = cfb_fast(graph, rng, gamma, active=all_nodes, edge_mask=cut == 0)

    # -- Stage 2: resolve conflicts among I₁ -------------------------------- #
    with phase("fair_tree.stage2_resolve"):
        joined2 = cfb_fast(graph, rng, gamma, active=i1)
        i2 = i1 & joined2

    # -- Stage 3: maximalize over uncovered nodes ---------------------------- #
    with phase("fair_tree.stage3_maximalize"):
        covered2 = i2 | neighbor_any(i2, es, ed, n)
        uncovered = ~covered2
        joined3 = cfb_fast(graph, rng, gamma, active=uncovered)
        i3 = i2 | (uncovered & joined3)

    # -- Stage 4: fix + fallback --------------------------------------------- #
    with phase("fair_tree.stage4_fallback"):
        conflict = neighbor_any(i3, es, ed, n) & i3
        fixed = i3 & ~conflict
        covered = fixed | neighbor_any(fixed, es, ed, n)
        fallback_nodes = int((~covered).sum())
        member = fixed
        if fallback_nodes:
            extra, _ = luby_sweep(graph, rng, active=~covered)
            member = fixed | extra
    info = {
        "engine": "fast",
        "gamma": gamma,
        "fallback_nodes": fallback_nodes,
        "fallback_used": fallback_nodes > 0,
    }
    return member, info


@register("fair_tree_fast")
class FastFairTree:
    """Vectorized FAIRTREE as a :class:`~repro.core.result.MISAlgorithm`.

    Same parameters as :class:`repro.algorithms.fair_tree.FairTree`.
    """

    def __init__(
        self,
        gamma_c: float = 3.0,
        gamma: int | None = None,
        validate: bool = False,
    ) -> None:
        self.gamma_c = gamma_c
        self.gamma = gamma
        self.validate = validate

    @property
    def name(self) -> str:
        return "fair_tree_fast"

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        gamma = (
            self.gamma
            if self.gamma is not None
            else default_gamma(graph.n, self.gamma_c)
        )
        member, info = fair_tree_run(graph, rng, gamma)
        result = MISResult(membership=member, info=info)
        if self.validate:
            result.validate(graph)
        return result
