"""Vectorized Luby engines — one ``O(m)`` numpy kernel per round.

Distributionally identical to the faithful node-process variants in
:mod:`repro.algorithms.luby` (each iteration the local maxima of fresh
random priorities join; covered nodes retire), but ~10³× faster, which is
what makes the paper's 10,000-trial evaluation (Table I / Figure 4)
practical in pure Python.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ..core.registry import register
from ..core.result import MISResult
from ..graphs.graph import StaticGraph
from ..obs.profile import current_profiler
from .engine import edge_both, neighbor_any, neighbor_count, neighbor_max, priority_keys

__all__ = ["luby_sweep", "luby_degree_sweep", "FastLuby"]


def luby_sweep(
    graph: StaticGraph,
    rng: np.random.Generator,
    active: np.ndarray | None = None,
    edge_mask: np.ndarray | None = None,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, int]:
    """Run priority-variant Luby over the ``active`` subgraph.

    Returns ``(membership, iterations)``.  ``active`` and ``edge_mask``
    let host algorithms (FAIRTREE's fallback) restrict the sweep.
    """
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    live = np.ones(n, dtype=bool) if active is None else active.copy()
    member = np.zeros(n, dtype=bool)
    if max_iterations is None:
        max_iterations = 8 * (int(np.log2(max(n, 2))) + 4)
    prof = current_profiler()  # hoisted: one contextvar read per sweep
    # Round timings accumulate in locals and flush once per sweep
    # (record_rounds), keeping the in-loop cost to two perf_counter reads.
    round_total = 0.0
    round_max = 0.0
    iterations = 0
    while live.any():
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise RuntimeError("Luby failed to terminate within the budget")
        started = time.perf_counter() if prof is not None else 0.0
        keys = priority_keys(rng, n)
        emask = edge_both(live, es, ed)
        if edge_mask is not None:
            emask &= edge_mask
        best = neighbor_max(keys, es, ed, n, edge_mask=emask)
        winners = live & (keys > best)  # includes isolated actives (best=-1)
        member |= winners
        covered = neighbor_any(winners, es, ed, n, edge_mask=emask)
        live &= ~winners & ~covered
        if prof is not None:
            duration = time.perf_counter() - started
            round_total += duration
            if duration > round_max:
                round_max = duration
    if prof is not None and iterations:
        prof.record_rounds("luby.sweep", iterations, round_total, round_max)
    return member, iterations


def luby_degree_sweep(
    graph: StaticGraph,
    rng: np.random.Generator,
    active: np.ndarray | None = None,
    edge_mask: np.ndarray | None = None,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, int]:
    """Run the ``1/(2d)`` marking variant over the ``active`` subgraph."""
    n = graph.n
    es, ed = graph.edge_src, graph.edge_dst
    live = np.ones(n, dtype=bool) if active is None else active.copy()
    member = np.zeros(n, dtype=bool)
    if max_iterations is None:
        max_iterations = 64 * (int(np.log2(max(n, 2))) + 4)
    id_bits = max(1, int(n - 1).bit_length())
    ids = np.arange(n, dtype=np.int64)
    prof = current_profiler()
    round_total = 0.0
    round_max = 0.0
    iterations = 0
    while live.any():
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise RuntimeError("Luby(degree) failed to terminate within budget")
        started = time.perf_counter() if prof is not None else 0.0
        emask = edge_both(live, es, ed)
        if edge_mask is not None:
            emask &= edge_mask
        deg = neighbor_count(live, es, ed, n, edge_mask=emask)
        isolated = live & (deg == 0)
        member |= isolated
        live &= ~isolated
        if not live.any():
            if prof is not None:
                duration = time.perf_counter() - started
                round_total += duration
                if duration > round_max:
                    round_max = duration
            break
        prob = np.zeros(n)
        prob[live] = 1.0 / (2.0 * deg[live])
        marked = live & (rng.random(n) < prob)
        keys = np.where(marked, (deg << id_bits) | ids, -1)
        best = neighbor_max(keys, es, ed, n, edge_mask=emask)
        keep = marked & (keys > best)
        member |= keep
        covered = neighbor_any(keep, es, ed, n, edge_mask=emask)
        live &= ~keep & ~covered
        if prof is not None:
            duration = time.perf_counter() - started
            round_total += duration
            if duration > round_max:
                round_max = duration
    if prof is not None and iterations:
        prof.record_rounds(
            "luby.degree_sweep", iterations, round_total, round_max
        )
    return member, iterations


@register("luby_fast")
class FastLuby:
    """Vectorized Luby as a :class:`~repro.core.result.MISAlgorithm`."""

    def __init__(self, variant: str = "priority", validate: bool = False) -> None:
        if variant not in ("priority", "degree"):
            raise ValueError(f"unknown Luby variant {variant!r}")
        self.variant = variant
        self.validate = validate

    @property
    def name(self) -> str:
        return "luby_fast" if self.variant == "priority" else "luby_degree_fast"

    def run(self, graph: StaticGraph, rng: np.random.Generator) -> MISResult:
        sweep = luby_sweep if self.variant == "priority" else luby_degree_sweep
        member, iterations = sweep(graph, rng)
        result = MISResult(
            membership=member, info={"iterations": iterations, "engine": "fast"}
        )
        if self.validate:
            result.validate(graph)
        return result
