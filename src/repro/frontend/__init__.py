"""Sharded async network front end for the estimation service.

See ``docs/SERVICE.md`` ("Network deployment") for the model: an
asyncio TCP/HTTP acceptor routes the existing v1/v2 JSON line protocol
across N ``serve`` shard subprocesses by rendezvous-hashing the graph
spec, with a peak-hold admission controller shedding load before it
can stall the event loop.
"""

from .admission import (
    AdmissionController,
    LastWindowEstimator,
    PeakHoldEstimator,
    TokenBucket,
)
from .loadgen import LoadReport, run_loadgen
from .protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERROR_CODES,
    ParsedLine,
    error_payload,
    parse_request_line,
)
from .routing import RendezvousRouter, routing_key
from .server import Frontend, FrontendConfig, run_http_server, run_tcp_server
from .shards import ShardClient, ShardUnavailable, shard_argv

__all__ = [
    "AdmissionController",
    "DEFAULT_MAX_LINE_BYTES",
    "ERROR_CODES",
    "Frontend",
    "FrontendConfig",
    "LastWindowEstimator",
    "LoadReport",
    "ParsedLine",
    "PeakHoldEstimator",
    "RendezvousRouter",
    "ShardClient",
    "ShardUnavailable",
    "TokenBucket",
    "error_payload",
    "parse_request_line",
    "routing_key",
    "run_http_server",
    "run_loadgen",
    "run_tcp_server",
    "shard_argv",
]
