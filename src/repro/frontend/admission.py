"""Adaptive admission control for the sharded front end.

The front end must keep serving within its latency SLO while arbitrary
clients pour requests at it.  Three cooperating pieces live here:

:class:`PeakHoldEstimator`
    The load signal the throttle trusts.  It **remembers the worst load
    seen and decays it slowly** (exponential, configurable half-life)
    instead of averaging a recent window.  Under bursty traffic a
    last-window estimator *bounces*: each quiet gap makes it forget the
    burst, admit everything, get overrun, then slam shut — an admit-rate
    square wave that trashes tail latency.  The peak-hold estimate
    changes on the half-life timescale, so the admit rate stays put
    between bursts.  (:class:`LastWindowEstimator` implements the naive
    policy purely as the measuring stick for tests and benchmarks.)

:class:`AdmissionController`
    Turns the held peak into a deterministic admit/shed decision.  While
    the peak stays at or below ``shed_threshold`` everything is
    admitted; above it the admit fraction is ``shed_threshold / peak``
    (serve exactly what the worst observed load says we can afford),
    metered out by an error-diffusion credit accumulator so a 0.5
    fraction admits precisely every other request — no RNG, fully
    reproducible.

:class:`TokenBucket`
    Classic per-client rate limiting (sustained rate + burst), applied
    before admission control so one chatty client cannot eat the whole
    admit budget.

Load is expressed as *normalized queue pressure*: the routed shard's
queue depth divided by its capacity, so ``1.0`` means "the queue a shed
decision protects is exactly full".  All classes take an injectable
``clock`` (seconds, monotonic) — tests drive them deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "AdmissionController",
    "LastWindowEstimator",
    "PeakHoldEstimator",
    "TokenBucket",
]


class PeakHoldEstimator:
    """Peak-hold load estimate: remember the worst, decay slowly.

    ``observe(load)`` folds one sample in; :attr:`peak` reads the held
    maximum decayed to *now* (never below the most recent sample).  With
    ``half_life_s=30`` a burst that hit load 2.0 still reads 1.0 thirty
    seconds after it ended — the throttle keeps its guard up long after
    a windowed average has forgotten the burst entirely.
    """

    def __init__(
        self,
        half_life_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        self.half_life_s = float(half_life_s)
        self._clock = clock
        self._peak = 0.0
        self._current = 0.0
        self._held_at = clock()

    def _decayed(self, now: float) -> float:
        dt = max(0.0, now - self._held_at)
        return self._peak * 0.5 ** (dt / self.half_life_s)

    def observe(self, load: float) -> float:
        """Fold one load sample in; returns the updated held peak."""
        load = max(0.0, float(load))
        now = self._clock()
        decayed = self._decayed(now)
        self._current = load
        self._peak = max(decayed, load)
        self._held_at = now
        return self._peak

    @property
    def peak(self) -> float:
        """The held worst-case load, decayed to now."""
        return max(self._decayed(self._clock()), self._current * 0.0)

    @property
    def current(self) -> float:
        """The most recent raw sample (no hold, no decay)."""
        return self._current


class LastWindowEstimator:
    """The naive alternative: mean load over a short trailing window.

    Kept as the comparison baseline — its estimate collapses as soon as
    a burst leaves the window, which is exactly the bouncing behaviour
    the peak-hold design exists to avoid.  Not used by the front end.
    """

    def __init__(
        self,
        window_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self._clock = clock
        self._samples: list[tuple[float, float]] = []

    def observe(self, load: float) -> float:
        now = self._clock()
        self._samples.append((now, max(0.0, float(load))))
        cutoff = now - self.window_s
        self._samples = [(t, v) for t, v in self._samples if t >= cutoff]
        return self.peak

    @property
    def peak(self) -> float:
        """Mean of the in-window samples (0 when the window is empty)."""
        if not self._samples:
            return 0.0
        return sum(v for _, v in self._samples) / len(self._samples)

    @property
    def current(self) -> float:
        return self._samples[-1][1] if self._samples else 0.0


class AdmissionController:
    """Deterministic admit/shed decisions against a held load estimate.

    Any estimator with ``observe(load) / .peak / .current`` works; the
    front end uses :class:`PeakHoldEstimator`.  The admit fraction is::

        1.0                      while peak <= shed_threshold
        shed_threshold / peak    above it (floored at min_admit)

    metered by error diffusion: each decision adds the fraction to a
    credit; a request is admitted when the credit reaches 1.  A fraction
    of 1/3 therefore admits exactly every third request — deterministic,
    testable, and fair in aggregate without randomness.
    """

    def __init__(
        self,
        estimator: PeakHoldEstimator | LastWindowEstimator | None = None,
        shed_threshold: float = 0.85,
        min_admit: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < shed_threshold:
            raise ValueError("shed_threshold must be positive")
        if not 0.0 < min_admit <= 1.0:
            raise ValueError("min_admit must be in (0, 1]")
        self.estimator = (
            estimator if estimator is not None else PeakHoldEstimator(clock=clock)
        )
        self.shed_threshold = float(shed_threshold)
        self.min_admit = float(min_admit)
        self._credit = 0.0

    def observe(self, load: float) -> None:
        """Feed one normalized load sample to the estimator."""
        self.estimator.observe(load)

    @property
    def peak_load(self) -> float:
        return self.estimator.peak

    @property
    def current_load(self) -> float:
        return self.estimator.current

    def admit_fraction(self) -> float:
        """The fraction of traffic currently admitted (0–1]."""
        peak = self.estimator.peak
        if peak <= self.shed_threshold:
            return 1.0
        return max(self.min_admit, self.shed_threshold / peak)

    def admit(self, load: float | None = None) -> bool:
        """One admit/shed decision (optionally folding a sample first)."""
        if load is not None:
            self.observe(load)
        self._credit += self.admit_fraction()
        if self._credit >= 1.0:
            self._credit -= 1.0
            return True
        return False


class TokenBucket:
    """Per-client token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``allow()`` spends one token when available.  The bucket starts
    full, so a client may burst up to *burst* requests before the
    sustained rate applies.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2 * rate)
        if self.burst < 1.0:
            raise ValueError("burst must be at least 1")
        self._clock = clock
        self._tokens = self.burst
        self._refilled = clock()

    def _refill(self, now: float) -> None:
        dt = max(0.0, now - self._refilled)
        self._tokens = min(self.burst, self._tokens + dt * self.rate)
        self._refilled = now

    def allow(self) -> bool:
        """Spend one token if available; False means rate-limit the call."""
        self._refill(self._clock())
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill(self._clock())
        return self._tokens
