"""Open-loop load generation against the TCP front end.

``repro loadgen`` (and the ``frontend`` bench case) drive the front end
the way real traffic does: requests depart on a fixed-rate **open-loop**
schedule — arrival times do not wait for responses, so a slow server
faces a growing backlog exactly as it would in production (closed-loop
clients accidentally rate-limit themselves to the server's speed and
hide overload).  Responses are matched to requests by ``id``; the
report separates goodput (successful responses inside the SLO) from
sheds, rate limits, and other structured errors, and summarizes the
latency distribution of *admitted* requests — the population the SLO
is a promise about.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["LoadReport", "run_loadgen"]

_SHED_CODES = frozenset({"overloaded", "rate_limited"})


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


@dataclass
class LoadReport:
    """Outcome of one open-loop run."""

    offered: int = 0
    completed: int = 0
    ok: int = 0
    shed: int = 0
    rate_limited: int = 0
    errors: int = 0
    cached: int = 0
    duration_s: float = 0.0
    slo_ms: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    shards_seen: dict[str, int] = field(default_factory=dict)

    @property
    def goodput_rps(self) -> float:
        """Successful responses inside the SLO, per second."""
        if self.duration_s <= 0:
            return 0.0
        if not self.slo_ms:
            return self.ok / self.duration_s
        within = sum(1 for ms in self.latencies_ms if ms <= self.slo_ms)
        return within / self.duration_s

    @property
    def shed_rate(self) -> float:
        """Sheds (overloaded + rate_limited) over offered requests."""
        denied = self.shed + self.rate_limited
        return denied / self.offered if self.offered else 0.0

    def latency_ms(self, q: float) -> float:
        return _percentile(sorted(self.latencies_ms), q)

    @property
    def slo_attainment(self) -> float:
        """Fraction of successful responses inside the SLO."""
        if not self.latencies_ms or not self.slo_ms:
            return 1.0
        within = sum(1 for ms in self.latencies_ms if ms <= self.slo_ms)
        return within / len(self.latencies_ms)

    def to_json(self) -> dict[str, Any]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "ok": self.ok,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "errors": self.errors,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 4),
            "goodput_rps": round(self.goodput_rps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "slo_ms": self.slo_ms,
            "slo_attainment": round(self.slo_attainment, 4),
            "latency_p50_ms": round(self.latency_ms(0.50), 2),
            "latency_p95_ms": round(self.latency_ms(0.95), 2),
            "latency_p99_ms": round(self.latency_ms(0.99), 2),
            "shards_seen": dict(sorted(self.shards_seen.items())),
        }

    def format(self) -> str:
        j = self.to_json()
        lines = [
            f"offered {j['offered']} requests over {j['duration_s']:.2f}s "
            f"({j['offered'] / max(j['duration_s'], 1e-9):.1f} rps offered)",
            f"ok {j['ok']}  shed {j['shed']}  rate-limited "
            f"{j['rate_limited']}  errors {j['errors']}  cached {j['cached']}",
            f"goodput {j['goodput_rps']:.1f} rps  shed-rate "
            f"{100 * j['shed_rate']:.1f}%  SLO {j['slo_ms']:g} ms "
            f"(attained {100 * j['slo_attainment']:.1f}%)",
            f"latency p50/p95/p99: {j['latency_p50_ms']:.1f} / "
            f"{j['latency_p95_ms']:.1f} / {j['latency_p99_ms']:.1f} ms",
        ]
        if j["shards_seen"]:
            spread = "  ".join(
                f"shard{k}:{v}" for k, v in j["shards_seen"].items()
            )
            lines.append(f"responses by shard: {spread}")
        return "\n".join(lines)


def _classify(report: LoadReport, obj: dict[str, Any]) -> None:
    err = obj.get("error")
    if err is None:
        report.ok += 1
        if obj.get("cached"):
            report.cached += 1
        if "shard" in obj:
            key = str(obj["shard"])
            report.shards_seen[key] = report.shards_seen.get(key, 0) + 1
        return
    code = err.get("code") if isinstance(err, dict) else obj.get("code")
    if code == "overloaded":
        report.shed += 1
    elif code == "rate_limited":
        report.rate_limited += 1
    else:
        report.errors += 1


async def run_loadgen(
    host: str,
    port: int,
    requests: list[dict[str, Any]],
    *,
    rate: float,
    slo_ms: float = 250.0,
    timeout_s: float = 60.0,
) -> LoadReport:
    """Fire *requests* at *rate* req/s (open loop) and collect the report.

    Each request is stamped with a unique ``id`` (``lg-<n>``) so the
    pipelined responses — which may arrive out of order — are matched
    back to their departure times.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    reader, writer = await asyncio.open_connection(host, port)
    report = LoadReport(slo_ms=slo_ms)
    departures: dict[str, float] = {}
    done = asyncio.Event()

    async def receive() -> None:
        while len(departures) < len(requests) or report.completed < len(
            departures
        ):
            line = await reader.readline()
            if not line:
                break
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                report.errors += 1
                report.completed += 1
                continue
            rid = str(obj.get("id", ""))
            t0 = departures.get(rid)
            if t0 is not None and "error" not in obj:
                report.latencies_ms.append(
                    (time.perf_counter() - t0) * 1e3
                )
            report.completed += 1
            _classify(report, obj)
        done.set()

    receiver = asyncio.create_task(receive())
    start = time.perf_counter()
    interval = 1.0 / rate
    for i, req in enumerate(requests):
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        rid = f"lg-{i}"
        stamped = {**req, "id": rid}
        departures[rid] = time.perf_counter()
        writer.write((json.dumps(stamped) + "\n").encode())
        await writer.drain()
        report.offered += 1

    try:
        await asyncio.wait_for(done.wait(), timeout=timeout_s)
    except asyncio.TimeoutError:
        pass
    finally:
        receiver.cancel()
        try:
            await receiver
        except (asyncio.CancelledError, ConnectionError):
            pass
        report.duration_s = time.perf_counter() - start
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return report
