"""Wire-protocol line handling shared by ``serve`` and the front end.

The estimation service speaks newline-delimited JSON — one request
object per line, one response object per line (``docs/SERVICE.md``).
This module is the single place that turns a raw line into either an
:class:`~repro.service.requests.EstimateRequest` or a **structured
per-line error object**, so the stdin ``serve`` loop, the shard
processes, and the network front end all fail identically:

* malformed JSON            → ``code="bad_json"``
* not a JSON object         → ``code="bad_json"``
* unknown ``"v"`` envelope  → ``code="unsupported_version"``
* oversized line            → ``code="line_too_large"``
* schema/spec violations    → ``code="bad_request"``

Error objects follow the request's protocol generation.  v1 keeps the
historical shape (``error`` is the message string, so existing
``"error" in obj`` checks keep working) with the machine-readable
``code`` beside it; v2 nests both under ``error``::

    {"error": "unknown graph kind 'donut'", "code": "bad_request", "line": 3}
    {"v": 2, "error": {"code": "bad_request", "message": "..."}, "line": 3}

The front end adds two more codes with the same shapes:
``rate_limited`` and ``overloaded`` (see :mod:`repro.frontend.server`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..service.requests import PROTOCOL_VERSIONS, EstimateRequest

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "ERROR_CODES",
    "ParsedLine",
    "error_payload",
    "parse_request_line",
]

#: Default cap on one request line.  A request is a spec string plus a
#: few scalars — far under 1 KiB — so 1 MiB is pure headroom against a
#: client streaming garbage into the event loop.
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: Machine-readable error codes emitted by the service planes.
ERROR_CODES: tuple[str, ...] = (
    "bad_json",
    "unsupported_version",
    "line_too_large",
    "bad_request",
    "internal",
    "rate_limited",
    "overloaded",
    "shard_unavailable",
)


def error_payload(
    code: str,
    message: str,
    *,
    version: int = 1,
    line: int | None = None,
    request_id: str | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """One structured per-line error object in the caller's shape.

    ``version >= 2`` nests ``{"code", "message"}`` (plus any *extra*
    fields, e.g. ``retry_after_ms``) under ``error`` and stamps the v2
    envelope; v1 keeps ``error`` as the bare message string with
    ``code`` and extras as siblings.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    out: dict[str, Any]
    if version >= 2:
        out = {"v": 2, "error": {"code": code, "message": message, **extra}}
    else:
        out = {"error": message, "code": code, **extra}
    if line is not None:
        out["line"] = line
    if request_id is not None:
        out["id"] = request_id
    return out


@dataclass(frozen=True)
class ParsedLine:
    """Outcome of parsing one request line.

    Exactly one of :attr:`request` / :attr:`error` is set.  ``version``
    is the protocol generation the line claimed (1 when it could not be
    decoded at all), so callers shape follow-up errors — execution
    failures, shedding — consistently with the request.
    """

    version: int = 1
    request: EstimateRequest | None = None
    obj: Mapping[str, Any] | None = None
    error: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _request_id(obj: Any) -> str | None:
    """The line's ``id`` field when it is a usable scalar."""
    if isinstance(obj, Mapping):
        rid = obj.get("id")
        if isinstance(rid, (str, int)):
            return str(rid)
    return None


def parse_request_line(
    raw: str,
    *,
    lineno: int | None = None,
    max_bytes: int = DEFAULT_MAX_LINE_BYTES,
    default_mode: str | None = None,
) -> ParsedLine:
    """Parse one raw request line into a :class:`ParsedLine`.

    Never raises on bad input — every failure mode comes back as a
    structured :attr:`ParsedLine.error` payload ready to write to the
    client.  ``default_mode`` fills the request's executor mode when the
    line does not name one (the ``serve --mode`` override).
    """
    if max_bytes and len(raw) > max_bytes:
        # len() counts characters; JSON requests are ASCII in practice
        # and a multi-byte line is strictly longer in bytes, so this
        # never under-counts enough to matter at a 1 MiB default.
        return ParsedLine(
            error=error_payload(
                "line_too_large",
                f"request line of {len(raw)} bytes exceeds the "
                f"{max_bytes}-byte limit",
                line=lineno,
                max_bytes=max_bytes,
            )
        )
    try:
        obj = json.loads(raw)
    except json.JSONDecodeError as exc:
        return ParsedLine(
            error=error_payload("bad_json", f"malformed JSON: {exc}", line=lineno)
        )
    if not isinstance(obj, dict):
        return ParsedLine(
            error=error_payload(
                "bad_json",
                f"request must be a JSON object, got {type(obj).__name__}",
                line=lineno,
            )
        )
    rid = _request_id(obj)
    try:
        version = int(obj.get("v", 1))
    except (TypeError, ValueError):
        version = -1
    if version not in PROTOCOL_VERSIONS:
        # The sender speaks a versioned envelope we do not — answer in
        # the v2 shape so the code is machine-readable either way.
        return ParsedLine(
            version=2,
            obj=obj,
            error=error_payload(
                "unsupported_version",
                f"unsupported request protocol v={obj.get('v')!r} "
                f"(supported: {list(PROTOCOL_VERSIONS)})",
                version=2,
                line=lineno,
                request_id=rid,
                supported=list(PROTOCOL_VERSIONS),
            ),
        )
    if default_mode and default_mode != "auto" and "mode" not in obj:
        obj = {**obj, "mode": default_mode}
    try:
        request = EstimateRequest.from_json(obj)
    except (ValueError, TypeError) as exc:
        return ParsedLine(
            version=version,
            obj=obj,
            error=error_payload(
                "bad_request",
                str(exc),
                version=version,
                line=lineno,
                request_id=rid,
            ),
        )
    return ParsedLine(version=version, request=request, obj=obj)
