"""Rendezvous routing: pin each graph's traffic to one shard.

Shards coordinate only through routing — each owns its own result
cache and evidence ledger, so the warm-hit economics (``cached=true``,
``warm_new_trials=0``) survive sharding *only if* every request for a
graph lands on the same shard.  Rendezvous (highest-random-weight)
hashing gives that pinning with minimal churn: each (key, shard) pair
gets a deterministic score and the key goes to the argmax, so removing
a shard only moves the keys that lived on it.

The routing key is the **canonical graph spec** — graph generators are
deterministic, so ``GraphSpec.canonical`` is a 1:1 proxy for the
on-disk ``content_hash`` that is available *before* the graph is ever
built (the front end never constructs graphs; hashing the spec string
costs nanoseconds, hashing the adjacency would cost a build).  Requests
whose spec fails to parse hash the raw string — still deterministic,
still pinned.
"""

from __future__ import annotations

from hashlib import blake2b

from ..graphs.spec import GraphSpec

__all__ = ["RendezvousRouter", "routing_key"]


def routing_key(graph: str) -> str:
    """Canonical routing key for a graph spec string.

    Normalizes spelling variants (``tree:200`` vs ``tree:200:0``) to
    one key so they share a shard; an unparsable spec routes on its raw
    text and lets the shard produce the structured ``bad_request``.
    """
    try:
        return GraphSpec.parse(graph).canonical
    except (ValueError, TypeError):
        return str(graph)


class RendezvousRouter:
    """Highest-random-weight assignment of routing keys to shard indices."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = int(n_shards)

    def _score(self, key: str, shard: int) -> bytes:
        return blake2b(f"{key}|{shard}".encode(), digest_size=8).digest()

    def shard_for(self, graph: str) -> int:
        """The shard index that owns *graph*'s cache and evidence."""
        key = routing_key(graph)
        if self.n_shards == 1:
            return 0
        return max(range(self.n_shards), key=lambda i: self._score(key, i))
