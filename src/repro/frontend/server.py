"""The sharded network front end: TCP/HTTP in, shard pipes out.

One asyncio process accepts newline-delimited JSON over TCP (or single
requests over minimal HTTP) and fans them across N ``serve`` shard
subprocesses (:mod:`repro.frontend.shards`).  Every request runs the
same pipeline:

1. **Parse** via :func:`repro.frontend.protocol.parse_request_line` —
   malformed input never reaches a shard, it turns into a structured
   per-line error right here.
2. **Rate-limit** per client (token bucket keyed by peer address).
3. **Route** by the graph's canonical spec through rendezvous hashing
   (:mod:`repro.frontend.routing`) so one shard owns each graph's
   cache and evidence.
4. **Admit or shed** against the peak-hold load estimate
   (:mod:`repro.frontend.admission`): a full shard queue is a hard
   shed, and above the shed threshold the controller drops the
   deterministic fraction the held peak says we cannot afford —
   returning ``overloaded`` immediately instead of stalling the event
   loop behind a queue that cannot drain.
5. **Forward** the raw request line to the owning shard and relay its
   response, annotated with ``"shard": <index>`` so callers (and the
   bench warm-route gate) can observe routing stability.

Everything the admission plane decides is visible in metrics:
``frontend_admitted/shed/rate_limited_total``, per-shard queue-depth
gauges, and the admission controller's peak/current load — all flowing
through the standard registry into stats snapshots, ``repro health``,
and ``repro top``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, IO, Mapping

from ..obs.dashboard import snapshot_from_registry
from ..obs.metrics import MetricsRegistry, get_registry
from .admission import AdmissionController, PeakHoldEstimator, TokenBucket
from .protocol import DEFAULT_MAX_LINE_BYTES, error_payload, parse_request_line
from .routing import RendezvousRouter
from .shards import ShardClient, ShardUnavailable, shard_argv

__all__ = ["Frontend", "FrontendConfig", "run_tcp_server", "run_http_server"]

#: At most this many distinct clients keep a live token bucket; beyond
#: it the oldest-inserted bucket is evicted (a fresh bucket starts full,
#: so eviction can only ever be generous to a client, never unfair).
_MAX_CLIENT_BUCKETS = 4096


@dataclass
class FrontendConfig:
    """Knobs for the front end (CLI flags map 1:1 onto these)."""

    shards: int = 1
    shard_jobs: int = 1
    cache_size: int = 128
    mode: str = "auto"
    include_counts: bool = True
    shm: bool = True
    queue_limit: int = 64
    rate_limit: float = 0.0  # per-client requests/s; 0 disables
    rate_burst: float | None = None
    admission_half_life_s: float = 30.0
    shed_threshold: float = 0.85
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES
    max_restarts: int = 3
    inherit_shard_stderr: bool = True
    shard_log_level: str | None = None
    extra_shard_args: list[str] = field(default_factory=list)


def _error_code(payload: Mapping[str, Any]) -> str:
    """The machine code out of either error shape (v1 sibling, v2 nested)."""
    err = payload.get("error")
    if isinstance(err, Mapping):
        return str(err.get("code", "internal"))
    return str(payload.get("code", "internal"))


class Frontend:
    """Shard fan-out plus admission control behind one `handle_line`."""

    def __init__(
        self,
        config: FrontendConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or FrontendConfig()
        cfg = self.config
        self.registry = registry if registry is not None else get_registry()
        self.router = RendezvousRouter(cfg.shards)
        argv = shard_argv(
            jobs=cfg.shard_jobs,
            cache_size=cfg.cache_size,
            mode=cfg.mode,
            include_counts=cfg.include_counts,
            shm=cfg.shm,
            log_level=cfg.shard_log_level,
        ) + list(cfg.extra_shard_args)
        self.shards = [
            ShardClient(
                i,
                argv,
                queue_limit=cfg.queue_limit,
                max_restarts=cfg.max_restarts,
                inherit_stderr=cfg.inherit_shard_stderr,
            )
            for i in range(cfg.shards)
        ]
        self.admission = AdmissionController(
            PeakHoldEstimator(half_life_s=cfg.admission_half_life_s),
            shed_threshold=cfg.shed_threshold,
        )
        self._buckets: dict[str, TokenBucket] = {}
        self.requests_served = 0
        self._restarts_recorded = 0
        #: Set by run_tcp_server/run_http_server once the socket binds
        #: (resolves port 0 to the real ephemeral port for callers).
        self.bound_port: int | None = None

        reg = self.registry
        self._m_requests = reg.counter(
            "frontend_requests_total", "Request lines received by the front end"
        )
        self._m_admitted = reg.counter(
            "frontend_admitted_total", "Requests admitted and forwarded to a shard"
        )
        self._m_shed = reg.counter(
            "frontend_shed_total", "Requests shed by admission control"
        )
        self._m_rate_limited = reg.counter(
            "frontend_rate_limited_total", "Requests rejected by per-client rate limits"
        )
        self._m_errors = reg.counter(
            "frontend_errors_total",
            "Structured front-end errors by code",
            labelnames=("code",),
        )
        self._m_restarts = reg.counter(
            "frontend_shard_restarts_total", "Shard subprocess respawns"
        )
        self._m_depth = reg.gauge(
            "frontend_shard_queue_depth",
            "In-flight requests per shard",
            labelnames=("shard",),
        )
        self._m_saturation = reg.gauge(
            "frontend_queue_saturation",
            "Worst shard queue depth over capacity (1.0 == a queue is full)",
        )
        self._m_peak = reg.gauge(
            "frontend_admission_peak_load", "Peak-hold load estimate (decayed)"
        )
        self._m_current = reg.gauge(
            "frontend_admission_current_load", "Most recent raw load sample"
        )
        self._m_latency = reg.histogram(
            "frontend_request_latency_seconds",
            "End-to-end latency of admitted requests at the front end",
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        await asyncio.gather(*(shard.start() for shard in self.shards))

    async def close(self) -> None:
        self._record_restarts()
        await asyncio.gather(*(shard.close() for shard in self.shards))

    def _record_restarts(self) -> None:
        total = sum(s.restarts for s in self.shards)
        if total > self._restarts_recorded:
            self._m_restarts.inc(total - self._restarts_recorded)
            self._restarts_recorded = total

    # ------------------------------------------------------------------ #
    # admission plane
    # ------------------------------------------------------------------ #
    def _bucket_for(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= _MAX_CLIENT_BUCKETS:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(self.config.rate_limit, self.config.rate_burst)
            self._buckets[client] = bucket
        return bucket

    def _observe_load(self, shard: ShardClient) -> None:
        self._record_restarts()
        self.admission.observe(shard.load)
        self._m_depth.labels(shard=str(shard.index)).set(shard.depth)
        self._m_saturation.set(max(s.load for s in self.shards))
        self._m_peak.set(self.admission.peak_load)
        self._m_current.set(self.admission.current_load)

    def _fail(self, payload: dict[str, Any]) -> str:
        self._m_errors.labels(code=_error_code(payload)).inc()
        return json.dumps(payload)

    # ------------------------------------------------------------------ #
    # the request pipeline
    # ------------------------------------------------------------------ #
    async def handle_line(
        self,
        raw: str,
        *,
        client: str | None = None,
        lineno: int | None = None,
    ) -> str:
        """One request line in, one response line out (never raises)."""
        self._m_requests.inc()
        parsed = parse_request_line(
            raw, lineno=lineno, max_bytes=self.config.max_line_bytes
        )
        if not parsed.ok:
            assert parsed.error is not None
            return self._fail(parsed.error)
        request = parsed.request
        assert request is not None

        if self.config.rate_limit > 0 and client is not None:
            if not self._bucket_for(client).allow():
                self._m_rate_limited.inc()
                return self._fail(
                    error_payload(
                        "rate_limited",
                        f"client {client} exceeded "
                        f"{self.config.rate_limit:g} requests/s",
                        version=parsed.version,
                        line=lineno,
                        request_id=request.id,
                    )
                )

        shard = self.shards[self.router.shard_for(request.graph_spec or "")]
        self._observe_load(shard)
        queue_full = shard.depth >= self.config.queue_limit
        if queue_full or not self.admission.admit():
            self._m_shed.inc()
            reason = (
                f"shard {shard.index} queue is full "
                f"({shard.depth}/{self.config.queue_limit})"
                if queue_full
                else f"peak-hold load {self.admission.peak_load:.2f} exceeds "
                f"shed threshold {self.config.shed_threshold:g}"
            )
            return self._fail(
                error_payload(
                    "overloaded",
                    reason,
                    version=parsed.version,
                    line=lineno,
                    request_id=request.id,
                )
            )

        self._m_admitted.inc()
        t0 = time.perf_counter()
        try:
            response = await shard.submit(raw.strip())
        except ShardUnavailable as exc:
            return self._fail(
                error_payload(
                    "shard_unavailable",
                    str(exc),
                    version=parsed.version,
                    line=lineno,
                    request_id=request.id,
                )
            )
        finally:
            self._m_depth.labels(shard=str(shard.index)).set(shard.depth)
        self._m_latency.observe(time.perf_counter() - t0)
        self.requests_served += 1
        return self._annotate(response, shard.index)

    @staticmethod
    def _annotate(response: str, shard: int) -> str:
        """Stamp the owning shard onto the relayed response line."""
        try:
            obj = json.loads(response)
        except (json.JSONDecodeError, TypeError):
            return response
        if isinstance(obj, dict):
            obj["shard"] = shard
            return json.dumps(obj)
        return response

    def stats_snapshot(self) -> dict[str, Any]:
        """A stats-event-shaped snapshot (``repro top`` / ``health`` food)."""
        return snapshot_from_registry(
            self.registry, requests_served=self.requests_served
        )


# ---------------------------------------------------------------------- #
# TCP plane
# ---------------------------------------------------------------------- #
class _LineReader:
    """Byte-capped line reader with skip-until-newline resync.

    ``asyncio.StreamReader.readuntil`` raises ``LimitOverrunError``
    without consuming the oversized data, which makes resyncing to the
    next request awkward; this reader instead *drops* the oversized
    line (counting what it drops for the error message) and keeps the
    connection alive on the next newline.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_bytes: int,
        chunk: int = 1 << 16,
    ) -> None:
        self._reader = reader
        self._max = max_bytes
        self._chunk = chunk
        self._buf = bytearray()
        self._eof = False

    async def readline(self) -> tuple[str, bool] | None:
        """Next line as ``(text, oversized)``; ``None`` at EOF.

        Oversized lines come back as ``(str(dropped_bytes), True)``
        after resyncing past their newline.
        """
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[:nl])
                del self._buf[: nl + 1]
                return line.decode("utf-8", "replace"), False
            if self._max and len(self._buf) > self._max:
                return str(await self._resync()), True
            if self._eof:
                if self._buf:
                    line = bytes(self._buf)
                    self._buf.clear()
                    return line.decode("utf-8", "replace"), False
                return None
            data = await self._reader.read(self._chunk)
            if not data:
                self._eof = True
            else:
                self._buf.extend(data)

    async def _resync(self) -> int:
        """Discard up to the next newline; returns bytes dropped."""
        dropped = len(self._buf)
        self._buf.clear()
        while True:
            nl_data = await self._reader.read(self._chunk)
            if not nl_data:
                self._eof = True
                return dropped
            nl = nl_data.find(b"\n")
            if nl >= 0:
                dropped += nl
                self._buf.extend(nl_data[nl + 1 :])
                return dropped
            dropped += len(nl_data)


async def _handle_tcp_connection(
    frontend: Frontend,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    peer = writer.get_extra_info("peername")
    client = str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"
    lines = _LineReader(reader, frontend.config.max_line_bytes)
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task[None]] = set()

    async def reply(payload: str) -> None:
        async with write_lock:
            writer.write(payload.encode() + b"\n")
            await writer.drain()

    async def serve_one(raw: str, lineno: int) -> None:
        out = await frontend.handle_line(raw, client=client, lineno=lineno)
        with contextlib.suppress(ConnectionError):
            await reply(out)

    lineno = 0
    try:
        while True:
            item = await lines.readline()
            if item is None:
                break
            raw, oversized = item
            lineno += 1
            if oversized:
                payload = error_payload(
                    "line_too_large",
                    f"request line of {raw} bytes exceeds the "
                    f"{frontend.config.max_line_bytes}-byte limit",
                    line=lineno,
                    max_bytes=frontend.config.max_line_bytes,
                )
                frontend._m_requests.inc()
                with contextlib.suppress(ConnectionError):
                    await reply(frontend._fail(payload))
                continue
            if not raw.strip() or raw.lstrip().startswith("#"):
                continue
            # Pipelined clients keep multiple lines in flight; responses
            # carry the request "id" so order does not matter to them.
            task = asyncio.create_task(serve_one(raw, lineno))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        with contextlib.suppress(ConnectionError):
            writer.close()
            await writer.wait_closed()


async def _stats_loop(frontend: Frontend, stream: IO[str], interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        print(json.dumps(frontend.stats_snapshot()), file=stream, flush=True)


async def run_tcp_server(
    frontend: Frontend,
    host: str,
    port: int,
    *,
    ready: asyncio.Event | None = None,
    stats_stream: IO[str] | None = None,
    stats_interval: float = 2.0,
) -> None:
    """Serve the line protocol over TCP until cancelled."""
    await frontend.start()
    stats_task: asyncio.Task[None] | None = None
    server = await asyncio.start_server(
        lambda r, w: _handle_tcp_connection(frontend, r, w), host, port
    )
    # Port 0 binds an ephemeral port; publish the real one for callers.
    frontend.bound_port = server.sockets[0].getsockname()[1]
    if stats_stream is not None:
        stats_task = asyncio.create_task(
            _stats_loop(frontend, stats_stream, stats_interval)
        )
    try:
        async with server:
            if ready is not None:
                ready.set()
            await server.serve_forever()
    finally:
        if stats_task is not None:
            stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await stats_task
        await frontend.close()


# ---------------------------------------------------------------------- #
# HTTP plane (minimal, single-request)
# ---------------------------------------------------------------------- #
_HTTP_STATUS = {
    "bad_json": 400,
    "unsupported_version": 400,
    "bad_request": 400,
    "line_too_large": 413,
    "rate_limited": 429,
    "overloaded": 503,
    "shard_unavailable": 503,
    "internal": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


async def _handle_http_connection(
    frontend: Frontend,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    peer = writer.get_extra_info("peername")
    client = str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"
    try:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            writer.write(_http_response(400, b'{"error": "bad request line"}'))
            return
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                k, v = line.split(":", 1)
                headers[k.strip().lower()] = v.strip()

        if method == "GET" and path == "/metrics":
            writer.write(
                _http_response(
                    200,
                    frontend.registry.render_prometheus().encode(),
                    content_type="text/plain; version=0.0.4",
                )
            )
            return
        if method == "GET" and path == "/healthz":
            from ..obs.health import evaluate_health

            report = evaluate_health(frontend.stats_snapshot())
            status = 200 if report.status != "crit" else 503
            writer.write(
                _http_response(status, json.dumps(report.to_json()).encode())
            )
            return
        if method != "POST" or path not in ("/estimate", "/"):
            writer.write(
                _http_response(
                    405 if path in ("/estimate", "/", "/metrics", "/healthz") else 404,
                    b'{"error": "POST /estimate, GET /metrics, GET /healthz"}',
                )
            )
            return

        length = int(headers.get("content-length", "0") or "0")
        if length > frontend.config.max_line_bytes:
            payload = error_payload(
                "line_too_large",
                f"request body of {length} bytes exceeds the "
                f"{frontend.config.max_line_bytes}-byte limit",
                max_bytes=frontend.config.max_line_bytes,
            )
            writer.write(_http_response(413, json.dumps(payload).encode()))
            return
        body = (await reader.readexactly(length)).decode("utf-8", "replace")
        out = await frontend.handle_line(body.replace("\n", " "), client=client)
        obj = json.loads(out)
        status = 200
        if isinstance(obj, dict) and "error" in obj:
            status = _HTTP_STATUS.get(_error_code(obj), 500)
        writer.write(_http_response(status, out.encode()))
    except (asyncio.IncompleteReadError, ConnectionError, ValueError):
        pass
    finally:
        with contextlib.suppress(ConnectionError):
            writer.close()
            await writer.wait_closed()


async def run_http_server(
    frontend: Frontend,
    host: str,
    port: int,
    *,
    ready: asyncio.Event | None = None,
    stats_stream: IO[str] | None = None,
    stats_interval: float = 2.0,
) -> None:
    """Serve single-request HTTP (POST /estimate) until cancelled."""
    await frontend.start()
    stats_task: asyncio.Task[None] | None = None
    server = await asyncio.start_server(
        lambda r, w: _handle_http_connection(frontend, r, w), host, port
    )
    frontend.bound_port = server.sockets[0].getsockname()[1]
    if stats_stream is not None:
        stats_task = asyncio.create_task(
            _stats_loop(frontend, stats_stream, stats_interval)
        )
    try:
        async with server:
            if ready is not None:
                ready.set()
            await server.serve_forever()
    finally:
        if stats_task is not None:
            stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await stats_task
        await frontend.close()
