"""Shard processes: the existing ``serve`` loop behind a pipe.

A shard is literally ``python -m repro serve`` as an asyncio
subprocess — same newline-delimited JSON in, same one-response-line-
per-request-line out, same per-process Estimator with its own pools,
result cache, and evidence plane.  No new protocol: the front end
writes request lines to the shard's stdin and reads response lines
from its stdout.

Because the serve loop answers strictly in order, responses are
matched FIFO: ``submit`` appends a future to a deque and the reader
task resolves the leftmost future per stdout line.  Queue depth is the
number of unresolved futures — the signal the admission controller
normalizes against ``queue_limit``.

A shard that exits (crash, OOM-kill) fails its in-flight requests with
:class:`ShardUnavailable` and is respawned up to ``max_restarts``
times; past the budget the shard stays down and every submit fails
fast with the same structured error code.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from collections import deque

__all__ = ["ShardClient", "ShardUnavailable", "shard_argv"]


class ShardUnavailable(RuntimeError):
    """The owning shard process is not running (crashed or exhausted)."""


def shard_argv(
    *,
    jobs: int = 1,
    cache_size: int = 128,
    mode: str = "auto",
    include_counts: bool = True,
    shm: bool = True,
    log_level: str | None = None,
) -> list[str]:
    """Command line for one shard: ``python -m repro serve ...``."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--jobs",
        str(jobs),
        "--cache-size",
        str(cache_size),
    ]
    if mode != "auto":
        argv += ["--mode", mode]
    if not include_counts:
        argv.append("--no-counts")
    if not shm:
        argv.append("--no-shm")
    if log_level:
        argv += ["--log-level", log_level]
    return argv


class ShardClient:
    """One shard subprocess with FIFO request/response matching."""

    def __init__(
        self,
        index: int,
        argv: list[str],
        *,
        queue_limit: int = 64,
        max_restarts: int = 3,
        inherit_stderr: bool = True,
    ) -> None:
        self.index = index
        self.argv = list(argv)
        self.queue_limit = int(queue_limit)
        self.max_restarts = int(max_restarts)
        self.inherit_stderr = inherit_stderr
        self.restarts = 0
        self._proc: asyncio.subprocess.Process | None = None
        self._pending: deque[asyncio.Future[str]] = deque()
        self._reader: asyncio.Task[None] | None = None
        self._closing = False

    @property
    def depth(self) -> int:
        """Requests submitted to this shard and not yet answered."""
        return len(self._pending)

    @property
    def load(self) -> float:
        """Queue depth normalized by capacity (1.0 == full)."""
        return self.depth / self.queue_limit if self.queue_limit else 0.0

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.returncode is None

    async def start(self) -> None:
        if self.alive:
            return
        self._proc = await asyncio.create_subprocess_exec(
            *self.argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None if self.inherit_stderr else asyncio.subprocess.DEVNULL,
            # Response lines carry per-node count vectors for large
            # graphs; the default 64 KiB StreamReader limit truncates.
            limit=64 * 1024 * 1024,
        )
        self._reader = asyncio.create_task(
            self._read_loop(self._proc), name=f"shard-{self.index}-reader"
        )

    async def _read_loop(self, proc: asyncio.subprocess.Process) -> None:
        assert proc.stdout is not None
        try:
            while True:
                line = await proc.stdout.readline()
                if not line:
                    break
                if not self._pending:
                    continue  # shard wrote an unsolicited line; drop it
                fut = self._pending.popleft()
                if not fut.done():
                    fut.set_result(line.decode().rstrip("\n"))
        finally:
            exc = ShardUnavailable(
                f"shard {self.index} exited with in-flight requests"
            )
            while self._pending:
                fut = self._pending.popleft()
                if not fut.done():
                    fut.set_exception(exc)
            if not self._closing and self.restarts < self.max_restarts:
                self.restarts += 1
                with contextlib.suppress(Exception):
                    await self.start()

    async def submit(self, line: str) -> str:
        """Send one request line; resolves with the shard's response line.

        Raises :class:`ShardUnavailable` when the process is down (or
        dies mid-flight) — the server maps that onto the
        ``shard_unavailable`` error code.
        """
        if not self.alive or self._proc is None or self._proc.stdin is None:
            raise ShardUnavailable(f"shard {self.index} is not running")
        fut: asyncio.Future[str] = asyncio.get_running_loop().create_future()
        self._pending.append(fut)
        try:
            self._proc.stdin.write(line.encode() + b"\n")
            await self._proc.stdin.drain()
        except (ConnectionError, RuntimeError) as exc:
            if fut in self._pending:
                self._pending.remove(fut)
            raise ShardUnavailable(
                f"shard {self.index} pipe closed: {exc}"
            ) from exc
        return await fut

    async def close(self) -> None:
        """Stop the shard: stdin EOF lets the serve loop exit cleanly."""
        self._closing = True
        proc, self._proc = self._proc, self._proc
        if proc is None:
            return
        if proc.stdin is not None:
            with contextlib.suppress(ConnectionError, RuntimeError):
                proc.stdin.close()
        if proc.returncode is None:
            try:
                await asyncio.wait_for(proc.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
        if self._reader is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader
