"""Columnar on-disk graphs (``.reprograph``) with O(1) memmap loads.

The ``.npz`` graph format (:mod:`repro.graphs.io`) is fine for pinning
small topologies next to results, but it decompresses and copies every
byte on load.  Million-node workloads want the opposite trade: a flat,
uncompressed, *aligned* layout that :func:`numpy.memmap` can expose as
zero-copy views, so opening a graph costs a header read — the OS pages
edge/CSR data in lazily as algorithms touch it, and all processes on the
host share one page-cache copy.

Layout (all little-endian)::

    [0:8)    magic  b"REPROGRF"
    [8:12)   u32    version (currently 1)
    [12:16)  u32    flags   (bit 0: edge/index buffers are int32)
    [16:24)  i64    n
    [24:32)  i64    m
    [32:96)  64b    content hash (ascii sha256 hex digest)
    [96:120) 3x i64 buffer offsets: edges, indptr, indices
    ...      buffers, each 64-byte aligned:
             edges   (m, 2) i8/i4   canonical edge list
             indptr  (n+1,) i8      CSR row pointers
             indices (2m,)  i8/i4   CSR adjacency

The cached CSR is stored *materialized*, so a loaded graph never
re-derives it — :class:`~repro.graphs.shm.SharedGraph` export and the
engines start from the memmapped buffers directly.  ``compact=True``
halves the file with int32 buffers at the cost of one widening copy on
load (the default int64 layout stays zero-copy).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.profile import phase
from .graph import GraphValidationError, StaticGraph

__all__ = [
    "REPROGRAPH_MAGIC",
    "REPROGRAPH_SUFFIX",
    "save_reprograph",
    "load_reprograph",
    "inspect_reprograph",
]

REPROGRAPH_MAGIC = b"REPROGRF"
REPROGRAPH_SUFFIX = ".reprograph"
_VERSION = 1
_FLAG_INT32 = 1
_HEADER_BYTES = 120
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def save_reprograph(
    path: str | Path, graph: StaticGraph, compact: bool = False
) -> int:
    """Write *graph* (edges + materialized CSR) to ``path``; returns bytes.

    With ``compact=True`` the edge and adjacency buffers are stored as
    int32 (requires ``n < 2**31``), halving the file; loads then widen
    back to int64 with one copy instead of mapping zero-copy.
    """
    path = Path(path)
    if compact and graph.n > np.iinfo(np.int32).max:
        raise GraphValidationError(
            f"compact layout requires n < 2**31, got n={graph.n}"
        )
    with phase("graph.save"):
        indptr, indices = graph._csr  # materialize once, persist forever
        edge_dtype = np.dtype("<i4") if compact else np.dtype("<i8")
        edges = np.ascontiguousarray(graph.edges, dtype=edge_dtype)
        indptr = np.ascontiguousarray(indptr, dtype="<i8")
        indices = np.ascontiguousarray(indices, dtype=edge_dtype)
        edges_off = _align(_HEADER_BYTES)
        indptr_off = _align(edges_off + edges.nbytes)
        indices_off = _align(indptr_off + indptr.nbytes)
        total = indices_off + indices.nbytes

        header = bytearray(_HEADER_BYTES)
        header[0:8] = REPROGRAPH_MAGIC
        header[8:12] = np.uint32(_VERSION).tobytes()
        header[12:16] = np.uint32(_FLAG_INT32 if compact else 0).tobytes()
        header[16:24] = np.int64(graph.n).tobytes()
        header[24:32] = np.int64(graph.m).tobytes()
        header[32:96] = graph.content_hash().encode("ascii")
        header[96:120] = np.array(
            [edges_off, indptr_off, indices_off], dtype="<i8"
        ).tobytes()

        with open(path, "wb") as fh:
            fh.write(header)
            for off, buf in (
                (edges_off, edges),
                (indptr_off, indptr),
                (indices_off, indices),
            ):
                fh.seek(off)
                fh.write(buf.tobytes())
            fh.truncate(max(total, _HEADER_BYTES))
    return total


def _read_header(path: Path) -> dict[str, Any]:
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER_BYTES)
    if len(raw) < _HEADER_BYTES or raw[0:8] != REPROGRAPH_MAGIC:
        raise GraphValidationError(f"{path}: not a .reprograph file")
    version = int(np.frombuffer(raw[8:12], dtype="<u4")[0])
    if version != _VERSION:
        raise GraphValidationError(
            f"{path}: unsupported .reprograph version {version}"
        )
    flags = int(np.frombuffer(raw[12:16], dtype="<u4")[0])
    n, m = (int(x) for x in np.frombuffer(raw[16:32], dtype="<i8"))
    if n < 0 or m < 0:
        raise GraphValidationError(f"{path}: corrupt header (n={n}, m={m})")
    try:
        content_hash = raw[32:96].decode("ascii")
        int(content_hash, 16)
    except (UnicodeDecodeError, ValueError) as exc:
        raise GraphValidationError(f"{path}: corrupt content hash") from exc
    offsets = np.frombuffer(raw[96:120], dtype="<i8")
    itemsize = 4 if flags & _FLAG_INT32 else 8
    expected = int(offsets[2]) + 2 * m * itemsize
    actual = path.stat().st_size
    if actual < max(expected, _HEADER_BYTES):
        raise GraphValidationError(
            f"{path}: truncated ({actual} bytes, need {expected})"
        )
    return {
        "version": version,
        "flags": flags,
        "compact": bool(flags & _FLAG_INT32),
        "n": n,
        "m": m,
        "content_hash": content_hash,
        "edges_offset": int(offsets[0]),
        "indptr_offset": int(offsets[1]),
        "indices_offset": int(offsets[2]),
        "file_bytes": actual,
    }


def _map(
    path: Path, dtype: str, offset: int, shape: tuple[int, ...]
) -> np.ndarray:
    """One zero-copy read-only view into the file (empty -> no mapping)."""
    count = 1
    for dim in shape:
        count *= dim
    if count == 0:
        return np.empty(shape, dtype=np.dtype(dtype))
    view = np.memmap(path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=shape)
    return view


def load_reprograph(path: str | Path, verify: bool = False) -> StaticGraph:
    """Open a saved graph as memmap-backed views — O(1), no data copied.

    Edge and CSR buffers stay on disk until touched; ``verify=True``
    additionally re-hashes the edge buffer (reads everything once) and
    checks it against the stored content hash.
    """
    path = Path(path)
    with phase("graph.load"):
        head = _read_header(path)
        n, m = head["n"], head["m"]
        dtype = "<i4" if head["compact"] else "<i8"
        edges = _map(path, dtype, head["edges_offset"], (m, 2))
        indptr = _map(path, "<i8", head["indptr_offset"], (n + 1,))
        indices = _map(path, dtype, head["indices_offset"], (2 * m,))
        if head["compact"]:
            edges = edges.astype(np.int64)
            indices = indices.astype(np.int64)
        graph = StaticGraph._from_shared_parts(  # noqa: SLF001 - same package
            n, edges, indptr, indices, head["content_hash"]
        )
    if verify:
        h = hashlib.sha256(b"repro-static-graph-v1")
        h.update(int(n).to_bytes(8, "little"))
        h.update(np.ascontiguousarray(graph.edges, dtype="<i8").tobytes())
        if h.hexdigest() != head["content_hash"]:
            raise GraphValidationError(
                f"{path}: content hash mismatch (file corrupt?)"
            )
    return graph


def inspect_reprograph(path: str | Path) -> dict[str, Any]:
    """Header metadata of a ``.reprograph`` file without mapping any data."""
    return _read_header(Path(path))
