"""Graph family generators (substrate S2).

Every topology the paper evaluates or reasons about is constructed here:

* the synthetic evaluation trees of Section IX (complete ``k``-ary trees
  and *alternating* trees);
* the motivating star graph of Section I;
* the *cone* graph of the Section VIII lower bound;
* supporting families for the theory experiments: paths, caterpillars,
  brooms, random trees, random bipartite graphs, planar grids and
  triangulated grids.

All generators return :class:`~repro.graphs.graph.StaticGraph` (or
:class:`~repro.graphs.graph.RootedTree` where a rooting is natural) and are
deterministic given their arguments (random families take a seed).

Construction is **array-native**: every generator emits endpoint arrays
via vectorized index arithmetic and hands them to
:meth:`StaticGraph.from_arrays`, so building a million-node graph never
materializes per-edge Python tuples.  The emitted edge sets (and hence
every ``content_hash``) are bit-identical to the historical per-node
loop implementations — the property suite pins this against slow
reference builders.
"""

from __future__ import annotations

import numpy as np

from ..runtime.rng import SeedLike, generator_from
from .graph import GraphValidationError, RootedTree, StaticGraph

__all__ = [
    "empty_graph",
    "singleton",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_tree",
    "alternating_tree",
    "caterpillar",
    "broom",
    "spider",
    "random_tree",
    "random_bipartite",
    "complete_bipartite",
    "grid_graph",
    "triangulated_grid",
    "cone_graph",
    "double_broom",
    "random_planar_like",
]


def _ids(start: int, stop: int) -> np.ndarray:
    """``arange`` pinned to int64 (edge endpoints are always int64)."""
    return np.arange(start, stop, dtype=np.int64)


def _rooted(n: int, src: np.ndarray, dst: np.ndarray, parent: np.ndarray) -> RootedTree:
    """Assemble a rooted tree from endpoint + parent arrays."""
    graph = StaticGraph.from_arrays(n, src, dst)
    return RootedTree(graph=graph, parent=parent)


# --------------------------------------------------------------------- #
# trivial families
# --------------------------------------------------------------------- #
def empty_graph(n: int) -> StaticGraph:
    """``n`` isolated vertices."""
    return StaticGraph.from_edges(n, [])


def singleton() -> StaticGraph:
    """The one-vertex graph."""
    return empty_graph(1)


def path_graph(n: int) -> StaticGraph:
    """The path ``P_n``."""
    left = _ids(0, max(n - 1, 0))
    return StaticGraph.from_arrays(n, left, left + 1)


def cycle_graph(n: int) -> StaticGraph:
    """The cycle ``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise GraphValidationError("a cycle needs at least 3 vertices")
    src = _ids(0, n)
    return StaticGraph.from_arrays(n, src, (src + 1) % n)


def star_graph(n: int) -> StaticGraph:
    """Star on ``n`` vertices, center 0 — the Section I motivating example
    where Luby's inequality factor is ``Theta(n)``."""
    if n < 1:
        raise GraphValidationError("a star needs at least 1 vertex")
    leaves = _ids(1, n)
    return StaticGraph.from_arrays(n, np.zeros(n - 1, dtype=np.int64), leaves)


def complete_graph(n: int) -> StaticGraph:
    """The clique ``K_n``."""
    src, dst = np.triu_indices(n, k=1)
    return StaticGraph.from_arrays(n, src, dst)


# --------------------------------------------------------------------- #
# evaluation trees (Section IX)
# --------------------------------------------------------------------- #
def complete_tree(branching: int, depth: int) -> RootedTree:
    """Complete ``branching``-ary tree with the given depth (root depth 0).

    ``complete_tree(2, 10)`` is the paper's binary tree (n=2047);
    ``complete_tree(5, 5)`` its 5-ary tree (n=3906).  Vertices carry BFS
    numbering, so ``parent(i) = (i - 1) // branching``.
    """
    if branching < 1 or depth < 0:
        raise GraphValidationError("branching >= 1 and depth >= 0 required")
    if branching == 1:
        n = depth + 1
    else:
        n = (branching ** (depth + 1) - 1) // (branching - 1)
    child = _ids(1, n)
    parent_of = (child - 1) // branching
    parent = np.concatenate([np.array([-1], dtype=np.int64), parent_of])
    return _rooted(n, parent_of, child, parent)


def alternating_tree(branching: int, depth: int) -> RootedTree:
    """The paper's *alternating tree*: even-depth internal nodes have
    ``branching`` children, odd-depth internal nodes have exactly one.

    ``alternating_tree(10, 5)`` gives n=1221; ``alternating_tree(30, 3)``
    gives n=961 — the Table I configurations.  These isolate the impact of
    local degree variation on Luby's fairness.
    """
    if branching < 2 or depth < 0:
        raise GraphValidationError("branching >= 2 and depth >= 0 required")
    parents: list[np.ndarray] = [np.array([-1], dtype=np.int64)]
    start, size = 0, 1
    next_id = 1
    for level in range(depth):
        fanout = branching if level % 2 == 0 else 1
        frontier = _ids(start, start + size)
        parents.append(np.repeat(frontier, fanout))
        start, size = next_id, size * fanout
        next_id += size
    parent = np.concatenate(parents)
    child = _ids(1, next_id)
    return _rooted(next_id, parent[1:], child, parent)


def caterpillar(spine: int, legs_per_node: int) -> RootedTree:
    """A path of ``spine`` vertices, each with ``legs_per_node`` pendant
    leaves — a classic high-inequality shape for Luby."""
    if spine < 1 or legs_per_node < 0:
        raise GraphValidationError("spine >= 1 and legs >= 0 required")
    n = spine + spine * legs_per_node
    spine_child = _ids(1, spine)
    leg_child = _ids(spine, n)
    leg_parent = np.repeat(_ids(0, spine), legs_per_node)
    src = np.concatenate([spine_child - 1, leg_parent])
    dst = np.concatenate([spine_child, leg_child])
    parent = np.concatenate([np.array([-1], dtype=np.int64), spine_child - 1, leg_parent])
    return _rooted(n, src, dst, parent)


def broom(handle: int, bristles: int) -> RootedTree:
    """A path of ``handle`` vertices whose far end holds ``bristles``
    leaves (star tail)."""
    if handle < 1 or bristles < 0:
        raise GraphValidationError("handle >= 1 and bristles >= 0 required")
    n = handle + bristles
    handle_child = _ids(1, handle)
    tail_parent = np.full(bristles, handle - 1, dtype=np.int64)
    src = np.concatenate([handle_child - 1, tail_parent])
    dst = np.concatenate([handle_child, _ids(handle, n)])
    parent = np.concatenate([np.array([-1], dtype=np.int64), handle_child - 1, tail_parent])
    return _rooted(n, src, dst, parent)


def double_broom(handle: int, bristles: int) -> StaticGraph:
    """A path with ``bristles`` leaves attached at *both* ends."""
    if handle < 2:
        raise GraphValidationError("handle >= 2 required")
    n = handle + 2 * bristles
    path_child = _ids(1, handle)
    src = np.concatenate(
        [
            path_child - 1,
            np.zeros(bristles, dtype=np.int64),
            np.full(bristles, handle - 1, dtype=np.int64),
        ]
    )
    dst = np.concatenate([path_child, _ids(handle, n)])
    return StaticGraph.from_arrays(n, src, dst)


def spider(legs: int, leg_length: int) -> RootedTree:
    """``legs`` disjoint paths of ``leg_length`` vertices joined at a hub."""
    if legs < 1 or leg_length < 1:
        raise GraphValidationError("legs >= 1 and leg_length >= 1 required")
    n = 1 + legs * leg_length
    child = _ids(1, n)
    parent_of = child - 1
    # the first vertex of each leg hangs off the hub
    parent_of[(child - 1) % leg_length == 0] = 0
    parent = np.concatenate([np.array([-1], dtype=np.int64), parent_of])
    return _rooted(n, parent_of, child, parent)


def random_tree(n: int, seed: SeedLike = None) -> RootedTree:
    """Uniformly random labeled tree on ``n`` vertices (Prüfer decode)."""
    if n < 1:
        raise GraphValidationError("n >= 1 required")
    if n == 1:
        return RootedTree(graph=empty_graph(1), parent=np.array([-1]))
    if n == 2:
        return RootedTree(
            graph=StaticGraph.from_edges(2, [(0, 1)]),
            parent=np.array([-1, 0]),
        )
    rng = generator_from(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.bincount(prufer, minlength=n) + 1
    # O(n) pointer-based decode.  Equivalent to repeatedly popping the
    # *smallest* current leaf (the classic sorted-pool decode): every
    # leaf below ``ptr`` is consumed the moment it appears, so the next
    # leaf is either a just-created index < ptr or the next degree-1
    # index found by the forward scan.
    deg = degree.tolist()
    src_list: list[int] = []
    append = src_list.append
    index = deg.index  # C-speed forward scan for the next degree-1 vertex
    ptr = index(1)
    leaf = ptr
    for code in prufer.tolist():
        append(leaf)
        d = deg[code] - 1
        deg[code] = d
        if d == 1 and code < ptr:
            leaf = code
        else:
            ptr = index(1, ptr + 1)
            leaf = ptr
    # two leaves remain: ``leaf`` and the next unused degree-1 vertex
    try:
        other = index(1, ptr + 1)
    except ValueError:  # pragma: no cover - unreachable for valid codes
        other = n
    append(leaf)
    src = np.array(src_list, dtype=np.int64)
    dst = np.empty(n - 1, dtype=np.int64)
    dst[: n - 2] = prufer
    dst[n - 2] = other
    graph = StaticGraph.from_arrays(n, src, dst)
    # The decode already orients every edge: each removed leaf's
    # neighbor survives it, so ``parent[leaf] = code`` roots the tree at
    # the last survivor.  Re-rooting at 0 reverses the 0 -> survivor
    # chain; parent pointers toward a fixed root are unique, so this is
    # identical to (but much cheaper than) a full BFS rooting.
    parent = np.empty(n, dtype=np.int64)
    parent[src] = dst
    parent[other] = -1
    if other != 0:
        chain = [0]
        v = int(parent[0])
        while v != -1:
            chain.append(v)
            v = int(parent[v])
        arr = np.array(chain, dtype=np.int64)
        parent[arr[1:]] = arr[:-1]
        parent[0] = -1
    return RootedTree(graph=graph, parent=parent)


# --------------------------------------------------------------------- #
# bipartite and planar families (Sections VI–VII)
# --------------------------------------------------------------------- #
def complete_bipartite(a: int, b: int) -> StaticGraph:
    """``K_{a,b}`` with left part ``0..a-1``."""
    if a < 0 or b < 0:
        raise GraphValidationError("part sizes must be non-negative")
    src = np.repeat(_ids(0, a), b)
    dst = np.tile(_ids(a, a + b), a)
    return StaticGraph.from_arrays(a + b, src, dst)


def random_bipartite(a: int, b: int, p: float, seed: SeedLike = None) -> StaticGraph:
    """Bipartite ``G(a, b, p)``: each cross edge present independently."""
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError("p must be a probability")
    rng = generator_from(seed)
    mask = rng.random((a, b)) < p
    lefts, rights = np.nonzero(mask)
    return StaticGraph.from_arrays(a + b, lefts, rights + a)


def _grid_arrays(
    rows: int, cols: int, diagonal: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Grid edges as endpoint arrays, emitted in *canonical* order.

    Cells are walked row-major and each cell emits its right, down (and
    optionally down-right) edges in that order — which is exactly the
    lexicographic ``(lo, hi)`` order, so construction skips the sort.
    """
    n = rows * cols
    ids = np.arange(n, dtype=np.int64)
    k = 3 if diagonal else 2
    dst = np.empty((n, k), dtype=np.int64)
    mask = np.empty((n, k), dtype=bool)
    right = (ids % cols) < cols - 1
    down = ids < n - cols
    dst[:, 0] = ids + 1
    dst[:, 1] = ids + cols
    mask[:, 0] = right
    mask[:, 1] = down
    if diagonal:
        dst[:, 2] = ids + cols + 1
        mask[:, 2] = right & down
    src = np.repeat(ids, k).reshape(n, k)
    return src[mask], dst[mask]


def grid_graph(rows: int, cols: int) -> StaticGraph:
    """The ``rows x cols`` grid — planar and bipartite."""
    if rows < 1 or cols < 1:
        raise GraphValidationError("rows, cols >= 1 required")
    src, dst = _grid_arrays(rows, cols)
    return StaticGraph.from_arrays(rows * cols, src, dst)


def triangulated_grid(rows: int, cols: int) -> StaticGraph:
    """Grid plus one diagonal per cell — planar, *not* bipartite,
    arboricity <= 3; exercises COLORMIS on Corollary 18's family."""
    if rows < 1 or cols < 1:
        raise GraphValidationError("rows, cols >= 1 required")
    src, dst = _grid_arrays(rows, cols, diagonal=True)
    return StaticGraph.from_arrays(rows * cols, src, dst)


def apex_grid(rows: int, cols: int) -> StaticGraph:
    """A grid plus one apex vertex adjacent to every boundary cell.

    Still planar (the apex sits in the outer face) and has arboricity
    <= 3, but the apex's degree is ``2(rows+cols) - 4`` — the family where
    arboricity-based coloring (k = O(1)) beats greedy (k = Δ+1), i.e.
    Corollary 18's sweet spot.  The apex is the last vertex.
    """
    if rows < 1 or cols < 1:
        raise GraphValidationError("rows, cols >= 1 required")
    apex = rows * cols
    ids = np.arange(apex, dtype=np.int64)
    col = ids % cols
    # per-cell canonical order again: right, down, then the apex ray
    # (the apex has the largest id, so it sorts last within each cell)
    dst = np.empty((apex, 3), dtype=np.int64)
    mask = np.empty((apex, 3), dtype=bool)
    dst[:, 0] = ids + 1
    dst[:, 1] = ids + cols
    dst[:, 2] = apex
    mask[:, 0] = col < cols - 1
    mask[:, 1] = ids < apex - cols
    mask[:, 2] = (ids < cols) | (ids >= apex - cols) | (col == 0) | (col == cols - 1)
    src = np.repeat(ids, 3).reshape(apex, 3)
    return StaticGraph.from_arrays(apex + 1, src[mask], dst[mask])


def random_planar_like(n: int, seed: SeedLike = None) -> StaticGraph:
    """Random planar graph via Delaunay triangulation of random points.

    Used as a realistic low-arboricity workload for COLORMIS.
    """
    if n < 3:
        return path_graph(max(n, 1))
    rng = generator_from(seed)
    from scipy.spatial import Delaunay

    points = rng.random((n, 2))
    tri = Delaunay(points)
    s = tri.simplices.astype(np.int64)
    src = np.concatenate([s[:, 0], s[:, 1], s[:, 0]])
    dst = np.concatenate([s[:, 1], s[:, 2], s[:, 2]])
    return StaticGraph.from_arrays(n, src, dst, dedup=True)


# --------------------------------------------------------------------- #
# lower-bound topology (Section VIII)
# --------------------------------------------------------------------- #
def cone_graph(k: int) -> StaticGraph:
    """The cone ``C``: clique on ``u_1..u_2k`` plus apex ``u_0`` adjacent
    to ``u_1..u_k``.  Theorem 19: every MIS algorithm has inequality factor
    ``Omega(n)`` here.  Vertex 0 is the apex."""
    if k < 1:
        raise GraphValidationError("k >= 1 required")
    n = 2 * k + 1
    src, dst = np.triu_indices(2 * k, k=1)
    src = np.concatenate([src + 1, np.zeros(k, dtype=np.int64)])
    dst = np.concatenate([dst + 1, _ids(1, k + 1)])
    return StaticGraph.from_arrays(n, src, dst)
