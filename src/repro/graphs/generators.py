"""Graph family generators (substrate S2).

Every topology the paper evaluates or reasons about is constructed here:

* the synthetic evaluation trees of Section IX (complete ``k``-ary trees
  and *alternating* trees);
* the motivating star graph of Section I;
* the *cone* graph of the Section VIII lower bound;
* supporting families for the theory experiments: paths, caterpillars,
  brooms, random trees, random bipartite graphs, planar grids and
  triangulated grids.

All generators return :class:`~repro.graphs.graph.StaticGraph` (or
:class:`~repro.graphs.graph.RootedTree` where a rooting is natural) and are
deterministic given their arguments (random families take a seed).
"""

from __future__ import annotations

import numpy as np

from ..runtime.rng import SeedLike, generator_from
from .graph import GraphValidationError, RootedTree, StaticGraph

__all__ = [
    "empty_graph",
    "singleton",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_tree",
    "alternating_tree",
    "caterpillar",
    "broom",
    "spider",
    "random_tree",
    "random_bipartite",
    "complete_bipartite",
    "grid_graph",
    "triangulated_grid",
    "cone_graph",
    "double_broom",
    "random_planar_like",
]


# --------------------------------------------------------------------- #
# trivial families
# --------------------------------------------------------------------- #
def empty_graph(n: int) -> StaticGraph:
    """``n`` isolated vertices."""
    return StaticGraph.from_edges(n, [])


def singleton() -> StaticGraph:
    """The one-vertex graph."""
    return empty_graph(1)


def path_graph(n: int) -> StaticGraph:
    """The path ``P_n``."""
    return StaticGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> StaticGraph:
    """The cycle ``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise GraphValidationError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return StaticGraph.from_edges(n, edges)


def star_graph(n: int) -> StaticGraph:
    """Star on ``n`` vertices, center 0 — the Section I motivating example
    where Luby's inequality factor is ``Theta(n)``."""
    if n < 1:
        raise GraphValidationError("a star needs at least 1 vertex")
    return StaticGraph.from_edges(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> StaticGraph:
    """The clique ``K_n``."""
    return StaticGraph.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


# --------------------------------------------------------------------- #
# evaluation trees (Section IX)
# --------------------------------------------------------------------- #
def complete_tree(branching: int, depth: int) -> RootedTree:
    """Complete ``branching``-ary tree with the given depth (root depth 0).

    ``complete_tree(2, 10)`` is the paper's binary tree (n=2047);
    ``complete_tree(5, 5)`` its 5-ary tree (n=3906).
    """
    if branching < 1 or depth < 0:
        raise GraphValidationError("branching >= 1 and depth >= 0 required")
    edges: list[tuple[int, int]] = []
    parent = [-1]
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier: list[int] = []
        for u in frontier:
            for _ in range(branching):
                edges.append((u, next_id))
                parent.append(u)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    graph = StaticGraph.from_edges(next_id, edges)
    return RootedTree(graph=graph, parent=np.asarray(parent, dtype=np.int64))


def alternating_tree(branching: int, depth: int) -> RootedTree:
    """The paper's *alternating tree*: even-depth internal nodes have
    ``branching`` children, odd-depth internal nodes have exactly one.

    ``alternating_tree(10, 5)`` gives n=1221; ``alternating_tree(30, 3)``
    gives n=961 — the Table I configurations.  These isolate the impact of
    local degree variation on Luby's fairness.
    """
    if branching < 2 or depth < 0:
        raise GraphValidationError("branching >= 2 and depth >= 0 required")
    edges: list[tuple[int, int]] = []
    parent = [-1]
    frontier = [0]
    next_id = 1
    for level in range(depth):
        fanout = branching if level % 2 == 0 else 1
        new_frontier: list[int] = []
        for u in frontier:
            for _ in range(fanout):
                edges.append((u, next_id))
                parent.append(u)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    graph = StaticGraph.from_edges(next_id, edges)
    return RootedTree(graph=graph, parent=np.asarray(parent, dtype=np.int64))


def caterpillar(spine: int, legs_per_node: int) -> RootedTree:
    """A path of ``spine`` vertices, each with ``legs_per_node`` pendant
    leaves — a classic high-inequality shape for Luby."""
    if spine < 1 or legs_per_node < 0:
        raise GraphValidationError("spine >= 1 and legs >= 0 required")
    edges: list[tuple[int, int]] = []
    parent = [-1]
    for i in range(1, spine):
        edges.append((i - 1, i))
        parent.append(i - 1)
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            edges.append((i, next_id))
            parent.append(i)
            next_id += 1
    graph = StaticGraph.from_edges(next_id, edges)
    return RootedTree(graph=graph, parent=np.asarray(parent, dtype=np.int64))


def broom(handle: int, bristles: int) -> RootedTree:
    """A path of ``handle`` vertices whose far end holds ``bristles``
    leaves (star tail)."""
    if handle < 1 or bristles < 0:
        raise GraphValidationError("handle >= 1 and bristles >= 0 required")
    edges = [(i - 1, i) for i in range(1, handle)]
    parent = [-1] + list(range(handle - 1))
    next_id = handle
    for _ in range(bristles):
        edges.append((handle - 1, next_id))
        parent.append(handle - 1)
        next_id += 1
    graph = StaticGraph.from_edges(next_id, edges)
    return RootedTree(graph=graph, parent=np.asarray(parent, dtype=np.int64))


def double_broom(handle: int, bristles: int) -> StaticGraph:
    """A path with ``bristles`` leaves attached at *both* ends."""
    if handle < 2:
        raise GraphValidationError("handle >= 2 required")
    edges = [(i - 1, i) for i in range(1, handle)]
    next_id = handle
    for end in (0, handle - 1):
        for _ in range(bristles):
            edges.append((end, next_id))
            next_id += 1
    return StaticGraph.from_edges(next_id, edges)


def spider(legs: int, leg_length: int) -> RootedTree:
    """``legs`` disjoint paths of ``leg_length`` vertices joined at a hub."""
    if legs < 1 or leg_length < 1:
        raise GraphValidationError("legs >= 1 and leg_length >= 1 required")
    edges: list[tuple[int, int]] = []
    parent = [-1]
    next_id = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, next_id))
            parent.append(prev)
            prev = next_id
            next_id += 1
    graph = StaticGraph.from_edges(next_id, edges)
    return RootedTree(graph=graph, parent=np.asarray(parent, dtype=np.int64))


def random_tree(n: int, seed: SeedLike = None) -> RootedTree:
    """Uniformly random labeled tree on ``n`` vertices (Prüfer decode)."""
    if n < 1:
        raise GraphValidationError("n >= 1 required")
    if n == 1:
        return RootedTree(graph=empty_graph(1), parent=np.array([-1]))
    if n == 2:
        return RootedTree(
            graph=StaticGraph.from_edges(2, [(0, 1)]),
            parent=np.array([-1, 0]),
        )
    rng = generator_from(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.bincount(prufer, minlength=n) + 1
    edges: list[tuple[int, int]] = []
    # classic O(n log n) Prüfer decoding with a sorted leaf pool
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for code in prufer.tolist():
        leaf = heapq.heappop(leaves)
        edges.append((leaf, code))
        degree[code] -= 1
        if degree[code] == 1:
            heapq.heappush(leaves, code)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    graph = StaticGraph.from_edges(n, edges)
    return RootedTree.from_graph(graph, root=0)


# --------------------------------------------------------------------- #
# bipartite and planar families (Sections VI–VII)
# --------------------------------------------------------------------- #
def complete_bipartite(a: int, b: int) -> StaticGraph:
    """``K_{a,b}`` with left part ``0..a-1``."""
    if a < 0 or b < 0:
        raise GraphValidationError("part sizes must be non-negative")
    return StaticGraph.from_edges(
        a + b, [(i, a + j) for i in range(a) for j in range(b)]
    )


def random_bipartite(a: int, b: int, p: float, seed: SeedLike = None) -> StaticGraph:
    """Bipartite ``G(a, b, p)``: each cross edge present independently."""
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError("p must be a probability")
    rng = generator_from(seed)
    mask = rng.random((a, b)) < p
    lefts, rights = np.nonzero(mask)
    edges = list(zip(lefts.tolist(), (rights + a).tolist()))
    return StaticGraph.from_edges(a + b, edges)


def grid_graph(rows: int, cols: int) -> StaticGraph:
    """The ``rows x cols`` grid — planar and bipartite."""
    if rows < 1 or cols < 1:
        raise GraphValidationError("rows, cols >= 1 required")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return StaticGraph.from_edges(rows * cols, edges)


def triangulated_grid(rows: int, cols: int) -> StaticGraph:
    """Grid plus one diagonal per cell — planar, *not* bipartite,
    arboricity <= 3; exercises COLORMIS on Corollary 18's family."""
    base = grid_graph(rows, cols)
    edges = list(map(tuple, base.edges.tolist()))
    for r in range(rows - 1):
        for c in range(cols - 1):
            edges.append((r * cols + c, (r + 1) * cols + c + 1))
    return StaticGraph.from_edges(rows * cols, edges)


def apex_grid(rows: int, cols: int) -> StaticGraph:
    """A grid plus one apex vertex adjacent to every boundary cell.

    Still planar (the apex sits in the outer face) and has arboricity
    <= 3, but the apex's degree is ``2(rows+cols) - 4`` — the family where
    arboricity-based coloring (k = O(1)) beats greedy (k = Δ+1), i.e.
    Corollary 18's sweet spot.  The apex is the last vertex.
    """
    base = grid_graph(rows, cols)
    apex = rows * cols
    edges = list(map(tuple, base.edges.tolist()))
    for r in range(rows):
        for c in range(cols):
            if r in (0, rows - 1) or c in (0, cols - 1):
                edges.append((r * cols + c, apex))
    return StaticGraph.from_edges(rows * cols + 1, edges)


def random_planar_like(n: int, seed: SeedLike = None) -> StaticGraph:
    """Random planar graph via Delaunay triangulation of random points.

    Used as a realistic low-arboricity workload for COLORMIS.
    """
    if n < 3:
        return path_graph(max(n, 1))
    rng = generator_from(seed)
    from scipy.spatial import Delaunay

    points = rng.random((n, 2))
    tri = Delaunay(points)
    edges: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = map(int, simplex)
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((min(u, v), max(u, v)))
    return StaticGraph.from_edges(n, sorted(edges))


# --------------------------------------------------------------------- #
# lower-bound topology (Section VIII)
# --------------------------------------------------------------------- #
def cone_graph(k: int) -> StaticGraph:
    """The cone ``C``: clique on ``u_1..u_2k`` plus apex ``u_0`` adjacent
    to ``u_1..u_k``.  Theorem 19: every MIS algorithm has inequality factor
    ``Omega(n)`` here.  Vertex 0 is the apex."""
    if k < 1:
        raise GraphValidationError("k >= 1 required")
    n = 2 * k + 1
    edges = [(i, j) for i in range(1, n) for j in range(i + 1, n)]
    edges += [(0, i) for i in range(1, k + 1)]
    return StaticGraph.from_edges(n, edges)
