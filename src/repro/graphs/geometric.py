"""Geometric wireless-access-point models and MST extraction (substrate S3).

Section IX builds its "real-world" trees from WAP coordinates (Dartmouth
campus, New York City) by (1) imposing a maximum physical distance that an
edge may represent and (2) taking a minimum spanning tree of the resulting
graph.  The raw traces (CRAWDAD, Wigle.NET) are not redistributable and
this environment has no network access, so this module synthesizes point
clouds with the same *structural* character and then applies the paper's
own pipeline verbatim:

* :func:`campus_model` — Gaussian building clusters on a campus quad
  (Dartmouth-like, default n=178 to match Table I);
* :func:`city_model` — a street grid with heavy-tailed block densities
  (NYC-like, scalable up to the paper's n=17,834).

What matters for the fairness phenomenon is the MST's degree/depth
heterogeneity — dense hubs inside clusters, long chains between clusters —
which clustered point processes reproduce.  See DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.rng import SeedLike, generator_from
from .graph import GraphValidationError, StaticGraph

__all__ = [
    "PointCloud",
    "campus_model",
    "city_model",
    "threshold_graph",
    "euclidean_mst",
    "wap_tree",
]


@dataclass(frozen=True)
class PointCloud:
    """A set of 2-D access-point positions with a descriptive label."""

    label: str
    points: np.ndarray  # (n, 2) float64

    @property
    def n(self) -> int:
        """Number of points."""
        return int(self.points.shape[0])


def _colocate(points: np.ndarray, frac: float, rng: np.random.Generator) -> np.ndarray:
    """With probability *frac*, an AP reports an earlier AP's coordinates.

    Real wardriving traces (CRAWDAD, Wigle.NET) place many access points at
    *identical* coordinates — venue stacking (dozens of APs in one
    building) and geolocation snapping both collapse positions.  Those
    zero-length edges are what give the paper's MSTs their high-degree
    hubs, which in turn drive Luby's large inequality factors (Table I).
    Chains of duplicates resolve transitively (a copy of a copy lands on
    the original coordinates).
    """
    n = len(points)
    if n < 2 or frac <= 0:
        return points
    dup = rng.random(n) < frac
    dup[0] = False
    idx = np.nonzero(dup)[0]
    src = np.floor(rng.random(idx.size) * idx).astype(np.int64)  # j < i
    for i, j in zip(idx.tolist(), src.tolist()):
        points[i] = points[j]
    return points


def campus_model(
    n: int = 178,
    clusters: int = 12,
    cluster_sigma: float = 40.0,
    extent: float = 1200.0,
    colocation: float = 0.55,
    seed: SeedLike = None,
) -> PointCloud:
    """Campus-like WAP layout: buildings as Gaussian clusters.

    Cluster centers are uniform over an ``extent x extent`` area; each
    access point is assigned to a cluster with probability proportional to
    a random building "size" and scattered with ``cluster_sigma`` meters of
    spread; a ``colocation`` fraction of APs share an earlier AP's exact
    coordinates (see :func:`_colocate`).  Defaults give the
    Dartmouth-scale tree (|V| = 178).
    """
    if n < 1 or clusters < 1:
        raise GraphValidationError("n >= 1 and clusters >= 1 required")
    rng = generator_from(seed)
    centers = rng.uniform(0.0, extent, size=(clusters, 2))
    weights = rng.gamma(shape=2.0, scale=1.0, size=clusters)
    weights /= weights.sum()
    assignment = rng.choice(clusters, size=n, p=weights)
    points = centers[assignment] + rng.normal(0.0, cluster_sigma, size=(n, 2))
    points = _colocate(points, colocation, rng)
    return PointCloud(label=f"campus(n={n})", points=points)


def city_model(
    n: int = 17834,
    blocks: int = 24,
    block_size: float = 250.0,
    jitter: float = 60.0,
    density_tail: float = 1.3,
    colocation: float = 0.6,
    seed: SeedLike = None,
) -> PointCloud:
    """City-like WAP layout: a street grid with heavy-tailed block density.

    The city is a ``blocks x blocks`` grid of square blocks.  Each block
    draws a Pareto-distributed density (a few very dense blocks — downtown
    — and many sparse ones), and points are placed near the block's street
    frontage with ``jitter`` meters of noise.  Defaults give the NYC-scale
    tree (|V| = 17,834); pass a smaller ``n`` for laptop-scale runs.
    """
    if n < 1 or blocks < 1:
        raise GraphValidationError("n >= 1 and blocks >= 1 required")
    rng = generator_from(seed)
    density = rng.pareto(density_tail, size=blocks * blocks) + 0.05
    density /= density.sum()
    assignment = rng.choice(blocks * blocks, size=n, p=density)
    bx = (assignment % blocks).astype(np.float64)
    by = (assignment // blocks).astype(np.float64)
    # place points along block edges (street frontage), not interiors
    along = rng.uniform(0.0, block_size, size=n)
    side = rng.integers(0, 4, size=n)
    off = np.zeros((n, 2))
    off[side == 0] = np.stack(
        [along[side == 0], np.zeros((side == 0).sum())], axis=1
    )
    off[side == 1] = np.stack(
        [np.full((side == 1).sum(), block_size), along[side == 1]], axis=1
    )
    off[side == 2] = np.stack(
        [along[side == 2], np.full((side == 2).sum(), block_size)], axis=1
    )
    off[side == 3] = np.stack(
        [np.zeros((side == 3).sum()), along[side == 3]], axis=1
    )
    points = (
        np.stack([bx, by], axis=1) * block_size
        + off
        + rng.normal(0.0, jitter, size=(n, 2))
    )
    points = _colocate(points, colocation, rng)
    return PointCloud(label=f"city(n={n})", points=points)


def threshold_graph(cloud: PointCloud, max_distance: float) -> StaticGraph:
    """Connect every pair of points at Euclidean distance <= *max_distance*.

    This is step (1) of the paper's tree-building pipeline.  Uses a KD-tree
    so the NYC-scale model stays tractable.
    """
    if max_distance <= 0:
        raise GraphValidationError("max_distance must be positive")
    from scipy.spatial import cKDTree

    tree = cKDTree(cloud.points)
    pairs = tree.query_pairs(r=max_distance, output_type="ndarray")
    return StaticGraph.from_arrays(cloud.n, pairs[:, 0], pairs[:, 1])


def euclidean_mst(cloud: PointCloud, graph: StaticGraph) -> StaticGraph:
    """Minimum spanning tree of *graph* weighted by Euclidean edge length.

    Step (2) of the pipeline.  If *graph* is disconnected the MST of the
    largest component is returned, relabeled to ``0..n'-1`` (the paper's
    trees are connected; a too-small threshold would otherwise silently
    yield a forest).
    """
    from scipy.sparse import csr_array
    from scipy.sparse.csgraph import connected_components, minimum_spanning_tree

    if graph.n == 0:
        return graph
    pts = cloud.points
    e = graph.edges
    if len(e) == 0:
        return StaticGraph.from_edges(1, [])
    w = np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
    w = np.maximum(w, 1e-9)  # csgraph treats 0 weights as absent edges
    adj = csr_array(
        (np.concatenate([w, w]), (graph.edge_src, graph.edge_dst)),
        shape=(graph.n, graph.n),
    )
    count, labels = connected_components(adj, directed=False)
    if count > 1:
        sizes = np.bincount(labels)
        keep_label = int(np.argmax(sizes))
        keep = labels == keep_label
        remap = -np.ones(graph.n, dtype=np.int64)
        remap[keep] = np.arange(keep.sum())
        sel = keep[e[:, 0]] & keep[e[:, 1]]
        sub_edges = remap[e[sel]]
        sub_w = w[sel]
        adj = csr_array(
            (
                np.concatenate([sub_w, sub_w]),
                (
                    np.concatenate([sub_edges[:, 0], sub_edges[:, 1]]),
                    np.concatenate([sub_edges[:, 1], sub_edges[:, 0]]),
                ),
            ),
            shape=(int(keep.sum()), int(keep.sum())),
        )
        n_eff = int(keep.sum())
    else:
        n_eff = graph.n
    mst = minimum_spanning_tree(adj)
    rows, cols = mst.nonzero()
    return StaticGraph.from_arrays(n_eff, rows, cols)


def wap_tree(
    cloud: PointCloud, max_distance: float | None = None
) -> StaticGraph:
    """Full paper pipeline: threshold graph -> MST, auto-tuning the
    distance threshold to the smallest value that keeps >= 99% of points in
    one component when *max_distance* is not given."""
    if max_distance is not None:
        return euclidean_mst(cloud, threshold_graph(cloud, max_distance))
    # auto-tune: start from the mean nearest-neighbor distance and double
    from scipy.spatial import cKDTree

    kd = cKDTree(cloud.points)
    nn_dist, _ = kd.query(cloud.points, k=min(2, cloud.n))
    base = float(np.mean(nn_dist[:, -1])) if cloud.n > 1 else 1.0
    radius = max(base * 2.0, 1e-6)
    for _ in range(24):
        g = threshold_graph(cloud, radius)
        count, labels = g.connected_components()
        if count and np.bincount(labels).max() >= 0.99 * cloud.n:
            return euclidean_mst(cloud, g)
        radius *= 1.6
    return euclidean_mst(cloud, threshold_graph(cloud, radius))
