"""Canonical immutable graph types used across the whole library.

All substrates (the faithful message-passing runtime and the vectorized
fast engines) consume :class:`StaticGraph`, a frozen CSR-backed undirected
graph with vertices ``0..n-1``.  ``networkx`` is supported at the boundary
(:meth:`StaticGraph.from_networkx` / :meth:`StaticGraph.to_networkx`) but
never used inside algorithms, so the hot paths stay pure numpy.

Design notes (per the HPC guides):

* neighbor queries are array *views* into the CSR ``indices`` buffer — no
  copies on the hot path;
* the symmetric edge list (``edge_src``/``edge_dst``, both directions) is
  precomputed once so per-round neighbor reductions can be expressed as
  single scatter operations (``np.maximum.at`` et al.);
* everything is validated eagerly at construction and immutable after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["StaticGraph", "RootedTree", "GraphValidationError"]


class GraphValidationError(ValueError):
    """Raised when construction input does not describe a simple graph."""


def _normalize_edges(n: int, edges: Iterable[tuple[int, int]]) -> np.ndarray:
    """Validate and canonicalize an undirected edge list.

    Returns an ``(m, 2)`` int64 array with ``u < v`` per row, sorted
    lexicographically, duplicates rejected.
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphValidationError("edges must be pairs of vertex indices")
    if arr.min() < 0 or arr.max() >= n:
        raise GraphValidationError(
            f"edge endpoint out of range [0, {n}): "
            f"min={arr.min()}, max={arr.max()}"
        )
    if np.any(arr[:, 0] == arr[:, 1]):
        raise GraphValidationError("self-loops are not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    canon = np.stack([lo, hi], axis=1)
    order = np.lexsort((canon[:, 1], canon[:, 0]))
    canon = canon[order]
    if len(canon) > 1 and np.any(np.all(canon[1:] == canon[:-1], axis=1)):
        raise GraphValidationError("duplicate (parallel) edges are not allowed")
    return canon


@dataclass(frozen=True)
class StaticGraph:
    """An immutable simple undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(m, 2)`` canonical edge array (``u < v``, sorted, no duplicates).
        Use :meth:`from_edges` / :meth:`from_networkx` rather than the raw
        constructor.
    """

    n: int
    edges: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "StaticGraph":
        """Build a graph from any iterable of undirected edges."""
        if n < 0:
            raise GraphValidationError("n must be non-negative")
        return cls(n=n, edges=_normalize_edges(n, edges))

    @classmethod
    def _from_shared_parts(
        cls,
        n: int,
        edges: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        content_hash: str,
    ) -> "StaticGraph":
        """Assemble a graph from pre-built (shared-memory) arrays.

        Trusted path for :mod:`repro.graphs.shm`: the arrays were produced
        by a validated graph on the exporter side, so validation is skipped
        and the CSR + content hash are injected straight into the cache
        slots (``cached_property`` stores into ``__dict__``) — attaching a
        graph never recomputes anything.
        """
        graph = cls(n=n, edges=edges)
        graph.__dict__["_csr"] = (indptr, indices)
        graph.__dict__["_content_hash"] = content_hash
        return graph

    @property
    def payload_nbytes(self) -> int:
        """Bytes of array data a pickled transport would copy per worker
        (edge list plus cached CSR)."""
        indptr, indices = self._csr
        return int(self.edges.nbytes + indptr.nbytes + indices.nbytes)

    @classmethod
    def from_networkx(cls, graph) -> "StaticGraph":
        """Convert a ``networkx`` graph with arbitrary hashable labels.

        Labels are mapped to ``0..n-1`` in sorted order when sortable, else
        in insertion order.
        """
        nodes = list(graph.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls.from_edges(len(nodes), edges)

    def to_networkx(self):
        """Return the graph as a ``networkx.Graph`` (for inspection only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges.tolist()))
        return g

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.edges.shape[0])

    @cached_property
    def _csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency: (indptr, indices) over the symmetrized edges."""
        src = self.edge_src
        dst = self.edge_dst
        order = np.argsort(src, kind="stable")
        indices = dst[order]
        counts = np.bincount(src, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, indices

    @cached_property
    def edge_src(self) -> np.ndarray:
        """Source endpoints of the *symmetrized* edge list (length 2m)."""
        if self.m == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.edges[:, 0], self.edges[:, 1]])

    @cached_property
    def edge_dst(self) -> np.ndarray:
        """Destination endpoints of the symmetrized edge list (length 2m)."""
        if self.m == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.edges[:, 1], self.edges[:, 0]])

    @cached_property
    def degrees(self) -> np.ndarray:
        """Vertex degrees as an int64 array of length ``n``."""
        return np.bincount(self.edge_src, minlength=self.n).astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` as a read-only array view (no copy)."""
        indptr, indices = self._csr
        view = indices[indptr[v] : indptr[v + 1]]
        view.setflags(write=False)
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        i = np.searchsorted(np.sort(nbrs), v)
        return i < len(nbrs) and int(np.sort(nbrs)[i]) == v

    @cached_property
    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self.n else 0

    def content_hash(self) -> str:
        """Stable content-addressed digest of the *labeled* graph.

        Two graphs hash identically iff they have the same vertex count and
        the same edge set — regardless of the order edges were supplied in
        (construction canonicalizes the edge list).  Relabeling vertices
        changes the hash: this is labeled-graph identity, not isomorphism,
        which is exactly what result caching needs (join probabilities are
        per-label).  The digest is platform-stable (fixed endianness).
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            import hashlib

            h = hashlib.sha256(b"repro-static-graph-v1")
            h.update(int(self.n).to_bytes(8, "little"))
            h.update(np.ascontiguousarray(self.edges, dtype="<i8").tobytes())
            cached = h.hexdigest()
            self.__dict__["_content_hash"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def adjacency_csr(self):
        """Return adjacency as a ``scipy.sparse.csr_array`` of 1s."""
        from scipy.sparse import csr_array

        indptr, indices = self._csr
        data = np.ones(len(indices), dtype=np.int8)
        return csr_array((data, indices, indptr), shape=(self.n, self.n))

    def connected_components(self) -> tuple[int, np.ndarray]:
        """Label connected components; returns ``(count, labels)``."""
        from scipy.sparse.csgraph import connected_components

        if self.n == 0:
            return 0, np.empty(0, dtype=np.int64)
        count, labels = connected_components(self.adjacency_csr(), directed=False)
        return int(count), labels.astype(np.int64)

    def is_connected(self) -> bool:
        """True iff the graph has at most one connected component."""
        return self.n <= 1 or self.connected_components()[0] == 1

    def is_tree(self) -> bool:
        """True iff connected and ``m == n - 1``."""
        return self.n > 0 and self.m == self.n - 1 and self.is_connected()

    def is_forest(self) -> bool:
        """True iff acyclic (``m == n - #components``)."""
        count, _ = self.connected_components()
        return self.m == self.n - count

    def subgraph_mask(self, keep: np.ndarray) -> "StaticGraph":
        """Induced subgraph on ``keep`` (bool mask), *preserving* vertex ids.

        Vertices outside the mask become isolated; this keeps indices stable
        which is what the staged algorithms need ("run on the subgraph
        induced by the still-active nodes").
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n,):
            raise GraphValidationError("mask must have shape (n,)")
        if self.m == 0:
            return self
        e = self.edges
        sel = keep[e[:, 0]] & keep[e[:, 1]]
        return StaticGraph(n=self.n, edges=e[sel])

    def bfs_order(self, source: int) -> np.ndarray:
        """Vertices of ``source``'s component in BFS order."""
        from scipy.sparse.csgraph import breadth_first_order

        order, _ = breadth_first_order(
            self.adjacency_csr(), source, directed=False, return_predecessors=True
        )
        return order.astype(np.int64)

    def bfs_levels(self, sources: Sequence[int] | np.ndarray) -> np.ndarray:
        """Hop distance from the nearest source; ``-1`` if unreachable.

        Implemented as vectorized frontier expansion over the symmetric
        edge list — one ``O(m)`` scatter per BFS level.
        """
        level = np.full(self.n, -1, dtype=np.int64)
        src_arr = np.asarray(sources, dtype=np.int64)
        if src_arr.size == 0:
            return level
        level[src_arr] = 0
        frontier = np.zeros(self.n, dtype=bool)
        frontier[src_arr] = True
        depth = 0
        es, ed = self.edge_src, self.edge_dst
        while frontier.any():
            depth += 1
            hit = frontier[es]
            nxt = np.zeros(self.n, dtype=bool)
            nxt[ed[hit]] = True
            nxt &= level < 0
            level[nxt] = depth
            frontier = nxt
        return level

    def diameter(self) -> int:
        """Exact diameter (max eccentricity); ``inf``-free: requires
        a connected graph, raises otherwise."""
        if self.n == 0:
            raise GraphValidationError("diameter of the empty graph is undefined")
        if not self.is_connected():
            raise GraphValidationError("diameter requires a connected graph")
        if self.n == 1:
            return 0
        # Trees admit the double-BFS trick; general graphs fall back to
        # per-vertex BFS (used only in tests / small experiments).
        if self.is_tree():
            lv = self.bfs_levels([0])
            far = int(np.argmax(lv))
            lv2 = self.bfs_levels([far])
            return int(lv2.max())
        ecc = 0
        for v in range(self.n):
            ecc = max(ecc, int(self.bfs_levels([v]).max()))
        return ecc

    def bipartition(self) -> np.ndarray | None:
        """2-coloring as a 0/1 array, or ``None`` if not bipartite."""
        color = np.full(self.n, -1, dtype=np.int8)
        es, ed = self.edge_src, self.edge_dst
        for start in range(self.n):
            if color[start] >= 0:
                continue
            color[start] = 0
            frontier = np.zeros(self.n, dtype=bool)
            frontier[start] = True
            while frontier.any():
                hit = frontier[es]
                touched_from = es[hit]
                touched_to = ed[hit]
                want = (1 - color[touched_from]).astype(np.int8)
                fresh = color[touched_to] < 0
                conflict = (~fresh) & (color[touched_to] != want)
                if conflict.any():
                    return None
                nxt = np.zeros(self.n, dtype=bool)
                # assign colors to freshly touched vertices
                color[touched_to[fresh]] = want[fresh]
                nxt[touched_to[fresh]] = True
                frontier = nxt
        return color.astype(np.int64)

    def is_bipartite(self) -> bool:
        """True iff the graph admits a proper 2-coloring."""
        return self.bipartition() is not None

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticGraph):
            return NotImplemented
        return self.n == other.n and np.array_equal(self.edges, other.edges)

    def __hash__(self) -> int:
        return hash((self.n, self.edges.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticGraph(n={self.n}, m={self.m})"


@dataclass(frozen=True)
class RootedTree:
    """A rooted tree (or forest): a :class:`StaticGraph` plus parent pointers.

    ``parent[v] == -1`` marks a root.  Used by FAIRROOTED and Cole–Vishkin,
    which assume each internal node knows its parent (Section IV).
    """

    graph: StaticGraph
    parent: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        p = np.asarray(self.parent, dtype=np.int64)
        object.__setattr__(self, "parent", p)
        if p.shape != (self.graph.n,):
            raise GraphValidationError("parent array must have shape (n,)")
        if not self.graph.is_forest():
            raise GraphValidationError("underlying graph must be acyclic")
        nonroot = p >= 0
        if nonroot.any():
            kids = np.nonzero(nonroot)[0]
            for v, u in zip(kids.tolist(), p[kids].tolist()):
                if not any(int(w) == u for w in self.graph.neighbors(v)):
                    raise GraphValidationError(
                        f"parent[{v}]={u} is not adjacent to {v}"
                    )
        # every tree edge must be a parent link in one direction
        e = self.graph.edges
        for u, v in map(tuple, e.tolist()):
            if p[u] != v and p[v] != u:
                raise GraphValidationError(
                    f"edge ({u},{v}) is not oriented by the parent array"
                )

    @classmethod
    def from_graph(cls, graph: StaticGraph, root: int = 0) -> "RootedTree":
        """Root a tree/forest by BFS from ``root`` (and from the minimum
        unvisited vertex of every other component)."""
        parent = np.full(graph.n, -1, dtype=np.int64)
        visited = np.zeros(graph.n, dtype=bool)
        order = [root] + [v for v in range(graph.n) if v != root]
        for start in order:
            if visited[start]:
                continue
            visited[start] = True
            queue = [start]
            while queue:
                u = queue.pop()
                for w in graph.neighbors(u):
                    w = int(w)
                    if not visited[w]:
                        visited[w] = True
                        parent[w] = u
                        queue.append(w)
        return cls(graph=graph, parent=parent)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.n

    @cached_property
    def roots(self) -> np.ndarray:
        """Indices of all roots (vertices with no parent)."""
        return np.nonzero(self.parent < 0)[0]

    @cached_property
    def depth(self) -> np.ndarray:
        """Depth of every vertex (roots have depth 0)."""
        return self.graph.bfs_levels(self.roots)

    def children(self, v: int) -> np.ndarray:
        """Children of ``v`` (neighbors whose parent is ``v``)."""
        nbrs = self.graph.neighbors(v)
        return nbrs[self.parent[nbrs] == v]
