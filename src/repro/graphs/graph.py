"""Canonical immutable graph types used across the whole library.

All substrates (the faithful message-passing runtime and the vectorized
fast engines) consume :class:`StaticGraph`, a frozen CSR-backed undirected
graph with vertices ``0..n-1``.  ``networkx`` is supported at the boundary
(:meth:`StaticGraph.from_networkx` / :meth:`StaticGraph.to_networkx`) but
never used inside algorithms, so the hot paths stay pure numpy.

Design notes (per the HPC guides):

* neighbor queries are array *views* into the CSR ``indices`` buffer — no
  copies on the hot path;
* the symmetric edge list (``edge_src``/``edge_dst``, both directions) is
  precomputed once so per-round neighbor reductions can be expressed as
  single scatter operations (``np.maximum.at`` et al.);
* everything is validated eagerly at construction and immutable after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..obs.profile import phase

__all__ = ["StaticGraph", "RootedTree", "GraphValidationError"]


class GraphValidationError(ValueError):
    """Raised when construction input does not describe a simple graph."""


def _validate_endpoints(n: int, src: np.ndarray, dst: np.ndarray) -> None:
    """Range and self-loop checks shared by every construction path."""
    lo_min = min(int(src.min()), int(dst.min()))
    hi_max = max(int(src.max()), int(dst.max()))
    if lo_min < 0 or hi_max >= n:
        raise GraphValidationError(
            f"edge endpoint out of range [0, {n}): "
            f"min={lo_min}, max={hi_max}"
        )
    if np.any(src == dst):
        raise GraphValidationError("self-loops are not allowed")


def _is_strictly_sorted(lo: np.ndarray, hi: np.ndarray) -> bool:
    """True iff ``(lo, hi)`` rows are strictly increasing lexicographically
    (which also implies there are no duplicate rows)."""
    if lo.shape[0] <= 1:
        return True
    d_lo = np.diff(lo)
    d_hi = np.diff(hi)
    return bool(np.all((d_lo > 0) | ((d_lo == 0) & (d_hi > 0))))


def _canonicalize_arrays(
    n: int, src: np.ndarray, dst: np.ndarray, dedup: bool, validate: bool = True
) -> np.ndarray:
    """Vectorized canonicalization of endpoint arrays.

    Returns an ``(m, 2)`` int64 array with ``u < v`` per row, sorted
    lexicographically; duplicates are rejected (or dropped when *dedup*).
    No per-edge Python objects are created at any point.
    """
    if src.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    if validate:
        _validate_endpoints(n, src, dst)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    if not _is_strictly_sorted(lo, hi):
        if n <= np.iinfo(np.int32).max:
            # fused (lo, hi) sort key: one in-place C sort, no index
            # array and no gather passes (n^2 fits int64 up to 2^31)
            key = lo * np.int64(n)
            key += hi
            key.sort()
            dup = np.diff(key) == 0
            if dup.any():
                if not dedup:
                    raise GraphValidationError(
                        "duplicate (parallel) edges are not allowed"
                    )
                keep = np.empty(key.shape[0], dtype=bool)
                keep[0] = True
                np.logical_not(dup, out=keep[1:])
                key = key[keep]
            lo = key // np.int64(n)
            hi = key - lo * np.int64(n)
        else:
            order = np.lexsort((hi, lo))
            lo = lo[order]
            hi = hi[order]
            dup = (np.diff(lo) == 0) & (np.diff(hi) == 0)
            if dup.any():
                if not dedup:
                    raise GraphValidationError(
                        "duplicate (parallel) edges are not allowed"
                    )
                keep = np.empty(lo.shape[0], dtype=bool)
                keep[0] = True
                np.logical_not(dup, out=keep[1:])
                lo = lo[keep]
                hi = hi[keep]
    canon = np.empty((lo.shape[0], 2), dtype=np.int64)
    canon[:, 0] = lo
    canon[:, 1] = hi
    return canon


def _normalize_edges(
    n: int, edges: "Iterable[tuple[int, int]] | np.ndarray", dedup: bool = False
) -> np.ndarray:
    """Validate and canonicalize an undirected edge list.

    Returns an ``(m, 2)`` int64 array with ``u < v`` per row, sorted
    lexicographically, duplicates rejected (dropped when *dedup*).

    Array input takes a fully vectorized path — no round trip through a
    Python list — and an already-canonical int64 array is returned
    **as-is** (no copy), which is what makes memmap-backed and
    shared-memory graphs O(1) to wrap.
    """
    if isinstance(edges, np.ndarray):
        arr = edges
        if arr.size and arr.dtype != np.int64:
            if not np.issubdtype(arr.dtype, np.integer):
                raise GraphValidationError("edge array must be integral")
            arr = arr.astype(np.int64)
    else:
        arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphValidationError("edges must be pairs of vertex indices")
    src = arr[:, 0]
    dst = arr[:, 1]
    _validate_endpoints(n, src, dst)
    if bool(np.all(src < dst)) and _is_strictly_sorted(src, dst):
        return arr  # already canonical: zero-copy
    return _canonicalize_arrays(n, src, dst, dedup, validate=False)


@dataclass(frozen=True)
class StaticGraph:
    """An immutable simple undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(m, 2)`` canonical edge array (``u < v``, sorted, no duplicates).
        Use :meth:`from_edges` / :meth:`from_networkx` rather than the raw
        constructor.
    """

    n: int
    edges: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: "Iterable[tuple[int, int]] | np.ndarray",
        dedup: bool = False,
    ) -> "StaticGraph":
        """Build a graph from any iterable (or ``(m, 2)`` array) of edges.

        Thin compatibility wrapper over the array-native path: ndarray
        input is canonicalized without touching per-edge Python objects,
        anything else is materialized once and handed to the same
        vectorized pipeline.  With ``dedup=True`` parallel edges are
        dropped instead of rejected.
        """
        if n < 0:
            raise GraphValidationError("n must be non-negative")
        with phase("graph.build"):
            return cls(n=n, edges=_normalize_edges(n, edges, dedup=dedup))

    @classmethod
    def from_arrays(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        dedup: bool = False,
    ) -> "StaticGraph":
        """Build a graph from parallel endpoint arrays — the fast path.

        *src*/*dst* are 1-D integer arrays of equal length; edge ``i`` is
        ``{src[i], dst[i]}``.  Canonicalization (direction, sort, dup
        check) is fully vectorized and creates no per-edge Python
        objects, so constructing a million-edge graph costs a handful of
        O(m) array passes.  With ``dedup=True`` duplicate edges are
        dropped instead of rejected (useful for triangulations and raw
        edge-list files where both directions may appear).
        """
        if n < 0:
            raise GraphValidationError("n must be non-negative")
        with phase("graph.build"):
            src = np.ascontiguousarray(src, dtype=np.int64)
            dst = np.ascontiguousarray(dst, dtype=np.int64)
            if src.ndim != 1 or src.shape != dst.shape:
                raise GraphValidationError(
                    "src and dst must be 1-D arrays of equal length"
                )
            return cls(n=n, edges=_canonicalize_arrays(n, src, dst, dedup))

    @classmethod
    def _from_shared_parts(
        cls,
        n: int,
        edges: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        content_hash: str,
    ) -> "StaticGraph":
        """Assemble a graph from pre-built (shared-memory) arrays.

        Trusted path for :mod:`repro.graphs.shm`: the arrays were produced
        by a validated graph on the exporter side, so validation is skipped
        and the CSR + content hash are injected straight into the cache
        slots (``cached_property`` stores into ``__dict__``) — attaching a
        graph never recomputes anything.
        """
        graph = cls(n=n, edges=edges)
        graph.__dict__["_csr"] = (indptr, indices)
        graph.__dict__["_content_hash"] = content_hash
        return graph

    @property
    def payload_nbytes(self) -> int:
        """Bytes of array data a pickled transport would copy per worker
        (edge list plus cached CSR)."""
        indptr, indices = self._csr
        return int(self.edges.nbytes + indptr.nbytes + indices.nbytes)

    @classmethod
    def from_networkx(cls, graph) -> "StaticGraph":
        """Convert a ``networkx`` graph with arbitrary hashable labels.

        Labels are mapped to ``0..n-1`` in sorted order when sortable, else
        in insertion order.
        """
        nodes = list(graph.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls.from_edges(len(nodes), edges)

    def to_networkx(self):
        """Return the graph as a ``networkx.Graph`` (for inspection only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges.tolist()))
        return g

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.edges.shape[0])

    @cached_property
    def _csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency: (indptr, indices) over the symmetrized edges.

        Exploits the canonical edge order: edges are sorted by ``lo``, so
        each vertex's lo-block is already a contiguous run and only the
        ``hi`` endpoints need one (half-length) stable sort.  Produces
        byte-identical output to a stable argsort of the symmetrized
        source array — per vertex, lo-entries precede hi-entries, each
        block in edge order — at roughly half the cost.
        """
        with phase("graph.csr"):
            n = self.n
            e = self.edges
            m = int(e.shape[0])
            if m == 0:
                return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
            lo = e[:, 0]
            hi = e[:, 1]
            counts_lo = np.bincount(lo, minlength=n)
            counts_hi = np.bincount(hi, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts_lo + counts_hi, out=indptr[1:])
            lo_start = np.zeros(n, dtype=np.int64)
            np.cumsum(counts_lo[:-1], out=lo_start[1:])
            hi_start = np.zeros(n, dtype=np.int64)
            np.cumsum(counts_hi[:-1], out=hi_start[1:])
            j = np.arange(m, dtype=np.int64)
            ho = np.argsort(hi, kind="stable")
            sh = hi[ho]
            indices = np.empty(2 * m, dtype=np.int64)
            indices[indptr[lo] + (j - lo_start[lo])] = hi
            indices[indptr[sh] + counts_lo[sh] + (j - hi_start[sh])] = lo[ho]
            return indptr, indices

    @cached_property
    def edge_src(self) -> np.ndarray:
        """Source endpoints of the *symmetrized* edge list (length 2m)."""
        if self.m == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.edges[:, 0], self.edges[:, 1]])

    @cached_property
    def edge_dst(self) -> np.ndarray:
        """Destination endpoints of the symmetrized edge list (length 2m)."""
        if self.m == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.edges[:, 1], self.edges[:, 0]])

    @cached_property
    def degrees(self) -> np.ndarray:
        """Vertex degrees as an int64 array of length ``n``."""
        return np.bincount(self.edge_src, minlength=self.n).astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` as a read-only array view (no copy)."""
        indptr, indices = self._csr
        view = indices[indptr[v] : indptr[v + 1]]
        view.setflags(write=False)
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        i = np.searchsorted(np.sort(nbrs), v)
        return i < len(nbrs) and int(np.sort(nbrs)[i]) == v

    @cached_property
    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self.n else 0

    def content_hash(self) -> str:
        """Stable content-addressed digest of the *labeled* graph.

        Two graphs hash identically iff they have the same vertex count and
        the same edge set — regardless of the order edges were supplied in
        (construction canonicalizes the edge list).  Relabeling vertices
        changes the hash: this is labeled-graph identity, not isomorphism,
        which is exactly what result caching needs (join probabilities are
        per-label).  The digest is platform-stable (fixed endianness).
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            import hashlib

            h = hashlib.sha256(b"repro-static-graph-v1")
            h.update(int(self.n).to_bytes(8, "little"))
            h.update(np.ascontiguousarray(self.edges, dtype="<i8").tobytes())
            cached = h.hexdigest()
            self.__dict__["_content_hash"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def adjacency_csr(self):
        """Return adjacency as a ``scipy.sparse.csr_array`` of 1s."""
        from scipy.sparse import csr_array

        indptr, indices = self._csr
        data = np.ones(len(indices), dtype=np.int8)
        return csr_array((data, indices, indptr), shape=(self.n, self.n))

    @cached_property
    def _components(self) -> tuple[int, np.ndarray]:
        from scipy.sparse.csgraph import connected_components

        if self.n == 0:
            return 0, np.empty(0, dtype=np.int64)
        count, labels = connected_components(self.adjacency_csr(), directed=False)
        return int(count), labels.astype(np.int64)

    def connected_components(self) -> tuple[int, np.ndarray]:
        """Label connected components; returns ``(count, labels)``.

        Cached: rooting a tree asks for components twice (BFS rooting and
        the forest check), so the union-find pass runs once per graph.
        """
        return self._components

    def is_connected(self) -> bool:
        """True iff the graph has at most one connected component."""
        return self.n <= 1 or self.connected_components()[0] == 1

    def is_tree(self) -> bool:
        """True iff connected and ``m == n - 1``."""
        return self.n > 0 and self.m == self.n - 1 and self.is_connected()

    def is_forest(self) -> bool:
        """True iff acyclic (``m == n - #components``)."""
        count, _ = self.connected_components()
        return self.m == self.n - count

    def subgraph_mask(self, keep: np.ndarray) -> "StaticGraph":
        """Induced subgraph on ``keep`` (bool mask), *preserving* vertex ids.

        Vertices outside the mask become isolated; this keeps indices stable
        which is what the staged algorithms need ("run on the subgraph
        induced by the still-active nodes").
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n,):
            raise GraphValidationError("mask must have shape (n,)")
        if self.m == 0:
            return self
        e = self.edges
        sel = keep[e[:, 0]] & keep[e[:, 1]]
        return StaticGraph(n=self.n, edges=e[sel])

    def bfs_order(self, source: int) -> np.ndarray:
        """Vertices of ``source``'s component in BFS order."""
        from scipy.sparse.csgraph import breadth_first_order

        order, _ = breadth_first_order(
            self.adjacency_csr(), source, directed=False, return_predecessors=True
        )
        return order.astype(np.int64)

    def bfs_levels(self, sources: Sequence[int] | np.ndarray) -> np.ndarray:
        """Hop distance from the nearest source; ``-1`` if unreachable.

        Implemented as vectorized frontier expansion over the symmetric
        edge list — one ``O(m)`` scatter per BFS level.
        """
        level = np.full(self.n, -1, dtype=np.int64)
        src_arr = np.asarray(sources, dtype=np.int64)
        if src_arr.size == 0:
            return level
        level[src_arr] = 0
        frontier = np.zeros(self.n, dtype=bool)
        frontier[src_arr] = True
        depth = 0
        es, ed = self.edge_src, self.edge_dst
        while frontier.any():
            depth += 1
            hit = frontier[es]
            nxt = np.zeros(self.n, dtype=bool)
            nxt[ed[hit]] = True
            nxt &= level < 0
            level[nxt] = depth
            frontier = nxt
        return level

    def diameter(self) -> int:
        """Exact diameter (max eccentricity); ``inf``-free: requires
        a connected graph, raises otherwise."""
        if self.n == 0:
            raise GraphValidationError("diameter of the empty graph is undefined")
        if not self.is_connected():
            raise GraphValidationError("diameter requires a connected graph")
        if self.n == 1:
            return 0
        # Trees admit the double-BFS trick; general graphs fall back to
        # per-vertex BFS (used only in tests / small experiments).
        if self.is_tree():
            lv = self.bfs_levels([0])
            far = int(np.argmax(lv))
            lv2 = self.bfs_levels([far])
            return int(lv2.max())
        ecc = 0
        for v in range(self.n):
            ecc = max(ecc, int(self.bfs_levels([v]).max()))
        return ecc

    def bipartition(self) -> np.ndarray | None:
        """2-coloring as a 0/1 array, or ``None`` if not bipartite."""
        color = np.full(self.n, -1, dtype=np.int8)
        es, ed = self.edge_src, self.edge_dst
        for start in range(self.n):
            if color[start] >= 0:
                continue
            color[start] = 0
            frontier = np.zeros(self.n, dtype=bool)
            frontier[start] = True
            while frontier.any():
                hit = frontier[es]
                touched_from = es[hit]
                touched_to = ed[hit]
                want = (1 - color[touched_from]).astype(np.int8)
                fresh = color[touched_to] < 0
                conflict = (~fresh) & (color[touched_to] != want)
                if conflict.any():
                    return None
                nxt = np.zeros(self.n, dtype=bool)
                # assign colors to freshly touched vertices
                color[touched_to[fresh]] = want[fresh]
                nxt[touched_to[fresh]] = True
                frontier = nxt
        return color.astype(np.int64)

    def is_bipartite(self) -> bool:
        """True iff the graph admits a proper 2-coloring."""
        return self.bipartition() is not None

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticGraph):
            return NotImplemented
        return self.n == other.n and np.array_equal(self.edges, other.edges)

    def __hash__(self) -> int:
        return hash((self.n, self.edges.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticGraph(n={self.n}, m={self.m})"


@dataclass(frozen=True)
class RootedTree:
    """A rooted tree (or forest): a :class:`StaticGraph` plus parent pointers.

    ``parent[v] == -1`` marks a root.  Used by FAIRROOTED and Cole–Vishkin,
    which assume each internal node knows its parent (Section IV).
    """

    graph: StaticGraph
    parent: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        p = np.asarray(self.parent, dtype=np.int64)
        object.__setattr__(self, "parent", p)
        n = self.graph.n
        if p.shape != (n,):
            raise GraphValidationError("parent array must have shape (n,)")
        if p.size and int(p.max()) >= n:
            raise GraphValidationError(
                f"parent index out of range [0, {n}): max={int(p.max())}"
            )
        # Forest certificate without touching the adjacency structure:
        # (1) every edge is oriented by the parent array, (2) the edge
        # count matches the non-root count, (3) parent pointers are
        # acyclic.  Together these prove the edge set is exactly the
        # forest of parent links — no connected-components pass needed.
        e = self.graph.edges
        if e.size:
            oriented = (p[e[:, 0]] == e[:, 1]) | (p[e[:, 1]] == e[:, 0])
            if not oriented.all():
                u, v = e[int(np.argmin(oriented))]
                raise GraphValidationError(
                    f"edge ({u},{v}) is not oriented by the parent array"
                )
        # With all m edges oriented, each edge claims a distinct child
        # (a vertex has one parent), so m == #non-roots iff every
        # non-root's parent link {v, parent[v]} is a real edge.
        nonroot = p >= 0
        if int(nonroot.sum()) != self.graph.m:
            kids = np.nonzero(nonroot)[0]
            pk = p[kids]
            lo = np.minimum(kids, pk)
            hi = np.maximum(kids, pk)
            key = lo * np.int64(max(n, 1)) + hi
            edge_key = e[:, 0] * np.int64(max(n, 1)) + e[:, 1]  # sorted
            pos = np.searchsorted(edge_key, key)
            pos = np.minimum(pos, max(len(edge_key) - 1, 0))
            missing = (
                np.ones(len(kids), dtype=bool)
                if len(edge_key) == 0
                else edge_key[pos] != key
            )
            bad = int(np.argmax(missing))
            raise GraphValidationError(
                f"parent[{kids[bad]}]={pk[bad]} is not adjacent to {kids[bad]}"
            )
        # (3) acyclicity by pointer doubling: after k squarings every
        # vertex has followed 2^k parent hops; in a forest all chains
        # absorb into -1 within depth hops, so a live vertex past ~n
        # hops is on a cycle.
        anc = p.copy()
        hops = 1
        while bool((anc >= 0).any()):
            if hops > 2 * n:
                raise GraphValidationError("underlying graph must be acyclic")
            safe = np.maximum(anc, 0)
            anc = np.where(anc >= 0, anc[safe], np.int64(-1))
            hops *= 2

    @classmethod
    def from_graph(cls, graph: StaticGraph, root: int = 0) -> "RootedTree":
        """Root a tree/forest by BFS from ``root`` (and from the minimum
        unvisited vertex of every other component).

        Implemented as one C-level BFS from a virtual super-root wired
        to every component root, so million-node trees root in O(m)
        array time regardless of depth.  For forests the parent
        assignment is order-independent (each vertex has a unique path
        to its component's root), hence identical to the historical
        sequential traversal.
        """
        from scipy.sparse import csr_array
        from scipy.sparse.csgraph import breadth_first_order

        n = graph.n
        if n == 0:
            return cls(graph=graph, parent=np.full(0, -1, dtype=np.int64))
        _, labels = graph.connected_components()
        # one root per component: the minimum vertex, except that the
        # requested root wins its own component
        roots = np.full(int(labels.max()) + 1, n, dtype=np.int64)
        np.minimum.at(roots, labels, np.arange(n, dtype=np.int64))
        roots[labels[root]] = root
        # Augment the cached CSR with one extra row (the super-root's
        # out-edges to every component root) instead of rebuilding the
        # matrix from COO triples — O(m) memcpy, no re-sort.  The graph's
        # own rows are symmetric, so a directed BFS from the super-root
        # still reaches (and correctly parents) every vertex.
        indptr, indices = graph._csr
        indptr_aug = np.concatenate(
            [indptr, [indptr[-1] + len(roots)]]
        ).astype(np.int64)
        indices_aug = np.concatenate([indices, roots])
        adj = csr_array(
            (np.ones(len(indices_aug), dtype=np.int8), indices_aug, indptr_aug),
            shape=(n + 1, n + 1),
        )
        _, pred = breadth_first_order(
            adj, n, directed=True, return_predecessors=True
        )
        parent = pred[:n].astype(np.int64)
        parent[(parent == n) | (parent < 0)] = -1
        return cls(graph=graph, parent=parent)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.n

    @cached_property
    def roots(self) -> np.ndarray:
        """Indices of all roots (vertices with no parent)."""
        return np.nonzero(self.parent < 0)[0]

    @cached_property
    def depth(self) -> np.ndarray:
        """Depth of every vertex (roots have depth 0)."""
        return self.graph.bfs_levels(self.roots)

    def children(self, v: int) -> np.ndarray:
        """Children of ``v`` (neighbors whose parent is ``v``)."""
        nbrs = self.graph.neighbors(v)
        return nbrs[self.parent[nbrs] == v]
