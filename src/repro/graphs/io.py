"""Persistence for graphs, point clouds, and join estimates.

Downstream users of an evaluation want to pin the exact topologies and
counts a result was produced from.  Formats:

* graphs — compressed ``.npz`` (n + canonical edge array), stable across
  numpy versions; paths ending in ``.reprograph`` dispatch to the
  memmap-backed columnar format (:mod:`repro.graphs.diskgraph`) instead,
  which is the right choice for million-node graphs;
* point clouds — ``.npz`` with coordinates and label;
* join estimates — ``.npz`` with counts + trials (merge-friendly, see
  :meth:`repro.analysis.fairness.JoinEstimate.merge`).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .geometric import PointCloud
from .graph import StaticGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.fairness import JoinEstimate

__all__ = [
    "save_graph",
    "load_graph",
    "save_point_cloud",
    "load_point_cloud",
    "save_estimate",
    "load_estimate",
]


def save_graph(path: str | Path, graph: StaticGraph) -> None:
    """Write *graph* to ``path`` (``.npz``, or ``.reprograph`` by suffix)."""
    path = Path(path)
    if path.suffix == ".reprograph":
        from .diskgraph import save_reprograph

        save_reprograph(path, graph)
        return
    np.savez_compressed(
        path, kind="static_graph", n=np.int64(graph.n), edges=graph.edges
    )


def load_graph(path: str | Path) -> StaticGraph:
    """Read a graph written by :func:`save_graph` (either format)."""
    path = Path(path)
    if path.suffix == ".reprograph":
        from .diskgraph import load_reprograph

        return load_reprograph(path)
    with np.load(path, allow_pickle=False) as data:
        if str(data["kind"]) != "static_graph":
            raise ValueError(f"{path}: not a saved StaticGraph")
        return StaticGraph.from_edges(int(data["n"]), data["edges"])


def save_point_cloud(path: str | Path, cloud: PointCloud) -> None:
    """Write *cloud* to ``path`` (``.npz``)."""
    np.savez_compressed(
        Path(path), kind="point_cloud", label=cloud.label, points=cloud.points
    )


def load_point_cloud(path: str | Path) -> PointCloud:
    """Read a point cloud written by :func:`save_point_cloud`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["kind"]) != "point_cloud":
            raise ValueError(f"{path}: not a saved PointCloud")
        return PointCloud(label=str(data["label"]), points=data["points"])


def save_estimate(path: str | Path, estimate: "JoinEstimate") -> None:
    """Write a join estimate (counts + trials) to ``path`` (``.npz``)."""
    np.savez_compressed(
        Path(path),
        kind="join_estimate",
        counts=estimate.counts,
        trials=np.int64(estimate.trials),
    )


def load_estimate(path: str | Path) -> "JoinEstimate":
    """Read a join estimate written by :func:`save_estimate`."""
    from ..analysis.fairness import JoinEstimate

    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["kind"]) != "join_estimate":
            raise ValueError(f"{path}: not a saved JoinEstimate")
        return JoinEstimate(counts=data["counts"], trials=int(data["trials"]))
