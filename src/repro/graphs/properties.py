"""Structural graph properties used by the analysis layer (substrate S4).

These are *centralized* helpers (degeneracy, arboricity bounds, parity
classes, eccentricities) used to parameterize and validate the distributed
algorithms — never called from inside a node process.
"""

from __future__ import annotations

import numpy as np

from .graph import GraphValidationError, StaticGraph

__all__ = [
    "degeneracy",
    "degeneracy_ordering",
    "arboricity_upper_bound",
    "parity_classes",
    "eccentricities",
    "degree_histogram",
    "leaf_fraction",
]


def degeneracy_ordering(graph: StaticGraph) -> tuple[int, np.ndarray]:
    """Smallest-last vertex ordering; returns ``(degeneracy, order)``.

    Classic bucket-queue peeling in ``O(n + m)``.  The degeneracy ``d``
    upper-bounds arboricity (``a <= d``) and lower-bounds it
    (``a >= d/2``), so it calibrates the palette for the low-arboricity
    coloring of Section VII.
    """
    n = graph.n
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    deg = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # bucket queue keyed by current degree
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    degeneracy = 0
    cursor = 0
    for i in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        # the bucket may hold stale entries; skip them
        while True:
            v = buckets[cursor].pop()
            if not removed[v] and deg[v] == cursor:
                break
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
        removed[v] = True
        order[i] = v
        degeneracy = max(degeneracy, cursor)
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                deg[w] -= 1
                buckets[deg[w]].append(w)
                if deg[w] < cursor:
                    cursor = deg[w]
    return degeneracy, order


def degeneracy(graph: StaticGraph) -> int:
    """The degeneracy (max over subgraphs of the minimum degree)."""
    return degeneracy_ordering(graph)[0]


def arboricity_upper_bound(graph: StaticGraph) -> int:
    """A cheap upper bound on arboricity: ``min(degeneracy, ceil-density)``.

    Nash-Williams gives ``a(G) = max_H ceil(m_H / (n_H - 1))``; degeneracy
    bounds it from above.  Planar graphs report <= 5 (true arboricity <= 3);
    forests report 1.
    """
    if graph.n <= 1:
        return 0 if graph.m == 0 else 1
    return max(1, degeneracy(graph)) if graph.m else 0


def parity_classes(graph: StaticGraph) -> np.ndarray:
    """Distance parity of every vertex from its component's minimum vertex.

    For bipartite graphs this is a proper 2-coloring; raises otherwise.
    Used heavily by the fast CNTRLFAIRBIPART engine: within a tree, the
    parity of ``d(u, v)`` equals ``parity[u] XOR parity[v]``.
    """
    coloring = graph.bipartition()
    if coloring is None:
        raise GraphValidationError("graph is not bipartite")
    return coloring


def eccentricities(graph: StaticGraph) -> np.ndarray:
    """Per-vertex eccentricity within its own component."""
    out = np.empty(graph.n, dtype=np.int64)
    for v in range(graph.n):
        lv = graph.bfs_levels([v])
        out[v] = int(lv.max())
    return out


def degree_histogram(graph: StaticGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices of degree ``d``."""
    if graph.n == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees)


def leaf_fraction(graph: StaticGraph) -> float:
    """Fraction of degree-1 vertices — a quick heterogeneity fingerprint
    for the WAP-derived trees."""
    if graph.n == 0:
        return 0.0
    return float(np.mean(graph.degrees == 1))
