"""Zero-copy shared-memory graph transport.

Process pools previously shipped a pickled :class:`StaticGraph` to every
worker.  This module replaces that payload with a tiny
:class:`GraphShmHandle` — segment names, shapes, dtypes, and the graph's
content hash — while the actual arrays (the canonical edge list plus the
cached CSR ``indptr``/``indices``) live once in
``multiprocessing.shared_memory`` segments.  Workers attach read-only
numpy views over those segments, so the per-worker transport cost is
O(1) in the graph size and all workers map the same physical pages.

Lifecycle contract
------------------
* The **exporter** (:func:`export_graph`) owns the segments.  Calling
  :meth:`SharedGraph.close` closes *and unlinks* them; it is idempotent
  and also runs at interpreter exit for any exporter left open.
* **Attachers** (:func:`attach_graph`) never unlink.  Each process keeps
  an attach cache keyed by ``content_hash`` so repeated chunks on the
  same graph re-use one mapping; attachments are unregistered from the
  ``resource_tracker`` (the creator's registration is the one that backs
  crash cleanup) and closed at process exit.
* Unlinking while workers are still attached is safe on POSIX: the name
  disappears but existing mappings stay valid until the attacher closes.

``REPRO_SHM=0`` (or ``false``/``off``) disables the transport globally;
pools then fall back to pickling the graph as before.
"""

from __future__ import annotations

import atexit
import os
import sys
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from ..obs.profile import phase
from .graph import StaticGraph

__all__ = [
    "ArraySpec",
    "GraphShmHandle",
    "SharedGraph",
    "ShmUnavailable",
    "export_graph",
    "attach_graph",
    "detach_graph",
    "detach_all",
    "shm_enabled",
]

_log = get_logger("repro.graphs.shm")


class ShmUnavailable(RuntimeError):
    """Shared-memory transport could not be used on this host."""


def shm_enabled() -> bool:
    """Whether the shm transport is enabled (``REPRO_SHM`` kill switch)."""
    return os.environ.get("REPRO_SHM", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


@dataclass(frozen=True)
class ArraySpec:
    """Locator for one numpy array inside a shared-memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class GraphShmHandle:
    """Picklable O(1)-size descriptor of a shared :class:`StaticGraph`.

    Ships instead of the graph itself: three segment locators plus the
    vertex count and content hash.  ``content_hash`` doubles as the
    attach-cache key, so two pools sharing one graph attach once.
    """

    n: int
    content_hash: str
    edges: ArraySpec
    indptr: ArraySpec
    indices: ArraySpec

    @property
    def nbytes_shared(self) -> int:
        """Total bytes of graph data living behind this handle."""
        return self.edges.nbytes + self.indptr.nbytes + self.indices.nbytes


def _create_segment(array: np.ndarray) -> tuple[shared_memory.SharedMemory, ArraySpec]:
    """Copy *array* into a fresh segment (min size 1 — shm rejects 0)."""
    arr = np.ascontiguousarray(array)
    try:
        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    except OSError as exc:  # no /dev/shm, exhausted, permissions, ...
        raise ShmUnavailable(f"cannot create shared memory: {exc}") from exc
    if arr.nbytes:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
    return seg, ArraySpec(name=seg.name, shape=arr.shape, dtype=arr.dtype.str)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink duty.

    Python < 3.13 registers every attachment with a resource tracker
    (3.13+ has ``track=False`` for exactly this).  Whether that matters
    depends on *which* tracker daemon the attacher talks to:

    * **Pool workers** — fork and spawn alike — inherit the exporter's
      tracker, so their registration collapses into the creator's (the
      daemon keeps a set) and the creator's unlink-time unregister
      retires it exactly once.  Unregistering here would steal the
      creator's registration and turn its unlink into tracker noise.
    * An **unrelated top-level process** spins up its own tracker, which
      would unlink the segment out from under the exporter when this
      process exits — there the registration must be dropped.

    So: unregister only in top-level processes, and never for names this
    process exported itself.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - newer interpreters
        return shared_memory.SharedMemory(name=name, track=False)
    seg = shared_memory.SharedMemory(name=name)
    import multiprocessing as mp

    if name not in _EXPORTED_NAMES and mp.parent_process() is None:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker quirks are best-effort
            pass
    return seg


class SharedGraph:
    """Creator-side owner of one graph's shared-memory segments.

    Materializes the CSR (if not already cached on the graph) so workers
    never recompute it, copies the three arrays into segments, and hands
    out the :attr:`handle` to ship.  :meth:`close` is the single cleanup
    point — close + unlink, idempotent, also invoked at interpreter exit
    as a crash backstop.
    """

    def __init__(self, graph: StaticGraph) -> None:
        self.graph = graph
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        indptr, indices = graph._csr  # noqa: SLF001 - same-package cache
        specs: dict[str, ArraySpec] = {}
        try:
            for field_name, arr in (
                ("edges", graph.edges),
                ("indptr", indptr),
                ("indices", indices),
            ):
                seg, spec = _create_segment(arr)
                self._segments.append(seg)
                _EXPORTED_NAMES.add(seg.name)
                specs[field_name] = spec
        except ShmUnavailable:
            self.close()
            raise
        self.handle = GraphShmHandle(
            n=graph.n, content_hash=graph.content_hash(), **specs
        )
        _EXPORTS.add(self)
        registry = get_registry()
        registry.counter(
            "shm_graphs_exported_total",
            "Graphs exported into shared-memory segments",
        ).inc()
        registry.counter(
            "shm_bytes_shared_total",
            "Bytes of graph data placed in shared memory",
        ).inc(self.handle.nbytes_shared)
        _log.debug(
            "shm_graph_exported",
            graph_n=graph.n,
            bytes=self.handle.nbytes_shared,
            segments=[seg.name for seg in self._segments],
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _EXPORTS.discard(self)
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            _EXPORTED_NAMES.discard(seg.name)
        self._segments.clear()
        get_registry().counter(
            "shm_graphs_released_total",
            "Shared graph exports closed and unlinked",
        ).inc()
        _log.debug("shm_graph_released", graph_n=self.graph.n)

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Open exports, closed at interpreter exit if their pool never shut down.
_EXPORTS: set[SharedGraph] = set()

#: Segment names this process created (and its forked children inherit).
_EXPORTED_NAMES: set[str] = set()

#: Per-process attachments: content_hash -> (graph, segments).
_ATTACHED: dict[str, tuple[StaticGraph, tuple[shared_memory.SharedMemory, ...]]] = {}


def export_graph(graph: StaticGraph) -> SharedGraph:
    """Place *graph*'s edge list + CSR into shared memory.

    Raises :class:`ShmUnavailable` when segments cannot be created (the
    caller should fall back to the pickle transport).
    """
    with phase("shm.export"):
        return SharedGraph(graph)


def attach_graph(handle: GraphShmHandle) -> StaticGraph:
    """A :class:`StaticGraph` over *handle*'s segments (read-only views).

    Cached per process by ``content_hash``: repeated attaches of the
    same graph return the identical object without touching the OS.
    """
    cached = _ATTACHED.get(handle.content_hash)
    if cached is not None:
        get_registry().counter(
            "shm_attach_cache_hits_total",
            "Graph attaches served from the per-process cache",
        ).inc()
        return cached[0]
    with phase("shm.attach"):
        segments: list[shared_memory.SharedMemory] = []
        arrays: dict[str, np.ndarray] = {}
        try:
            for field_name in ("edges", "indptr", "indices"):
                spec: ArraySpec = getattr(handle, field_name)
                seg = _attach_segment(spec.name)
                segments.append(seg)
                view = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
                )
                view.setflags(write=False)
                arrays[field_name] = view
        except BaseException:
            for seg in segments:
                seg.close()
            raise
        graph = StaticGraph._from_shared_parts(  # noqa: SLF001 - same package
            handle.n,
            arrays["edges"],
            arrays["indptr"],
            arrays["indices"],
            handle.content_hash,
        )
    _ATTACHED[handle.content_hash] = (graph, tuple(segments))
    registry = get_registry()
    registry.counter(
        "shm_attach_total", "Shared-memory graph attachments performed"
    ).inc()
    registry.counter(
        "shm_attach_bytes_total",
        "Bytes of graph data mapped (not copied) by attachments",
    ).inc(handle.nbytes_shared)
    _log.debug(
        "shm_graph_attached", graph_n=handle.n, bytes=handle.nbytes_shared
    )
    return graph


def detach_graph(content_hash: str) -> bool:
    """Drop one cached attachment (close its mappings); True if present."""
    entry = _ATTACHED.pop(content_hash, None)
    if entry is None:
        return False
    for seg in entry[1]:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - a view still outstanding
            pass
    return True


def detach_all() -> None:
    """Close every cached attachment (worker shutdown / test isolation)."""
    for content_hash in list(_ATTACHED):
        detach_graph(content_hash)


def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    detach_all()
    for shared in list(_EXPORTS):
        shared.close()


atexit.register(_cleanup_at_exit)
