"""Streaming loader for SNAP-style whitespace edge lists.

Public graph repositories (SNAP, KONECT, Network Repository) ship graphs
as plain text: one ``u v`` pair per line, ``#``-prefixed comment lines,
arbitrary node ids, duplicate/self-loop edges allowed.  This module
turns those files into canonical :class:`StaticGraph` objects without
per-line Python work: the file is read in fixed-size chunks (carrying
partial lines across boundaries), each chunk is tokenized with
``bytes.split`` and parsed by numpy's C-level bytes→int cast, and the
concatenated endpoint arrays go through the usual vectorized
:meth:`StaticGraph.from_arrays` pipeline with ``dedup=True`` (SNAP files
routinely list both directions of an edge).

Expects the standard 2-column format; rows with more columns are not
detected per-line (the global token count and endpoint validation catch
most malformed files).  ``.gz`` paths are decompressed on the fly.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import IO

import numpy as np

from ..obs.profile import phase
from .graph import GraphValidationError, StaticGraph

__all__ = ["SnapLoadResult", "load_snap_edgelist"]

_DEFAULT_CHUNK = 16 * 1024 * 1024


@dataclass(frozen=True)
class SnapLoadResult:
    """A parsed edge-list file.

    ``node_ids`` maps compacted vertex ids back to the file's original
    ids (``node_ids[v]`` is vertex ``v``'s id in the file); ``None``
    when compaction was disabled.
    """

    graph: StaticGraph
    node_ids: np.ndarray | None
    self_loops_dropped: int

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m


def _open(path: Path) -> IO[bytes]:
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def _parse_chunk(chunk: bytes, path: Path) -> np.ndarray:
    """Tokenize one chunk of whole lines into a flat int64 array."""
    if b"#" in chunk:
        kept = [
            line
            for line in chunk.split(b"\n")
            if line and not line.lstrip().startswith(b"#")
        ]
        chunk = b"\n".join(kept)
    tokens = chunk.split()
    if not tokens:
        return np.empty(0, dtype=np.int64)
    try:
        return np.array(tokens, dtype="S").astype(np.int64)
    except ValueError as exc:
        raise GraphValidationError(
            f"{path}: non-integer token in edge list ({exc})"
        ) from exc


def load_snap_edgelist(
    path: str | Path,
    compact_ids: bool = True,
    chunk_bytes: int = _DEFAULT_CHUNK,
) -> SnapLoadResult:
    """Parse a SNAP-style whitespace edge list into a canonical graph.

    Streaming and array-native: memory high-water is one chunk of text
    plus the endpoint arrays.  Self-loops are dropped (counted in the
    result), duplicate and reverse-direction edges are deduplicated.
    With ``compact_ids=True`` (default) arbitrary node ids are remapped
    to ``0..n-1`` in sorted order and the mapping is returned; otherwise
    ids are used as-is (requiring ``0 <= id``, with ``n = max id + 1``).
    """
    path = Path(path)
    if chunk_bytes < 1:
        raise GraphValidationError("chunk_bytes must be positive")
    parts: list[np.ndarray] = []
    with phase("graph.parse"):
        with _open(path) as fh:
            carry = b""
            while True:
                block = fh.read(chunk_bytes)
                if not block:
                    if carry:
                        parts.append(_parse_chunk(carry, path))
                    break
                block = carry + block
                cut = block.rfind(b"\n")
                if cut < 0:
                    carry = block
                    continue
                carry = block[cut + 1 :]
                parts.append(_parse_chunk(block[: cut + 1], path))
        flat = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        if flat.size % 2:
            raise GraphValidationError(
                f"{path}: odd token count ({flat.size}) — not a 2-column edge list"
            )
        pairs = flat.reshape(-1, 2)
        src = pairs[:, 0]
        dst = pairs[:, 1]
        loops = src == dst
        dropped = int(loops.sum())
        if dropped:
            keep = ~loops
            src = src[keep]
            dst = dst[keep]
        node_ids: np.ndarray | None = None
        if compact_ids:
            node_ids = np.unique(flat)
            src = np.searchsorted(node_ids, src)
            dst = np.searchsorted(node_ids, dst)
            n = int(node_ids.shape[0])
        else:
            if flat.size and int(flat.min()) < 0:
                raise GraphValidationError(
                    f"{path}: negative node id (use compact_ids=True to remap)"
                )
            n = int(flat.max()) + 1 if flat.size else 0
    graph = StaticGraph.from_arrays(n, src, dst, dedup=True)
    return SnapLoadResult(
        graph=graph, node_ids=node_ids, self_loops_dropped=dropped
    )
