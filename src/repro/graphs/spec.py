"""Public graph-spec API: parse ``kind:arg:arg`` strings into graphs.

Historically this lived inside :mod:`repro.cli` as ``parse_graph_spec``;
it is now a stable library API shared by the CLI, the estimation service
(request JSON carries spec strings), and programmatic callers.  The CLI
keeps a deprecated re-export.

Spec grammar (one line per kind)::

    tree:N[:SEED]     random labeled tree
    path:N            path graph
    star:N            star graph
    cycle:N           cycle
    binary:DEPTH      complete binary tree
    kary:B,D          complete B-ary tree of depth D
    alt:B,D           alternating tree
    grid:RxC          grid graph
    trigrid:RxC       triangulated grid (planar, non-bipartite)
    apex:RxC          apex grid (planar, high degree)
    cone:K            the lower-bound cone graph
    campus[:SEED]     Dartmouth-like WAP MST
    city:N[:SEED]     NYC-like WAP MST
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import StaticGraph

__all__ = ["GraphSpec", "GraphSpecError", "build_graph", "KINDS"]


class GraphSpecError(ValueError):
    """Raised for an unknown graph kind or malformed spec arguments."""


#: Recognized spec kinds (see the module docstring for the grammar).
KINDS: tuple[str, ...] = (
    "tree",
    "path",
    "star",
    "cycle",
    "binary",
    "kary",
    "alt",
    "grid",
    "trigrid",
    "apex",
    "cone",
    "campus",
    "city",
)


@dataclass(frozen=True)
class GraphSpec:
    """A parsed-but-not-built graph spec.

    Parsing and building are split so callers can validate request JSON
    cheaply (``parse``) and defer the possibly expensive construction
    (``build``) — e.g. until a cache miss is confirmed.
    """

    kind: str
    args: tuple[str, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "GraphSpec":
        """Parse ``kind:arg:arg`` into a :class:`GraphSpec`.

        Raises :class:`GraphSpecError` for unknown kinds; argument values
        are validated at :meth:`build` time.
        """
        kind, _, rest = spec.strip().partition(":")
        if kind not in KINDS:
            raise GraphSpecError(
                f"unknown graph kind {kind!r}; expected one of {', '.join(KINDS)}"
            )
        return cls(kind=kind, args=tuple(rest.split(":")) if rest else ())

    @property
    def canonical(self) -> str:
        """The spec string this object round-trips to."""
        return ":".join((self.kind, *self.args))

    def build(self) -> StaticGraph:
        """Construct the :class:`StaticGraph` this spec describes.

        Raises :class:`GraphSpecError` on malformed arguments.
        """
        from . import generators as gen
        from .geometric import campus_model, city_model, wap_tree

        parts = list(self.args)

        def ints(csv: str) -> list[int]:
            return [int(x) for x in csv.replace("x", ",").split(",")]

        kind = self.kind
        try:
            if kind == "tree":
                n = int(parts[0])
                seed = int(parts[1]) if len(parts) > 1 else 0
                return gen.random_tree(n, seed=seed).graph
            if kind == "path":
                return gen.path_graph(int(parts[0]))
            if kind == "star":
                return gen.star_graph(int(parts[0]))
            if kind == "cycle":
                return gen.cycle_graph(int(parts[0]))
            if kind == "binary":
                return gen.complete_tree(2, int(parts[0])).graph
            if kind == "kary":
                b, d = ints(parts[0])
                return gen.complete_tree(b, d).graph
            if kind == "alt":
                b, d = ints(parts[0])
                return gen.alternating_tree(b, d).graph
            if kind == "grid":
                r, c = ints(parts[0])
                return gen.grid_graph(r, c)
            if kind == "trigrid":
                r, c = ints(parts[0])
                return gen.triangulated_grid(r, c)
            if kind == "apex":
                r, c = ints(parts[0])
                return gen.apex_grid(r, c)
            if kind == "cone":
                return gen.cone_graph(int(parts[0]))
            if kind == "campus":
                seed = int(parts[0]) if parts else 11
                return wap_tree(campus_model(seed=seed))
            if kind == "city":
                n = int(parts[0]) if parts else 2500
                seed = int(parts[1]) if len(parts) > 1 else 12
                return wap_tree(city_model(n=n, seed=seed))
        except (ValueError, IndexError) as exc:
            raise GraphSpecError(
                f"bad graph spec {self.canonical!r}: {exc}"
            ) from exc
        raise GraphSpecError(f"unknown graph kind {kind!r}")  # pragma: no cover


def build_graph(spec: str) -> StaticGraph:
    """Parse and build in one step (``GraphSpec.parse(spec).build()``)."""
    return GraphSpec.parse(spec).build()
