"""Unified observability layer: structured logs, spans, metrics.

One subsystem, three signals, shared context:

* **Structured logging** (:mod:`repro.obs.logging`) — :func:`get_logger`
  returns a named logger emitting JSON-lines events; off by default,
  enabled with :func:`configure_logging`.
* **Tracing** (:mod:`repro.obs.spans`) — :func:`span` times a phase and
  links it into a per-request trace via contextvars;
  :func:`bind_trace` continues a trace across threads.  Every log
  record emitted inside a span carries its ``trace_id``/``span_id``.
* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry` with Prometheus
  text and JSON expositions; :func:`use_registry` scopes observations
  to a service's own registry.
* **Phase profiling** (:mod:`repro.obs.profile`) — a contextvar-scoped
  :class:`PhaseProfiler` fed by named-phase / per-round hooks inside the
  fast engines and the staged runtime; off unless :func:`use_profiler`
  binds one, and the backbone of ``python -m repro bench``.
* **Remote telemetry** (:mod:`repro.obs.remote`) — the cross-process
  plane: workers record into their own registry and span buffer, ship
  delta snapshots piggybacked on chunk results, and the parent merges
  them under a ``worker`` label while re-parenting worker spans into
  the submitting request's trace.  :mod:`repro.obs.export` turns the
  collected spans into Chrome trace-event / Perfetto JSON
  (``python -m repro trace``); :mod:`repro.obs.dashboard` renders the
  live ``python -m repro top`` terminal view.

:mod:`repro.obs.bridge` feeds the engines' round/message/slot
measurements into the same histograms, so ``python -m repro stats`` and
``python -m repro serve --stats-every N`` expose the paper's round
distributions alongside request latency and cache behavior.  See
``docs/OBSERVABILITY.md``.

:func:`set_enabled(False) <set_enabled>` is the global kill switch; the
benchmark suite uses it to bound instrumentation overhead.
"""

from .bridge import observe_run_metrics, observe_trial
from .dashboard import TopDashboard, run_top, snapshot_from_registry
from .health import (
    HealthReport,
    HealthRule,
    RuleResult,
    default_rules,
    evaluate_health,
    load_stats_snapshot,
)
from .export import (
    JsonlSpanSink,
    SpanCollector,
    current_collector,
    install_collector,
    read_spans_jsonl,
    to_chrome_trace,
    uninstall_collector,
)
from .logging import (
    StructLogger,
    configure_logging,
    disable_logging,
    get_logger,
    logging_enabled,
)
from .metrics import (
    AGE_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    ROUND_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    enabled,
    get_registry,
    label_key,
    parse_label_key,
    set_enabled,
    use_registry,
)
from .profile import PhaseProfiler, current_profiler, phase, use_profiler
from .remote import (
    ChunkResult,
    ChunkTelemetry,
    RemoteTelemetry,
    TraceContext,
    current_trace_context,
    merge_worker_snapshot,
    run_chunk_with_telemetry,
    telemetry_enabled,
    use_trace,
)
from .spans import (
    Span,
    bind_trace,
    capture_spans,
    current_span_id,
    current_trace_id,
    emit_span_record,
    new_span_id,
    new_trace_id,
    register_span_sink,
    span,
    unregister_span_sink,
)

__all__ = [
    # logging
    "StructLogger",
    "get_logger",
    "configure_logging",
    "disable_logging",
    "logging_enabled",
    # profiling
    "PhaseProfiler",
    "current_profiler",
    "use_profiler",
    "phase",
    # spans
    "Span",
    "span",
    "bind_trace",
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
    "new_span_id",
    "capture_spans",
    "emit_span_record",
    "register_span_sink",
    "unregister_span_sink",
    # remote telemetry
    "ChunkResult",
    "ChunkTelemetry",
    "RemoteTelemetry",
    "TraceContext",
    "current_trace_context",
    "merge_worker_snapshot",
    "run_chunk_with_telemetry",
    "telemetry_enabled",
    "use_trace",
    # export / dashboard
    "SpanCollector",
    "JsonlSpanSink",
    "install_collector",
    "current_collector",
    "uninstall_collector",
    "read_spans_jsonl",
    "to_chrome_trace",
    "TopDashboard",
    "run_top",
    "snapshot_from_registry",
    # health
    "HealthRule",
    "HealthReport",
    "RuleResult",
    "default_rules",
    "evaluate_health",
    "load_stats_snapshot",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "default_registry",
    "use_registry",
    "set_enabled",
    "enabled",
    "label_key",
    "parse_label_key",
    "LATENCY_BUCKETS",
    "ROUND_BUCKETS",
    "COUNT_BUCKETS",
    "AGE_BUCKETS",
    # bridge
    "observe_run_metrics",
    "observe_trial",
]
