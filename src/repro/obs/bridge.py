"""Bridges from execution-layer metrics into the observability registry.

The engines already measure what the paper's claims are about — rounds,
messages, slot traffic (:class:`repro.runtime.metrics.RunMetrics`) and
per-trial round counts (``MISResult.rounds`` on the faithful layer,
``info["iterations"]`` on the fast sweeps).  These functions feed those
measurements into the *active* metrics registry
(:func:`repro.obs.metrics.get_registry`), so the same histograms that
serve operator dashboards also answer the distributional questions
behind the ``O(log* n)`` / ``O(log n)`` / ``O(log^2 n)`` round bounds.

Observation lands in whichever registry is context-bound: the estimation
service binds its own around dispatch, everything else feeds the process
default.  Inside pool workers the telemetry harness binds a fresh delta
registry per chunk (:mod:`repro.obs.remote`), so observations made here
ride back on the chunk result and merge into the parent's serving
registry under a ``worker`` label — the round histograms aggregate
across processes regardless of ``n_jobs``.
"""

from __future__ import annotations

from typing import Any

from .metrics import COUNT_BUCKETS, ROUND_BUCKETS, enabled, get_registry

__all__ = ["observe_run_metrics", "observe_trial", "trial_rounds_histogram"]


def observe_run_metrics(metrics: Any, registry: Any | None = None) -> None:
    """Feed one engine run's :class:`RunMetrics` into the registry.

    Populates ``engine_rounds_per_run``, ``engine_messages_per_run``,
    ``engine_slots_per_run`` histograms and the ``engine_runs_total``
    counter.  *metrics* is duck-typed (``rounds`` / ``total_messages`` /
    ``total_slots``) to keep this module import-free of the runtime.
    """
    if not enabled():
        return
    reg = registry if registry is not None else get_registry()
    reg.histogram(
        "engine_rounds_per_run",
        "Synchronous rounds consumed by one engine execution",
        buckets=ROUND_BUCKETS,
    ).observe(metrics.rounds)
    reg.histogram(
        "engine_messages_per_run",
        "Messages delivered over one engine execution",
        buckets=COUNT_BUCKETS,
    ).observe(metrics.total_messages)
    reg.histogram(
        "engine_slots_per_run",
        "Message slots (O(log n)-bit words) over one engine execution",
        buckets=COUNT_BUCKETS,
    ).observe(metrics.total_slots)
    reg.counter(
        "engine_runs_total", "Completed synchronous engine executions"
    ).inc()


def trial_rounds_histogram(algorithm: str, registry: Any | None = None):
    """The per-*algorithm* ``trial_rounds`` histogram child, or ``None``
    when observability is disabled.

    Resolving the registry family costs more than observing into it, so
    per-trial loops hoist this lookup out of the loop — one resolution
    per chunk, one cheap ``observe`` per trial.
    """
    if not enabled():
        return None
    reg = registry if registry is not None else get_registry()
    return reg.histogram(
        "trial_rounds",
        "Rounds (or vectorized sweep iterations) per Monte-Carlo trial",
        buckets=ROUND_BUCKETS,
        labelnames=("algorithm",),
    ).labels(algorithm=algorithm)


def observe_trial(
    algorithm: str, result: Any, registry: Any | None = None
) -> None:
    """Feed one Monte-Carlo trial's round count into the registry.

    *result* is duck-typed as a :class:`~repro.core.result.MISResult`:
    faithful algorithms report ``rounds`` directly, fast engines report
    sweep ``iterations`` through ``info``.  Trials with no round signal
    (pure vectorized kernels) are skipped.
    """
    if not enabled():
        return
    rounds = result.rounds or result.info.get("iterations", 0)
    if not rounds:
        return
    trial_rounds_histogram(algorithm, registry).observe(int(rounds))
