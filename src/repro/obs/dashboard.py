"""The ``repro top`` live terminal dashboard.

Consumes the JSON stats snapshots the service emits (``--stats-every`` /
``--stats-file`` on ``serve``/``batch``, or an in-process registry probe)
and renders a refreshing ANSI frame: per-worker utilization, dispatcher
queue depth, cache/evidence hit rates, request-latency percentiles, and
SLO budget burn against a configurable latency target.

All rates are *windowed*: the dashboard keeps a short history of
snapshots and differences the newest against the oldest one inside the
window, so a burst five minutes ago doesn't pollute the current view.
Latency percentiles over the window are recomputed from differenced
cumulative histogram buckets — the same interpolation the registry's
:meth:`~repro.obs.metrics.Histogram.quantile` uses, applied to the
window's delta distribution.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Any, IO, Iterable, Mapping

from .health import evaluate_health
from .metrics import parse_label_key

__all__ = ["TopDashboard", "snapshot_from_registry", "run_top"]

#: Severity ranking used when a row is governed by several health rules.
_STATUS_ORDER = ("ok", "warn", "crit")

#: ANSI colors for health-driven row highlighting.
_COLOR = {"warn": "\x1b[33m", "crit": "\x1b[31m"}
_RESET = "\x1b[0m"


def _highlight(line: str, status: str | None, ansi: bool) -> str:
    """Decorate a dashboard row according to its health status.

    Plain frames get ``!``/``!!`` suffix markers (script/CI friendly);
    ANSI frames additionally color the row yellow (warn) or red (crit).
    """
    if status in (None, "ok"):
        return line
    mark = " !!" if status == "crit" else " !"
    if ansi and status in _COLOR:
        return f"{_COLOR[status]}{line}{mark}{_RESET}"
    return line + mark

#: ANSI clear-screen + cursor-home prefix used between refresh frames.
ANSI_REFRESH = "\x1b[2J\x1b[H"


def snapshot_from_registry(
    registry, counters=None, requests_served: int | None = None
) -> dict[str, Any]:
    """Build a stats-event-shaped snapshot from a live registry.

    Produces the same document ``repro serve --stats-every`` writes, so
    the dashboard renders identically from a file tail and from an
    in-process probe.
    """
    snapshot: dict[str, Any] = {
        "event": "stats",
        "ts": time.time(),
        "metrics": registry.snapshot(),
    }
    if counters is not None:
        snapshot["counters"] = counters.snapshot()
    if requests_served is not None:
        snapshot["requests_served"] = requests_served
    return snapshot


def _bucket_pairs(buckets: Mapping[str, Any]) -> list[tuple[float, float]]:
    """Snapshot bucket dict → sorted ``(bound, cumulative)`` pairs."""
    pairs: list[tuple[float, float]] = []
    for text, cum in buckets.items():
        bound = float("inf") if text == "+Inf" else float(text)
        pairs.append((bound, float(cum)))
    pairs.sort(key=lambda p: p[0])
    return pairs


def _delta_buckets(
    new: Mapping[str, Any], old: Mapping[str, Any] | None
) -> list[tuple[float, float]]:
    """Windowed cumulative buckets: newest minus oldest-in-window."""
    pairs = _bucket_pairs(new)
    if not old:
        return pairs
    old_map = dict(_bucket_pairs(old))
    return [(b, max(0.0, c - old_map.get(b, 0.0))) for b, c in pairs]


def _quantile(pairs: list[tuple[float, float]], q: float) -> float | None:
    """Interpolated quantile over cumulative ``(bound, count)`` pairs.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile` (uniform mass
    per bucket, +Inf clamps to the largest finite bound, ``None`` when
    empty).
    """
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    target = q * total
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in pairs:
        if cum >= target:
            if bound == float("inf"):
                return prev_bound
            if cum == prev_cum:
                return bound
            frac = (target - prev_cum) / (cum - prev_cum)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_cum = bound, cum
    return prev_bound


def _fraction_over(pairs: list[tuple[float, float]], threshold: float) -> float | None:
    """Fraction of windowed observations above *threshold* (interpolated)."""
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    prev_bound, prev_cum = 0.0, 0.0
    cum_at = total  # everything below threshold if bounds never reach it
    for bound, cum in pairs:
        if bound >= threshold:
            if bound == float("inf") or cum == prev_cum:
                cum_at = cum if bound <= threshold else prev_cum
            else:
                frac = (threshold - prev_bound) / (bound - prev_bound)
                cum_at = prev_cum + frac * (cum - prev_cum)
            break
        prev_bound, prev_cum = bound, cum
    return max(0.0, min(1.0, 1.0 - cum_at / total))


def _fmt(value: float | None, pattern: str = "{:.1f}") -> str:
    return "-" if value is None else pattern.format(value)


class TopDashboard:
    """Windowed aggregation + rendering of service stats snapshots."""

    def __init__(
        self,
        slo_ms: float = 250.0,
        slo_target: float = 0.95,
        window_s: float = 60.0,
        history: int = 512,
    ) -> None:
        if not 0.0 < slo_target < 1.0:
            raise ValueError("slo_target must be in (0, 1)")
        self.slo_ms = float(slo_ms)
        self.slo_target = float(slo_target)
        self.window_s = float(window_s)
        self._points: deque[dict[str, Any]] = deque(maxlen=history)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, snapshot: Mapping[str, Any]) -> None:
        """Ingest one stats snapshot (non-stats events are ignored)."""
        if snapshot.get("event", "stats") != "stats":
            return
        point = dict(snapshot)
        point.setdefault("ts", time.time())
        self._points.append(point)

    def _window(self) -> tuple[dict[str, Any] | None, dict[str, Any] | None]:
        """(oldest-in-window, newest) snapshot pair."""
        if not self._points:
            return None, None
        newest = self._points[-1]
        cutoff = float(newest["ts"]) - self.window_s
        oldest = None
        for point in self._points:
            if float(point["ts"]) >= cutoff:
                oldest = point
                break
        if oldest is newest:
            # A single in-window point: diff against the previous one if
            # any (rates need two), else against nothing.
            idx = len(self._points) - 2
            oldest = self._points[idx] if idx >= 0 else None
        return oldest, newest

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @staticmethod
    def _series(point: Mapping[str, Any] | None, kind: str, name: str) -> dict:
        if point is None:
            return {}
        return point.get("metrics", {}).get(kind, {}).get(name, {})

    def _counter_rate(self, oldest, newest, field: str) -> float | None:
        if newest is None or oldest is None:
            return None
        dt = float(newest["ts"]) - float(oldest["ts"])
        if dt <= 0:
            return None
        new_c = newest.get("counters", {}).get(field)
        old_c = oldest.get("counters", {}).get(field)
        if new_c is None or old_c is None:
            return None
        return max(0.0, (new_c - old_c) / dt)

    def _hit_rate(self, newest, hits_field: str, misses_field: str) -> float | None:
        if newest is None:
            return None
        counters = newest.get("counters", {})
        hits, misses = counters.get(hits_field), counters.get(misses_field)
        if hits is None or misses is None or hits + misses == 0:
            return None
        return hits / (hits + misses)

    def workers(self) -> list[dict[str, Any]]:
        """Per-worker utilization over the window.

        Utilization is busy-seconds per wall-second: the windowed delta
        of each worker's ``worker_chunk_seconds`` sum divided by the
        window duration.  Without two in-window points (no rate basis),
        utilization is ``None`` but totals still show.
        """
        oldest, newest = self._window()
        new_series = self._series(newest, "histograms", "worker_chunk_seconds")
        old_series = self._series(oldest, "histograms", "worker_chunk_seconds")
        dt = (
            float(newest["ts"]) - float(oldest["ts"])
            if newest is not None and oldest is not None
            else 0.0
        )
        per_worker: dict[str, dict[str, float]] = {}
        for key, value in new_series.items():
            worker = parse_label_key(key).get("worker", "?")
            cell = per_worker.setdefault(
                worker, {"busy_s": 0.0, "chunks": 0.0, "delta_busy_s": 0.0}
            )
            cell["busy_s"] += float(value.get("sum", 0.0))
            cell["chunks"] += float(value.get("count", 0))
            old = old_series.get(key, {})
            cell["delta_busy_s"] += float(value.get("sum", 0.0)) - float(
                old.get("sum", 0.0)
            )
        out = []
        for worker in sorted(per_worker):
            cell = per_worker[worker]
            util = (
                max(0.0, min(1.0, cell["delta_busy_s"] / dt)) if dt > 0 else None
            )
            out.append(
                {
                    "worker": worker,
                    "utilization": util,
                    "busy_s": cell["busy_s"],
                    "chunks": int(cell["chunks"]),
                }
            )
        return out

    def latency_ms(self) -> dict[str, float | None]:
        """Windowed p50/p95/p99 request latency in milliseconds."""
        oldest, newest = self._window()
        new_series = self._series(
            newest, "histograms", "service_request_latency_seconds"
        )
        old_series = self._series(
            oldest, "histograms", "service_request_latency_seconds"
        )
        # Collapse algorithm labels into one distribution.
        merged_new: dict[str, float] = {}
        merged_old: dict[str, float] = {}
        for series, merged in ((new_series, merged_new), (old_series, merged_old)):
            for value in series.values():
                for bound, cum in value.get("buckets", {}).items():
                    merged[bound] = merged.get(bound, 0.0) + float(cum)
        pairs = _delta_buckets(merged_new, merged_old or None)
        return {
            "p50": None if (q := _quantile(pairs, 0.50)) is None else q * 1e3,
            "p95": None if (q := _quantile(pairs, 0.95)) is None else q * 1e3,
            "p99": None if (q := _quantile(pairs, 0.99)) is None else q * 1e3,
            "over_slo": _fraction_over(pairs, self.slo_ms / 1e3),
        }

    def slo_burn(self) -> float | None:
        """Error-budget burn rate: windowed over-SLO fraction / allowance.

        1.0 means burning exactly the budget (``1 - slo_target`` of
        requests over target); above 1.0 the SLO is being violated.
        """
        over = self.latency_ms()["over_slo"]
        if over is None:
            return None
        return over / (1.0 - self.slo_target)

    def queue_depth(self) -> float | None:
        _oldest, newest = self._window()
        series = self._series(newest, "gauges", "service_queue_depth_current")
        if "" in series:
            return float(series[""])
        return None

    def _registry_rate(self, oldest, newest, name: str) -> float | None:
        """Windowed per-second rate of a registry counter family."""
        new_series = self._series(newest, "counters", name)
        if not new_series or oldest is None or newest is None:
            return None
        dt = float(newest["ts"]) - float(oldest["ts"])
        if dt <= 0:
            return None
        new_total = sum(float(v) for v in new_series.values())
        old_total = sum(
            float(v) for v in self._series(oldest, "counters", name).values()
        )
        return max(0.0, (new_total - old_total) / dt)

    def frontend(self) -> dict[str, Any] | None:
        """Front-end admission view, or ``None`` when not deployed.

        Stats snapshots from plain ``serve`` carry no ``frontend_*``
        families, so single-process deployments render no extra row.
        """
        oldest, newest = self._window()
        counters = (newest or {}).get("metrics", {}).get("counters", {})
        if not any(name.startswith("frontend_") for name in counters):
            return None

        def total(name: str) -> float:
            return sum(
                float(v) for v in self._series(newest, "counters", name).values()
            )

        admitted = total("frontend_admitted_total")
        shed = total("frontend_shed_total")
        decisions = admitted + shed
        saturation = self._series(newest, "gauges", "frontend_queue_saturation")
        peak = self._series(newest, "gauges", "frontend_admission_peak_load")
        return {
            "admit_rate": self._registry_rate(
                oldest, newest, "frontend_admitted_total"
            ),
            "shed_pct": 100.0 * shed / decisions if decisions > 0 else None,
            "rate_limited": total("frontend_rate_limited_total"),
            "saturation": float(saturation[""]) if "" in saturation else None,
            "peak_load": float(peak[""]) if "" in peak else None,
        }

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(self, ansi: bool = False) -> str:
        """One dashboard frame as text (prefixed with a clear when *ansi*)."""
        oldest, newest = self._window()
        lines: list[str] = []
        if newest is None:
            lines.append("repro top — waiting for stats snapshots…")
            return (ANSI_REFRESH if ansi else "") + "\n".join(lines) + "\n"
        ts = time.strftime("%H:%M:%S", time.localtime(float(newest["ts"])))
        served = newest.get("requests_served")
        rate = self._counter_rate(oldest, newest, "requests")
        lines.append(
            f"repro top — {ts}   requests: "
            f"{served if served is not None else '-'}"
            f"   rate: {_fmt(rate, '{:.1f}/s')}"
            f"   window: {self.window_s:.0f}s"
        )
        health = evaluate_health(newest, slo_ms=self.slo_ms)
        latency = self.latency_ms()
        burn = self.slo_burn()
        burn_mark = ""
        if burn is not None:
            burn_mark = "  !! SLO" if burn > 1.0 else ""
        lines.append(
            _highlight(
                f"latency ms  p50 {_fmt(latency['p50'], '{:.2f}')}"
                f"  p95 {_fmt(latency['p95'], '{:.2f}')}"
                f"  p99 {_fmt(latency['p99'], '{:.2f}')}"
                f"   SLO {self.slo_ms:.0f}ms@p{self.slo_target * 100:.0f}"
                f"  burn {_fmt(burn, '{:.2f}x')}{burn_mark}",
                health.status_of("latency_p99_ms"),
                ansi,
            )
        )
        queue = self.queue_depth()
        cache = self._hit_rate(newest, "cache_hits", "cache_misses")
        evidence = self._hit_rate(newest, "evidence_hits", "evidence_misses")
        lines.append(
            _highlight(
                f"queue depth {_fmt(queue, '{:.0f}')}"
                f"   cache hit "
                f"{_fmt(None if cache is None else cache * 100, '{:.1f}%')}"
                f"   evidence hit "
                f"{_fmt(None if evidence is None else evidence * 100, '{:.1f}%')}",
                health.status_of("queue_depth"),
                ansi,
            )
        )
        front = self.frontend()
        if front is not None:
            statuses = [
                health.status_of("frontend_shed_rate"),
                health.status_of("frontend_queue_saturation"),
            ]
            worst = None
            for s in statuses:
                if s is not None and (
                    worst is None
                    or _STATUS_ORDER.index(s) > _STATUS_ORDER.index(worst)
                ):
                    worst = s
            sat = front["saturation"]
            lines.append(
                _highlight(
                    f"frontend    admit {_fmt(front['admit_rate'], '{:.1f}/s')}"
                    f"   shed {_fmt(front['shed_pct'], '{:.1f}%')}"
                    f"   rate-limited {front['rate_limited']:.0f}"
                    f"   queue sat "
                    f"{_fmt(None if sat is None else sat * 100, '{:.0f}%')}"
                    f"   peak load {_fmt(front['peak_load'], '{:.2f}')}",
                    worst,
                    ansi,
                )
            )
        failing = health.failing()
        if failing:
            worst = ", ".join(
                f"{r.rule.name}={'-' if r.value is None else f'{r.value:.4g}'}"
                for r in failing
            )
            lines.append(
                _highlight(f"health: {health.status}  ({worst})",
                           health.status, ansi)
            )
        else:
            lines.append("health: ok")
        workers = self.workers()
        if workers:
            lines.append("workers:")
            for w in workers:
                util = w["utilization"]
                if util is None:
                    bar = " " * 20
                    pct = "   - "
                else:
                    filled = int(round(util * 20))
                    bar = "#" * filled + "." * (20 - filled)
                    pct = f"{util * 100:4.0f}%"
                lines.append(
                    f"  {w['worker']:<12} [{bar}] {pct}"
                    f"  busy {w['busy_s']:.2f}s  chunks {w['chunks']}"
                )
        else:
            lines.append("workers: (no worker telemetry yet)")
        return (ANSI_REFRESH if ansi else "") + "\n".join(lines) + "\n"


def _iter_stats_lines(lines: Iterable[str]) -> Iterable[dict[str, Any]]:
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict) and obj.get("event", "stats") == "stats":
            yield obj


def run_top(
    path: str,
    *,
    interval: float = 2.0,
    slo_ms: float = 250.0,
    slo_target: float = 0.95,
    window_s: float = 60.0,
    once: bool = False,
    out: IO[str] | None = None,
) -> None:
    """Follow a ``--stats-file`` and render dashboard frames.

    Reads every snapshot already in the file, then tails it.  With
    ``once=True`` a single plain frame is rendered after the initial
    read (no ANSI codes) — the scripting/CI mode.
    """
    stream = out if out is not None else sys.stdout
    dash = TopDashboard(slo_ms=slo_ms, slo_target=slo_target, window_s=window_s)
    with open(path, "r", encoding="utf-8") as fh:
        for snapshot in _iter_stats_lines(fh):
            dash.update(snapshot)
        if once:
            stream.write(dash.render(ansi=False))
            stream.flush()
            return
        ansi = stream.isatty()
        stream.write(dash.render(ansi=ansi))
        stream.flush()
        while True:
            line = fh.readline()
            if not line:
                time.sleep(interval)
                continue
            for snapshot in _iter_stats_lines([line]):
                dash.update(snapshot)
                stream.write(dash.render(ansi=ansi))
                stream.flush()
