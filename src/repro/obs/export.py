"""Span export: ring-buffered collection, JSONL sinks, Chrome trace JSON.

The spans layer fans completed spans out to registered sinks as plain
dict records (:func:`repro.obs.spans.register_span_sink`); this module
provides the consumers:

* :class:`SpanCollector` — a bounded in-memory ring buffer, queryable by
  trace ID.  :func:`install_collector` registers a process-global one
  (what the in-process ``repro trace`` probe and ``repro top`` use).
* :class:`JsonlSpanSink` — an append-only JSON-lines file sink (the
  ``--trace-file`` option on ``serve``/``batch``), flushed per record so
  a killed process loses at most the record being written.
* :func:`to_chrome_trace` — render records as Chrome trace-event JSON
  (the ``traceEvents`` array of ``"ph": "X"`` complete events), loadable
  in ``chrome://tracing`` and https://ui.perfetto.dev.  Worker records
  keep their own ``pid``/``tid``, so one request's chunks appear as
  parallel process tracks under the same trace.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Iterable, Mapping, TextIO

from .spans import register_span_sink, unregister_span_sink

__all__ = [
    "SpanCollector",
    "JsonlSpanSink",
    "to_chrome_trace",
    "read_spans_jsonl",
    "install_collector",
    "current_collector",
    "uninstall_collector",
]


class SpanCollector:
    """A bounded ring buffer of span records, newest-evicts-oldest.

    Usable directly as a span sink (the instance is callable).  All
    methods are thread-safe; records are stored as received.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("collector capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._records: deque[dict[str, Any]] = deque(maxlen=self.capacity)

    def __call__(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, trace_id: str | None = None) -> list[dict[str, Any]]:
        """All buffered records, optionally filtered to one trace."""
        with self._lock:
            records = list(self._records)
        if trace_id is None:
            return records
        return [r for r in records if r.get("trace_id") == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace IDs in buffer order (oldest first)."""
        seen: dict[str, None] = {}
        for r in self.records():
            tid = r.get("trace_id")
            if tid:
                seen.setdefault(tid, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class JsonlSpanSink:
    """Span sink appending one JSON object per line to a text stream.

    Flushes after every record: trace files are most valuable exactly
    when the process dies unexpectedly.  ``close()`` only closes streams
    this sink opened itself (pass a path, not a handle, for that).
    """

    def __init__(self, target: str | TextIO) -> None:
        if isinstance(target, str):
            self._stream: TextIO = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self._lock = threading.Lock()

    def __call__(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self._owns:
                self._stream.close()


def read_spans_jsonl(path: str) -> list[dict[str, Any]]:
    """Load span records from a ``--trace-file`` JSONL file.

    Skips blank and truncated lines (a SIGKILLed writer can leave a
    partial last record) rather than failing the whole read.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def to_chrome_trace(
    records: Iterable[Mapping[str, Any]], trace_id: str | None = None
) -> dict[str, Any]:
    """Render span records as a Chrome trace-event JSON object.

    Each record becomes one ``"ph": "X"`` (complete) event with
    microsecond timestamps; ``pid``/``tid`` pass through, so parent and
    worker spans of one request render as separate tracks.  The span and
    trace IDs ride along in ``args`` for Perfetto's detail pane.
    """
    events: list[dict[str, Any]] = []
    for r in records:
        if trace_id is not None and r.get("trace_id") != trace_id:
            continue
        args: dict[str, Any] = {
            "trace_id": r.get("trace_id"),
            "span_id": r.get("span_id"),
            "parent_id": r.get("parent_id"),
        }
        fields = r.get("fields")
        if isinstance(fields, Mapping):
            args.update(fields)
        events.append(
            {
                "name": r.get("name", "span"),
                "cat": "repro",
                "ph": "X",
                "ts": float(r.get("ts", 0.0)) * 1e6,
                "dur": float(r.get("dur_s", 0.0)) * 1e6,
                "pid": r.get("pid", 0),
                "tid": r.get("tid", 0),
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------------- #
# process-global collector
# --------------------------------------------------------------------- #
_collector_lock = threading.Lock()
_COLLECTOR: SpanCollector | None = None


def install_collector(capacity: int = 4096) -> SpanCollector:
    """Install (or fetch) the process-global ring collector as a sink."""
    global _COLLECTOR
    with _collector_lock:
        if _COLLECTOR is None:
            _COLLECTOR = SpanCollector(capacity)
            register_span_sink(_COLLECTOR)
        return _COLLECTOR


def current_collector() -> SpanCollector | None:
    """The installed global collector, if any."""
    return _COLLECTOR


def uninstall_collector() -> None:
    """Remove the global collector sink and drop its buffer."""
    global _COLLECTOR
    with _collector_lock:
        if _COLLECTOR is not None:
            unregister_span_sink(_COLLECTOR)
            _COLLECTOR = None
