"""Declarative SLO health rules over service stats snapshots.

The metrics registry answers "what is the value of X"; this module
answers the operator's actual question — "is the service healthy?" — by
evaluating a small set of threshold rules against one stats snapshot
(the ``{"event": "stats", ...}`` document ``repro serve/batch
--stats-every`` writes, or an in-process
:func:`~repro.obs.dashboard.snapshot_from_registry` probe).

Each :class:`HealthRule` names a quantity, how to extract it from the
snapshot, and warn/crit thresholds with a direction (``above`` — big is
bad, e.g. latency; ``below`` — small is bad, e.g. hit rates).  A rule
whose quantity is absent from the snapshot (no traffic yet, counters
missing) evaluates to OK with a ``no data`` note: health gates must not
fail on silence.

:func:`evaluate_health` returns a :class:`HealthReport` whose
``exit_code`` follows the Nagios convention the CLI exposes —
``repro health`` exits 0 (ok) / 1 (warn) / 2 (crit) so CI can gate on
it directly.  ``repro top`` evaluates the same rules per frame and uses
the per-rule statuses to highlight unhealthy rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "HealthRule",
    "RuleResult",
    "HealthReport",
    "STATUSES",
    "default_rules",
    "evaluate_health",
    "load_stats_snapshot",
]

#: Severity order; index is the process exit code (Nagios convention).
STATUSES: tuple[str, ...] = ("ok", "warn", "crit")


# --------------------------------------------------------------------- #
# snapshot accessors (shape documented in docs/OBSERVABILITY.md)
# --------------------------------------------------------------------- #
def _counter(snapshot: Mapping[str, Any], field: str) -> float | None:
    """A ServiceCounters field, from ``counters`` or the registry dump."""
    counters = snapshot.get("counters")
    if isinstance(counters, Mapping) and field in counters:
        return float(counters[field])
    series = (
        snapshot.get("metrics", {})
        .get("counters", {})
        .get(f"service_{field}_total", {})
    )
    if series:
        return float(sum(float(v) for v in series.values()))
    return None


def _counter_sum(snapshot: Mapping[str, Any], name: str) -> float | None:
    """Sum of a registry counter family across all label series."""
    series = snapshot.get("metrics", {}).get("counters", {}).get(name, {})
    if not series:
        return None
    return float(sum(float(v) for v in series.values()))


def _gauge(snapshot: Mapping[str, Any], name: str) -> float | None:
    series = snapshot.get("metrics", {}).get("gauges", {}).get(name, {})
    if not series:
        return None
    return float(sum(float(v) for v in series.values()))


def _ratio(
    snapshot: Mapping[str, Any], num_field: str, den_fields: Sequence[str]
) -> float | None:
    num = _counter(snapshot, num_field)
    parts = [_counter(snapshot, f) for f in den_fields]
    if num is None or any(p is None for p in parts):
        return None
    den = sum(p for p in parts if p is not None)
    if den <= 0:
        return None
    return num / den


def _merged_buckets(
    snapshot: Mapping[str, Any], name: str
) -> list[tuple[float, float]]:
    """All label series of a histogram summed into one cumulative list."""
    series = snapshot.get("metrics", {}).get("histograms", {}).get(name, {})
    merged: dict[float, float] = {}
    for value in series.values():
        for text, cum in value.get("buckets", {}).items():
            bound = float("inf") if text == "+Inf" else float(text)
            merged[bound] = merged.get(bound, 0.0) + float(cum)
    return sorted(merged.items())


def _quantile(pairs: list[tuple[float, float]], q: float) -> float | None:
    """Interpolated quantile over cumulative ``(bound, count)`` pairs.

    Same convention as :meth:`repro.obs.metrics.Histogram.quantile`
    (uniform mass per bucket, +Inf clamps to the largest finite bound).
    Duplicated rather than imported from the dashboard because the
    dashboard imports *this* module for row highlighting.
    """
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    target = q * total
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in pairs:
        if cum >= target:
            if bound == float("inf"):
                return prev_bound
            if cum == prev_cum:
                return bound
            frac = (target - prev_cum) / (cum - prev_cum)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_cum = bound, cum
    return prev_bound


def _hist_quantile(
    snapshot: Mapping[str, Any], name: str, q: float, scale: float = 1.0
) -> float | None:
    value = _quantile(_merged_buckets(snapshot, name), q)
    return None if value is None else value * scale


def _frontend_shed_rate(snapshot: Mapping[str, Any]) -> float | None:
    """Front-end sheds over admission decisions (None without traffic)."""
    shed = _counter_sum(snapshot, "frontend_shed_total")
    admitted = _counter_sum(snapshot, "frontend_admitted_total")
    if shed is None and admitted is None:
        return None
    total = (shed or 0.0) + (admitted or 0.0)
    if total <= 0:
        return None
    return (shed or 0.0) / total


# --------------------------------------------------------------------- #
# rules and reports
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HealthRule:
    """One threshold check over a stats snapshot.

    ``direction`` says which side of the thresholds is unhealthy:
    ``above`` (latency, queue depth, error counts) or ``below`` (hit
    and early-stop rates).  Either threshold may be ``None`` to skip
    that severity.  ``extract`` returns the quantity or ``None`` when
    the snapshot has no data for it (→ OK, noted).
    """

    name: str
    description: str
    extract: Callable[[Mapping[str, Any]], float | None]
    direction: str = "above"
    warn: float | None = None
    crit: float | None = None
    unit: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {self.direction!r}"
            )

    def evaluate(self, snapshot: Mapping[str, Any]) -> "RuleResult":
        value = self.extract(snapshot)
        if value is None:
            return RuleResult(rule=self, status="ok", value=None)
        status = "ok"
        if self.direction == "above":
            if self.crit is not None and value > self.crit:
                status = "crit"
            elif self.warn is not None and value > self.warn:
                status = "warn"
        else:
            if self.crit is not None and value < self.crit:
                status = "crit"
            elif self.warn is not None and value < self.warn:
                status = "warn"
        return RuleResult(rule=self, status=status, value=value)


@dataclass(frozen=True)
class RuleResult:
    """Outcome of one rule against one snapshot."""

    rule: HealthRule
    status: str
    value: float | None

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule.name,
            "status": self.status,
            "value": self.value,
            "warn": self.rule.warn,
            "crit": self.rule.crit,
            "direction": self.rule.direction,
            "unit": self.rule.unit,
        }


@dataclass(frozen=True)
class HealthReport:
    """All rule results for one snapshot, plus the overall verdict."""

    results: tuple[RuleResult, ...]

    @property
    def status(self) -> str:
        """Worst individual status (``ok`` for an empty rule set)."""
        worst = 0
        for r in self.results:
            worst = max(worst, STATUSES.index(r.status))
        return STATUSES[worst]

    @property
    def exit_code(self) -> int:
        """0 ok / 1 warn / 2 crit — ``repro health``'s process exit."""
        return STATUSES.index(self.status)

    def status_of(self, rule_name: str) -> str | None:
        """The status of one rule by name (``None`` if not evaluated)."""
        for r in self.results:
            if r.rule.name == rule_name:
                return r.status
        return None

    def failing(self) -> list[RuleResult]:
        """Results that are warn or crit, worst first."""
        bad = [r for r in self.results if r.status != "ok"]
        return sorted(bad, key=lambda r: -STATUSES.index(r.status))

    def to_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "rules": [r.to_json() for r in self.results],
        }

    def format(self) -> str:
        """Human-readable table, one rule per line, verdict last."""
        lines = []
        for r in self.results:
            mark = {"ok": "ok  ", "warn": "WARN", "crit": "CRIT"}[r.status]
            if r.value is None:
                shown = "-   (no data)"
            else:
                shown = f"{r.value:.4g}{r.rule.unit}"
            limits = []
            cmp = ">" if r.rule.direction == "above" else "<"
            if r.rule.warn is not None:
                limits.append(f"warn {cmp}{r.rule.warn:g}{r.rule.unit}")
            if r.rule.crit is not None:
                limits.append(f"crit {cmp}{r.rule.crit:g}{r.rule.unit}")
            lines.append(
                f"{mark}  {r.rule.name:<22} {shown:<16} "
                f"[{', '.join(limits) or 'informational'}]  "
                f"{r.rule.description}"
            )
        lines.append(f"health: {self.status}")
        return "\n".join(lines)


def default_rules(
    slo_ms: float = 250.0,
) -> tuple[HealthRule, ...]:
    """The stock rule set ``repro health`` and ``repro top`` evaluate.

    Latency thresholds derive from the SLO target (warn at the SLO,
    crit at 4×); rate thresholds are deliberately lenient — they flag
    a service that is clearly mis-deployed (precision requests never
    stopping early, evidence plane never hitting), not one that is
    merely cold.
    """
    return (
        HealthRule(
            name="latency_p99_ms",
            description="p99 request latency (all algorithms merged)",
            extract=lambda s: _hist_quantile(
                s, "service_request_latency_seconds", 0.99, scale=1e3
            ),
            direction="above",
            warn=slo_ms,
            crit=slo_ms * 4,
            unit="ms",
        ),
        HealthRule(
            name="queue_depth",
            description="current dispatcher queue depth",
            extract=lambda s: _gauge(s, "service_queue_depth_current"),
            direction="above",
            warn=32,
            crit=256,
        ),
        HealthRule(
            name="early_stop_ratio",
            description="precision requests stopped by the rule, not the cap",
            extract=lambda s: _ratio(s, "early_stops", ("precision_requests",)),
            direction="below",
            warn=0.5,
            crit=0.1,
        ),
        HealthRule(
            name="evidence_hit_rate",
            description="precision requests seeded from pooled evidence",
            extract=lambda s: _ratio(
                s, "evidence_hits", ("evidence_hits", "evidence_misses")
            ),
            direction="below",
            warn=0.25,
            crit=0.02,
        ),
        HealthRule(
            name="cache_hit_rate",
            description="exact-plane lookups served from cache",
            extract=lambda s: _ratio(
                s, "cache_hits", ("cache_hits", "cache_misses")
            ),
            direction="below",
            warn=0.05,
        ),
        HealthRule(
            name="vectorized_fallbacks",
            description="auto-mode requests that lost the vectorized kernel",
            extract=lambda s: _counter_sum(
                s, "service_vectorized_fallback_total"
            ),
            direction="above",
            warn=0,
        ),
        HealthRule(
            name="telemetry_duplicates",
            description="worker telemetry payloads dropped as duplicates",
            extract=lambda s: _counter_sum(
                s, "telemetry_chunks_duplicate_total"
            ),
            direction="above",
            warn=0,
        ),
        HealthRule(
            name="frontend_shed_rate",
            description="front-end requests shed by admission control",
            extract=_frontend_shed_rate,
            direction="above",
            warn=0.01,
            crit=0.2,
        ),
        HealthRule(
            name="frontend_queue_saturation",
            description="worst shard queue depth over capacity",
            extract=lambda s: _gauge(s, "frontend_queue_saturation"),
            direction="above",
            warn=0.5,
            crit=0.9,
        ),
    )


def evaluate_health(
    snapshot: Mapping[str, Any],
    rules: Sequence[HealthRule] | None = None,
    slo_ms: float = 250.0,
) -> HealthReport:
    """Evaluate *rules* (default: :func:`default_rules`) on *snapshot*."""
    if rules is None:
        rules = default_rules(slo_ms=slo_ms)
    return HealthReport(results=tuple(r.evaluate(snapshot) for r in rules))


def load_stats_snapshot(path: str) -> dict[str, Any] | None:
    """The last ``stats`` event in a ``--stats-file`` JSONL, or ``None``."""
    last: dict[str, Any] | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict) and obj.get("event", "stats") == "stats":
                last = obj
    return last
