"""Structured JSON-lines logging with trace correlation.

:func:`get_logger` returns a named :class:`StructLogger` whose methods
emit one JSON object per line::

    {"ts": 1722860000.123456, "level": "info", "logger": "repro.service",
     "event": "request_completed", "trace_id": "9f…", "latency_s": 0.012}

Logging is **off by default** — the library stays silent until
:func:`configure_logging` installs an output stream (the CLI wires this
to ``--log-level``).  Records automatically carry the active
``trace_id``/``span_id`` from :mod:`repro.obs.spans`, which is what
makes one service request greppable as a connected event tree.

This is deliberately not built on :mod:`logging`: the hot paths need a
single ``is-enabled`` branch costing nanoseconds, and the schema (flat
JSON, trace correlation) is the product, not an adapter concern.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Any, Mapping

from .metrics import enabled as _obs_enabled
from .spans import current_span_id, current_trace_id

__all__ = [
    "StructLogger",
    "get_logger",
    "configure_logging",
    "disable_logging",
    "logging_enabled",
    "LEVELS",
]

#: Numeric severities (stdlib-compatible ordering).
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    __slots__ = ("stream", "level", "lock")

    def __init__(self) -> None:
        self.stream: IO[str] | None = None
        self.level: int = LEVELS["info"]
        self.lock = threading.Lock()


_config = _Config()


def configure_logging(
    stream: IO[str] | None = None, level: str | int = "info"
) -> None:
    """Enable structured logging to *stream* (default ``sys.stderr``) at
    *level* (``debug``/``info``/``warning``/``error``)."""
    if isinstance(level, str):
        try:
            level_no = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    else:
        level_no = int(level)
    _config.stream = stream if stream is not None else sys.stderr
    _config.level = level_no


def disable_logging() -> None:
    """Turn structured logging back off (the default state)."""
    _config.stream = None


def logging_enabled(level: str = "debug") -> bool:
    """Whether a record at *level* would currently be emitted."""
    return (
        _config.stream is not None
        and _obs_enabled()
        and LEVELS.get(level, 0) >= _config.level
    )


class StructLogger:
    """A named logger emitting JSON-lines events with bound fields."""

    __slots__ = ("name", "_fields")

    def __init__(self, name: str, fields: Mapping[str, Any] | None = None):
        self.name = name
        self._fields = dict(fields or {})

    def bind(self, **fields: Any) -> "StructLogger":
        """A child logger whose records always include *fields*."""
        return StructLogger(self.name, {**self._fields, **fields})

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one event at *level*; extra *fields* become JSON keys.

        Explicit ``trace_id``/``span_id`` fields override the ambient
        span context (used when crossing threads).
        """
        stream = _config.stream
        if (
            stream is None
            or not _obs_enabled()
            or LEVELS.get(level, 0) < _config.level
        ):
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        span_id = current_span_id()
        if span_id is not None:
            record["span_id"] = span_id
        record.update(self._fields)
        record.update(fields)
        line = json.dumps(record, default=repr, separators=(",", ":"))
        with _config.lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:  # pragma: no cover - stream closed mid-run
                pass

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


_loggers: dict[str, StructLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructLogger:
    """The (cached) structured logger for *name*."""
    logger = _loggers.get(name)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.get(name)
            if logger is None:
                logger = StructLogger(name)
                _loggers[name] = logger
    return logger
