"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The paper's complexity claims (``O(log* n)`` / ``O(log n)`` /
``O(log^2 n)`` rounds) are *distributional* statements, and so are the
service-level questions an operator asks ("how do request latencies
spread?", "how many trials land per chunk?").  Plain monotonic counters
cannot answer either — this module provides the registry the whole
codebase reports through:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  metric kinds, each thread-safe and allocation-light;
* :class:`MetricFamily` — a named metric with optional Prometheus-style
  labels (``family.labels(algorithm="luby_fast").observe(7)``);
* :class:`MetricsRegistry` — get-or-create families by name, render the
  whole registry as Prometheus text exposition or a JSON-safe snapshot.

Registry resolution follows a two-level scheme: a process-global default
registry (:func:`default_registry`) plus a :func:`use_registry` context
manager that rebinds :func:`get_registry` for the current context.  The
estimation service binds its own registry around trial execution, so
engine-level observations (rounds per trial, messages per run) made deep
inside :mod:`repro.analysis.montecarlo` land in the *serving* registry
without threading a handle through every call.

:func:`set_enabled` is the global kill switch: with observability
disabled every hook short-circuits, which
``benchmarks/test_engine_speed.py`` uses to bound instrumentation
overhead on the warm path (<5%).
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "label_key",
    "parse_label_key",
    "get_registry",
    "default_registry",
    "use_registry",
    "set_enabled",
    "enabled",
    "LATENCY_BUCKETS",
    "ROUND_BUCKETS",
    "COUNT_BUCKETS",
    "AGE_BUCKETS",
]

#: Request/span latency buckets (seconds) — sub-ms inline hits up to slow
#: multi-chunk requests.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Round-count buckets — covers O(log* n) through O(log^2 n) regimes.
ROUND_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
)

#: Generic size buckets (trials per chunk, queue depth, messages).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)

#: Cache-entry age at hit (seconds).
AGE_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 3600.0,
)

_enabled = True


def set_enabled(flag: bool) -> None:
    """Globally enable/disable observability hooks (spans, bridge, logs)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    """Whether observability hooks are active (default: yes)."""
    return _enabled


def _fmt_number(value: float) -> str:
    """Prometheus-style value rendering (integers without trailing .0)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _parse_number(text: str) -> float:
    """Inverse of :func:`_fmt_number` (``+Inf`` → ``math.inf``)."""
    if text == "+Inf":
        return math.inf
    return float(text)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash, double-quote, and line-feed are the three characters the
    exposition format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text-format spec (``\\`` and LF)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the counter (test isolation; not for production flows)."""
        with self._lock:
            self._value = 0.0

    def snapshot_value(self) -> float:
        return self._value

    def merge_snapshot_value(self, value: float) -> None:
        """Fold a worker counter delta in (plain addition)."""
        self.inc(float(value))


class Gauge:
    """A value that can go up and down (queue depth, resident pools)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self.set(0.0)

    def snapshot_value(self) -> float:
        return self._value

    def merge_snapshot_value(self, value: float) -> None:
        """Adopt the most recent reported value (gauges are last-write)."""
        self.set(float(value))


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (cumulative) semantics.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail.  ``observe`` is O(log #buckets) (bisect) plus one lock.
    """

    kind = "histogram"
    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        Hot loops (per-trial round counts) accumulate locally and flush
        once per chunk — same totals, a fraction of the locking and
        boxing traffic of per-value :meth:`observe` calls.
        """
        if not values:
            return
        bounds = self.bounds
        idxs = [bisect.bisect_left(bounds, v) for v in values]
        total = float(sum(values))
        with self._lock:
            counts = self._counts
            for idx in idxs:
                counts[idx] += 1
            self._sum += total
            self._count += len(values)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile by linear interpolation over buckets.

        Uses the Prometheus ``histogram_quantile`` convention: the mass
        inside each bucket is assumed uniform between the previous upper
        bound and its own (the first bucket's lower edge is 0, matching
        the non-negative quantities this registry records).  Observations
        in the ``+Inf`` bucket clamp to the largest finite bound — a
        known-floor estimate rather than an invented tail.  Returns
        ``None`` for an empty histogram (callers render it as ``-``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be within [0, 1]")
        cum = self.cumulative_buckets()
        total = cum[-1][1]
        if total == 0:
            return None
        target = q * total
        prev_bound = 0.0
        prev_cum = 0
        for bound, c in cum:
            if c >= target:
                if bound == math.inf:
                    return prev_bound
                if c == prev_cum:
                    return bound
                frac = (target - prev_cum) / (c - prev_cum)
                return prev_bound + frac * (bound - prev_bound)
            prev_bound, prev_cum = bound, c
        return prev_bound  # pragma: no cover - cum always reaches total

    def snapshot_value(self) -> dict[str, Any]:
        buckets = {
            _fmt_number(bound): cum for bound, cum in self.cumulative_buckets()
        }
        return {"count": self._count, "sum": self._sum, "buckets": buckets}

    def merge_snapshot_value(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot_value` dict from another histogram in.

        The snapshot carries *cumulative* bucket counts keyed by rendered
        upper bound; they are decumulated back to per-bucket increments
        and added under one lock, so merging worker deltas is exact
        (counter-correct counts and sums, not approximations).  Bounds
        present in the snapshot but unknown to this histogram raise —
        merging histograms with different bucket layouts would silently
        reshape the distribution.
        """
        buckets = snap.get("buckets", {})
        incs = [0] * (len(self.bounds) + 1)
        index = {b: i for i, b in enumerate(self.bounds)}
        index[math.inf] = len(self.bounds)
        prev = 0
        for bound_text, cum in buckets.items():
            bound = _parse_number(bound_text)
            try:
                idx = index[bound]
            except KeyError:
                raise ValueError(
                    f"cannot merge histogram snapshot: unknown bucket "
                    f"bound {bound_text!r}"
                ) from None
            incs[idx] += int(cum) - prev
            prev = int(cum)
        with self._lock:
            for i, d in enumerate(incs):
                self._counts[i] += d
            self._sum += float(snap.get("sum", 0.0))
            self._count += int(snap.get("count", 0))


class MetricFamily:
    """A named metric with zero or more label dimensions.

    An unlabeled family behaves as a single metric (``family.inc()``,
    ``family.observe(x)``); a labeled family hands out per-label-value
    children via :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        help: str,
        kind: type,
        labelnames: Sequence[str] = (),
        **metric_kwargs: Any,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._kind = kind
        self._metric_kwargs = metric_kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    @property
    def kind(self) -> str:
        return self._kind.kind

    def labels(self, **labelvalues: Any):
        """The child metric for one combination of label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._kind(**self._metric_kwargs)
                self._children[key] = child
        return child

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    # Convenience delegation for the (common) unlabeled case.
    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._solo().observe_many(values)

    def quantile(self, q: float) -> float | None:
        return self._solo().quantile(q)

    @property
    def value(self) -> float:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()

    def children(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels_dict, metric)`` pairs, insertion-ordered."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), metric) for key, metric in items
        ]


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


def label_key(labels: Mapping[str, str]) -> str:
    """Render labels as the ``'k="v",...'`` snapshot key (escaped)."""
    return ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()
    )


def parse_label_key(key: str) -> dict[str, str]:
    """Inverse of :func:`label_key`: ``'k="v",...'`` → ``{"k": "v"}``.

    Understands the text-format escapes (``\\\\``, ``\\"``, ``\\n``) so
    snapshot keys survive a render/parse round trip even for hostile
    label values.  Used when merging worker snapshots back into the
    parent registry.
    """
    labels: dict[str, str] = {}
    i, n = 0, len(key)
    while i < n:
        eq = key.index("=", i)
        name = key[i:eq]
        if key[eq + 1] != '"':
            raise ValueError(f"malformed label key: {key!r}")
        j = eq + 2
        out: list[str] = []
        while True:
            ch = key[j]
            if ch == "\\":
                nxt = key[j + 1]
                out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
            elif ch == '"':
                j += 1
                break
            else:
                out.append(ch)
                j += 1
        labels[name] = "".join(out)
        if j < n:
            if key[j] != ",":
                raise ValueError(f"malformed label key: {key!r}")
            j += 1
        i = j
    return labels


class MetricsRegistry:
    """Named metric families with dual exposition (Prometheus text + JSON)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------ #
    # get-or-create
    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        help: str,
        kind: type,
        labelnames: Sequence[str],
        **metric_kwargs: Any,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, help, kind, labelnames, **metric_kwargs
                    )
                    self._families[name] = family
        if family._kind is not kind or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{family.kind}{family.labelnames} — cannot redeclare as "
                f"{kind.kind}{tuple(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help, Counter, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, help, Gauge, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        """Get or create a fixed-bucket histogram family."""
        return self._family(
            name,
            help,
            Histogram,
            labelnames,
            buckets=tuple(buckets) if buckets is not None else LATENCY_BUCKETS,
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def quantiles(
        self, name: str, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> dict[str, dict[str, float | None]]:
        """Percentile summaries for histogram family *name*.

        Returns ``{label_key: {"count", "mean", "p50", ...}}`` with one
        ``p<percentile>`` entry per requested quantile (``0.5`` → ``p50``,
        ``0.99`` → ``p99``) — the compact view ``repro stats`` and the
        ``--stats-every`` snapshots surface instead of raw bucket dumps.
        Empty dict when the family does not exist or is not a histogram.
        """
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            return {}
        out: dict[str, dict[str, float | None]] = {}
        for labels, metric in family.children():
            key = label_key(labels)
            count = metric.count
            summary: dict[str, float | None] = {
                "count": float(count),
                "mean": (metric.sum / count) if count else None,
            }
            for q in qs:
                label = f"p{q * 100:g}".replace(".", "_")
                summary[label] = metric.quantile(q)
            out[key] = summary
        return out

    def aggregated_quantiles(
        self,
        name: str,
        qs: Sequence[float] = (0.5, 0.95, 0.99),
        drop_labels: Sequence[str] = ("worker",),
    ) -> dict[str, dict[str, float | None]]:
        """Like :meth:`quantiles`, but with *drop_labels* summed away.

        Histogram children whose labels differ only in the dropped
        dimensions are merged (bucket-wise, via the snapshot/merge path,
        so counts and sums stay exact) before quantiles are computed.
        The canonical use is collapsing per-worker series — latency
        percentiles across the whole fleet rather than one line per
        ``worker="3"`` — which is what ``repro stats`` and ``repro top``
        want.  Empty dict when the family is absent or not a histogram.
        """
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            return {}
        dropped = set(drop_labels)
        merged: dict[str, Histogram] = {}
        for labels, metric in family.children():
            key = label_key(
                {k: v for k, v in labels.items() if k not in dropped}
            )
            agg = merged.get(key)
            if agg is None:
                agg = Histogram(metric.bounds)
                merged[key] = agg
            agg.merge_snapshot_value(metric.snapshot_value())
        out: dict[str, dict[str, float | None]] = {}
        for key, metric in merged.items():
            count = metric.count
            summary: dict[str, float | None] = {
                "count": float(count),
                "mean": (metric.sum / count) if count else None,
            }
            for q in qs:
                label = f"p{q * 100:g}".replace(".", "_")
                summary[label] = metric.quantile(q)
            out[key] = summary
        return out

    def reset(self) -> None:
        """Zero every metric (test isolation)."""
        for family in self.families():
            family.reset()

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            children = family.children()
            if not children:
                continue
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in children:
                if family.kind == "histogram":
                    for bound, cum in metric.cumulative_buckets():
                        bl = dict(labels)
                        bl["le"] = _fmt_number(bound)
                        lines.append(
                            f"{family.name}_bucket{_label_suffix(bl)} {cum}"
                        )
                    suffix = _label_suffix(labels)
                    lines.append(
                        f"{family.name}_sum{suffix} {_fmt_number(metric.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {metric.count}")
                else:
                    lines.append(
                        f"{family.name}{_label_suffix(labels)} "
                        f"{_fmt_number(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe snapshot: ``{kind: {name: {label_key: value}}}``.

        ``label_key`` is ``'k="v",...'`` (empty string for unlabeled
        metrics); histogram values are ``{count, sum, buckets}`` with
        cumulative bucket counts keyed by upper bound.
        """
        out: dict[str, dict[str, dict[str, Any]]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for family in self.families():
            children = family.children()
            if not children:
                continue
            series: dict[str, Any] = {}
            for labels, metric in children:
                series[label_key(labels)] = metric.snapshot_value()
            out[section[family.kind]][family.name] = series
        return out


# --------------------------------------------------------------------- #
# registry resolution: process default + context override
# --------------------------------------------------------------------- #
_DEFAULT_REGISTRY = MetricsRegistry()
_registry_var: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def default_registry() -> MetricsRegistry:
    """The process-global registry (engine-level observations land here
    unless a context registry is bound)."""
    return _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently bound registry (:func:`use_registry`), else the
    process default."""
    bound = _registry_var.get()
    return bound if bound is not None else _DEFAULT_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Bind *registry* as the context's :func:`get_registry` target.

    The estimation service binds its own registry around dispatch so
    engine observations made during trial execution feed the serving
    registry rather than the process default.
    """
    token = _registry_var.set(registry)
    try:
        yield registry
    finally:
        _registry_var.reset(token)
