"""Low-overhead phase profiling for the engines (``repro.obs.profile``).

The spans layer (:mod:`repro.obs.spans`) answers *service*-level timing
questions — one span per request phase, logged and bucketed.  The hot
engine internals need something an order of magnitude cheaper: FAIRTREE
executes four algorithmic stages per run and a Luby sweep iterates
dozens of times per trial, so per-event logging would dominate the very
thing being measured.

This module provides a :class:`PhaseProfiler` that engine code reports
into through three hook shapes:

* :func:`phase` — a context manager timing one named phase
  (``with phase("fair_tree.stage1_cut"): ...``);
* :meth:`PhaseProfiler.record_round` — per-round wall-clock inside
  iteration loops (callers hoist :func:`current_profiler` and do the
  ``perf_counter`` arithmetic inline);
* :meth:`PhaseProfiler.count` — event counting (numpy kernel
  invocations, staged-runtime stage entries).

**Off by default, contextvar-scoped**: no profiler is bound unless the
caller opens :func:`use_profiler`, and every hook short-circuits on a
single contextvar read when none is.  This is independent of the global
:func:`repro.obs.metrics.set_enabled` switch, so the benchmarked <5%
observability-overhead gate is unaffected by profiling hooks (they cost
the same — one ``None`` check — on both sides of that comparison).

A finished profiler renders as a JSON-safe :meth:`~PhaseProfiler.report`
and can :meth:`~PhaseProfiler.flush_to_registry` into the active metrics
registry (``engine_phase_seconds{phase=...}`` /
``engine_round_seconds{phase=...}``), joining the same exposition the
service histograms use.  Construct it with ``emit_spans=True`` to also
emit each completed :func:`phase` into the span tree (heavier; useful
when correlating engine phases with request traces).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from .metrics import LATENCY_BUCKETS, get_registry

__all__ = [
    "PhaseProfiler",
    "current_profiler",
    "use_profiler",
    "phase",
]

_profiler_var: ContextVar["PhaseProfiler | None"] = ContextVar(
    "repro_obs_profiler", default=None
)


# The profiler bound to this context, or ``None`` (the default).  Bound
# directly to the ContextVar's C-level getter so per-kernel hooks pay no
# Python-frame cost; hot loops hoist the lookup once and guard their
# timing arithmetic on the result being non-``None``.
current_profiler = _profiler_var.get


@contextmanager
def use_profiler(
    profiler: "PhaseProfiler | None" = None,
) -> Iterator["PhaseProfiler"]:
    """Bind *profiler* (a fresh one if omitted) for the current context.

    Everything executed under the ``with`` — including nested engine
    calls — reports into it::

        with use_profiler() as prof:
            FastFairTree().run(graph, rng)
        print(prof.report()["phases"])
    """
    if profiler is None:
        profiler = PhaseProfiler()
    token = _profiler_var.set(profiler)
    try:
        yield profiler
    finally:
        _profiler_var.reset(token)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time one named phase into the bound profiler (no-op when unbound)."""
    prof = _profiler_var.get()
    if prof is None:
        yield
        return
    if prof.emit_spans:
        from .spans import span  # deferred: spans is the heavier layer

        with span("phase." + name):
            started = time.perf_counter()
            try:
                yield
            finally:
                prof.add_phase(name, time.perf_counter() - started)
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        prof.add_phase(name, time.perf_counter() - started)


class PhaseProfiler:
    """Accumulates named-phase timings, per-round timings, and counts.

    Designed for one profiler per run/chunk (single writer).  The hot
    mutation hooks are deliberately lock-free: a kernel invocation pays
    one dict lookup and a couple of list-cell updates, each coherent
    under CPython's GIL.  Mutating one profiler from multiple threads
    concurrently may drop individual updates — bind one profiler per
    thread if that matters.  Readers (:meth:`report`,
    :meth:`flush_to_registry`, :meth:`reset`) serialize against each
    other under a lock.  All durations are seconds.
    """

    __slots__ = ("_lock", "_phases", "_rounds", "_counts", "emit_spans")

    def __init__(self, emit_spans: bool = False) -> None:
        self._lock = threading.Lock()
        # name -> [calls, total_s]
        self._phases: dict[str, list[float]] = {}
        # name -> [rounds, total_s, max_s]
        self._rounds: dict[str, list[float]] = {}
        self._counts: dict[str, int] = {}
        self.emit_spans = emit_spans

    # ------------------------------------------------------------------ #
    # recording hooks
    # ------------------------------------------------------------------ #
    def add_phase(self, name: str, duration_s: float) -> None:
        """Record one completed phase of *duration_s* seconds."""
        cell = self._phases.get(name)
        if cell is None:
            self._phases[name] = [1, duration_s]
        else:
            cell[0] += 1
            cell[1] += duration_s

    def record_round(self, name: str, duration_s: float) -> None:
        """Record one round/iteration of loop *name*."""
        cell = self._rounds.get(name)
        if cell is None:
            self._rounds[name] = [1, duration_s, duration_s]
        else:
            cell[0] += 1
            cell[1] += duration_s
            if duration_s > cell[2]:
                cell[2] = duration_s

    def record_rounds(
        self, name: str, rounds: int, total_s: float, max_s: float
    ) -> None:
        """Bulk-record *rounds* iterations of loop *name* in one call.

        Sweep loops accumulate round timings in locals and flush once
        per sweep, so the per-round cost inside the loop is just the
        two ``perf_counter`` reads.
        """
        cell = self._rounds.get(name)
        if cell is None:
            self._rounds[name] = [rounds, total_s, max_s]
        else:
            cell[0] += rounds
            cell[1] += total_s
            if max_s > cell[2]:
                cell[2] = max_s

    def count(self, name: str, amount: int = 1) -> None:
        """Bump event counter *name* (kernel invocations, stage entries)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def report(self) -> dict[str, Any]:
        """JSON-safe summary of everything recorded so far."""
        with self._lock:
            phases = {k: list(v) for k, v in self._phases.items()}
            rounds = {k: list(v) for k, v in self._rounds.items()}
            counts = dict(self._counts)
        return {
            "phases": {
                name: {
                    "calls": int(calls),
                    "total_s": total,
                    "mean_ms": (total / calls) * 1e3 if calls else 0.0,
                }
                for name, (calls, total) in phases.items()
            },
            "rounds": {
                name: {
                    "rounds": int(n),
                    "total_s": total,
                    "mean_ms": (total / n) * 1e3 if n else 0.0,
                    "max_ms": peak * 1e3,
                }
                for name, (n, total, peak) in rounds.items()
            },
            "counts": counts,
        }

    def flush_to_registry(self, registry: Any | None = None) -> None:
        """Feed phase/round durations into a metrics registry.

        Observes ``engine_phase_seconds{phase=...}`` with each phase's
        *total* duration per call-batch and ``engine_round_seconds`` with
        per-round means, so profiled runs are queryable through the same
        Prometheus/JSON expositions as the service histograms.
        """
        reg = registry if registry is not None else get_registry()
        h_phase = reg.histogram(
            "engine_phase_seconds",
            "Wall-clock per profiled engine phase invocation (mean)",
            buckets=LATENCY_BUCKETS,
            labelnames=("phase",),
        )
        h_round = reg.histogram(
            "engine_round_seconds",
            "Mean wall-clock per round of profiled engine loops",
            buckets=LATENCY_BUCKETS,
            labelnames=("phase",),
        )
        with self._lock:
            phases = {k: list(v) for k, v in self._phases.items()}
            rounds = {k: list(v) for k, v in self._rounds.items()}
        for name, (calls, total) in phases.items():
            if calls:
                h_phase.labels(phase=name).observe(total / calls)
        for name, (n, total, _peak) in rounds.items():
            if n:
                h_round.labels(phase=name).observe(total / n)

    def reset(self) -> None:
        """Drop everything recorded (reuse across benchmark repetitions)."""
        with self._lock:
            self._phases.clear()
            self._rounds.clear()
            self._counts.clear()
