"""Cross-process telemetry plane (``repro.obs.remote``).

Spans and metrics are contextvar-scoped, which means they historically
died at the :class:`~repro.analysis.montecarlo.TrialPool` boundary: a
chunk dispatched to a worker process ran with no trace context, its
engine observations landed in the *worker's* default registry, and the
parent never saw either.  This module is the bridge:

* :class:`TraceContext` — the picklable ``(trace_id, span_id)`` pair the
  pool ships with every chunk; workers re-enter it via :func:`use_trace`
  so estimator → scheduler → worker-chunk → engine-phase spans form one
  connected tree under both ``fork`` and ``spawn`` start methods.
* :func:`run_chunk_with_telemetry` — the worker-side harness.  It binds
  a **fresh** :class:`~repro.obs.metrics.MetricsRegistry` (so the
  snapshot it takes afterwards *is* the chunk's delta — nothing to
  subtract, and fork-inherited parent counts can never leak in), a
  :class:`~repro.obs.profile.PhaseProfiler`, and a chunk-local span
  buffer (:func:`~repro.obs.spans.capture_spans` *replaces* any
  inherited sinks, so a fork-started worker cannot double-write the
  parent's ``--trace-file``).  Everything is piggybacked on the chunk
  result as a :class:`ChunkResult` — no extra IPC channel.
* :class:`RemoteTelemetry` — the parent-side merger.  ``absorb`` folds a
  worker's metric snapshot into the serving registry under a ``worker``
  label (merge-correct counters and histograms, exact bucket addition)
  and forwards the worker's span records to the local sinks.  Chunk IDs
  are remembered, so absorbing the same chunk twice — e.g. a retried
  dispatch whose first result later arrives anyway — is idempotent.

The plane is on by default whenever observability is enabled; set
``REPRO_TELEMETRY=0`` to ship bare results (the pre-plane wire format).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from .metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    enabled,
    parse_label_key,
    use_registry,
)
from .profile import PhaseProfiler, use_profiler
from .spans import (
    bind_trace,
    capture_spans,
    current_span_id,
    current_trace_id,
    emit_span_record,
    new_span_id,
    span,
)

__all__ = [
    "TELEMETRY_ENV",
    "telemetry_enabled",
    "TraceContext",
    "current_trace_context",
    "use_trace",
    "new_chunk_id",
    "ChunkTelemetry",
    "ChunkResult",
    "run_chunk_with_telemetry",
    "merge_worker_snapshot",
    "RemoteTelemetry",
]

#: Environment kill switch for the cross-process plane specifically
#: (observability at large keeps :func:`repro.obs.metrics.set_enabled`).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_FALSE_WORDS = frozenset({"0", "false", "off", "no"})


def telemetry_enabled() -> bool:
    """Whether chunks should carry trace context + metric deltas.

    True when observability is globally enabled and ``REPRO_TELEMETRY``
    is unset or truthy.  Checked on both sides of the process boundary:
    the parent decides whether to ship telemetry packets, the worker
    harness short-circuits to a bare call when disabled.
    """
    if not enabled():
        return False
    return os.environ.get(TELEMETRY_ENV, "1").strip().lower() not in _FALSE_WORDS


@dataclass(frozen=True)
class TraceContext:
    """The ambient trace position, picklable for the pool wire.

    ``span_id`` is the would-be *parent* of whatever the receiving side
    opens next — for a chunk that is the dispatching ``scheduler.dispatch``
    span, so worker chunk spans attach under it in the exported tree.
    """

    trace_id: str | None = None
    span_id: str | None = None


def current_trace_context() -> TraceContext:
    """Capture the calling context's trace position (possibly empty)."""
    return TraceContext(current_trace_id(), current_span_id())


@contextmanager
def use_trace(ctx: TraceContext | None) -> Iterator[None]:
    """Re-enter *ctx* on this side of a process/thread hop.

    Always binds — an empty/``None`` context still *clears* whatever
    trace state a fork-started worker inherited from its parent, so a
    chunk never attaches to a stale request's tree.
    """
    if ctx is None:
        ctx = TraceContext()
    with bind_trace(ctx.trace_id, ctx.span_id):
        yield


def new_chunk_id() -> str:
    """A fresh chunk identity (64-bit hex) for merge dedup."""
    return os.urandom(8).hex()


@dataclass
class ChunkTelemetry:
    """Everything a worker observed while executing one chunk."""

    chunk_id: str
    worker: str
    metrics: dict[str, Any]
    spans: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class ChunkResult:
    """A chunk's payload plus its piggybacked telemetry (or ``None``)."""

    value: Any
    telemetry: ChunkTelemetry | None = None


def _synth_phase_spans(
    report: Mapping[str, Any],
    trace_id: str | None,
    parent_id: str | None,
    started_wall: float,
    pid: int,
    tid: int,
) -> list[dict[str, Any]]:
    """Render a profiler report as engine-phase span records.

    Per-call spans inside the engines would dominate the work being
    measured, so the profiler only keeps (calls, total) per phase; this
    lays those aggregates out sequentially from the chunk's start under
    the chunk span — a faithful *breakdown* (exact totals), not a
    faithful *timeline* (no per-call boundaries).
    """
    records: list[dict[str, Any]] = []
    offset = 0.0
    for name, cell in report.get("phases", {}).items():
        total = float(cell.get("total_s", 0.0))
        records.append(
            {
                "name": "phase." + name,
                "trace_id": trace_id,
                "span_id": new_span_id(),
                "parent_id": parent_id,
                "ts": started_wall + offset,
                "dur_s": total,
                "pid": pid,
                "tid": tid,
                "fields": {"calls": cell.get("calls", 0), "synthetic": True},
            }
        )
        offset += total
    return records


def run_chunk_with_telemetry(
    fn: Callable[[], Any],
    ctx: TraceContext | None,
    chunk_id: str,
    *,
    algorithm: str = "",
    trials: int = 0,
    vectorized: bool = False,
) -> ChunkResult:
    """Execute *fn* inside the worker-side telemetry harness.

    Re-enters *ctx*, binds a fresh delta registry + profiler + span
    buffer, runs the chunk under a ``pool.chunk`` span, and returns the
    chunk value together with the registry snapshot and captured span
    records.  When the plane is disabled this is a bare call with no
    telemetry attached.
    """
    if not telemetry_enabled():
        return ChunkResult(fn())
    delta = MetricsRegistry()
    captured: list[dict[str, Any]] = []
    prof = PhaseProfiler()
    worker = f"pid:{os.getpid()}"
    started_wall = time.time()
    started = time.perf_counter()
    with use_trace(ctx), use_registry(delta), capture_spans(captured.append):
        with use_profiler(prof):
            with span(
                "pool.chunk",
                algorithm=algorithm,
                trials=trials,
                vectorized=vectorized,
                worker=worker,
            ) as chunk_span:
                value = fn()
    elapsed = time.perf_counter() - started
    prof.flush_to_registry(delta)
    delta.histogram(
        "worker_chunk_seconds",
        "Wall-clock per chunk executed in this worker",
        buckets=LATENCY_BUCKETS,
        labelnames=("algorithm",),
    ).labels(algorithm=algorithm).observe(elapsed)
    if trials:
        delta.counter(
            "worker_trials_total",
            "Trials executed in this worker",
            labelnames=("algorithm",),
        ).labels(algorithm=algorithm).inc(trials)
        delta.histogram(
            "worker_trials_per_chunk",
            "Trials per chunk executed in this worker",
            buckets=COUNT_BUCKETS,
            labelnames=("algorithm",),
        ).labels(algorithm=algorithm).observe(trials)
    captured.extend(
        _synth_phase_spans(
            prof.report(),
            chunk_span.trace_id,
            chunk_span.span_id,
            started_wall,
            os.getpid(),
            threading.get_ident(),
        )
    )
    return ChunkResult(
        value, ChunkTelemetry(chunk_id, worker, delta.snapshot(), captured)
    )


def merge_worker_snapshot(
    registry: MetricsRegistry, snapshot: Mapping[str, Any], worker: str
) -> None:
    """Fold one worker registry snapshot into *registry* under a
    ``worker`` label.

    Counters add, gauges adopt the reported value, histograms add
    decumulated bucket counts — so merging N chunk deltas equals having
    observed everything in-process.  If a family name already exists in
    *registry* with incompatible labels (e.g. the parent itself observed
    ``obs_span_duration_seconds{span=...}`` without a ``worker`` label),
    the merged series land under a ``worker_``-prefixed family name
    instead of corrupting the resident one.
    """
    kinds = (
        ("counters", registry.counter, False),
        ("gauges", registry.gauge, False),
        ("histograms", registry.histogram, True),
    )
    for section, getter, is_hist in kinds:
        for name, series in snapshot.get(section, {}).items():
            for key, value in series.items():
                labels = parse_label_key(key) if key else {}
                labels["worker"] = worker
                labelnames = tuple(labels)
                kwargs: dict[str, Any] = {}
                if is_hist:
                    bounds = [
                        b
                        for b in value.get("buckets", {})
                        if b != "+Inf"
                    ]
                    if bounds:
                        kwargs["buckets"] = tuple(float(b) for b in bounds)
                try:
                    family = getter(name, labelnames=labelnames, **kwargs)
                except ValueError:
                    family = getter(
                        "worker_" + name, labelnames=labelnames, **kwargs
                    )
                family.labels(**labels).merge_snapshot_value(value)


class RemoteTelemetry:
    """Parent-side merge point for piggybacked worker telemetry.

    One instance per serving registry (the scheduler owns it); thread
    safe, because pool result callbacks arrive on callback threads.
    ``absorb`` is idempotent per chunk: the first result for a chunk ID
    merges, later duplicates (chunk retries, racing re-dispatch) only
    bump ``telemetry_chunks_duplicate_total``.
    """

    #: How many absorbed chunk IDs to remember for dedup.
    DEDUP_WINDOW = 4096

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._lock = threading.Lock()
        self._seen: set[str] = set()
        self._order: deque[str] = deque()
        self._merged = registry.counter(
            "telemetry_chunks_merged_total",
            "Worker chunk telemetry payloads merged into this registry",
        )
        self._duplicates = registry.counter(
            "telemetry_chunks_duplicate_total",
            "Chunk telemetry payloads skipped as already-merged duplicates",
        )

    def absorb(self, result: ChunkResult | Any) -> Any:
        """Merge a chunk's telemetry (if any) and return its bare value.

        Accepts plain values too (a pool running with the plane disabled
        returns bare arrays), so callers can route every result through
        one place.  Telemetry failures are contained: the chunk value is
        returned even if a malformed payload cannot be merged.
        """
        if not isinstance(result, ChunkResult):
            return result
        telemetry = result.telemetry
        if telemetry is None:
            return result.value
        with self._lock:
            if telemetry.chunk_id in self._seen:
                self._duplicates.inc()
                return result.value
            self._seen.add(telemetry.chunk_id)
            self._order.append(telemetry.chunk_id)
            while len(self._order) > self.DEDUP_WINDOW:
                self._seen.discard(self._order.popleft())
        try:
            merge_worker_snapshot(
                self.registry, telemetry.metrics, telemetry.worker
            )
            for record in telemetry.spans:
                emit_span_record(record)
            self._merged.inc()
        except Exception:
            from .logging import get_logger

            get_logger("repro.obs.remote").warning(
                "telemetry_merge_failed",
                chunk_id=telemetry.chunk_id,
                worker=telemetry.worker,
            )
        return result.value
