"""Request tracing: trace/span IDs and the :func:`span` context manager.

A *trace* is one logical request (e.g. one ``Estimator.submit``); a
*span* is one timed phase within it.  IDs live in :mod:`contextvars`, so
spans nest naturally within a thread and every structured log record
emitted inside a span automatically carries the active
``trace_id``/``span_id`` (see :mod:`repro.obs.logging`).

The estimation service crosses threads (submit thread → dispatcher
thread → pool callback threads); :func:`bind_trace` re-enters a trace on
the far side of such a hop, which is how one request yields a single
connected span tree across the scheduler, the pool, and per-chunk trial
runs.

Span durations are also observed into the active metrics registry
(``obs_span_duration_seconds{span=...}``), so phase timings are
queryable without parsing logs.

Completed spans can additionally be fanned out to registered *span
sinks* (:func:`register_span_sink`) as plain-dict records — the feed the
ring-buffered collector and JSONL exporters in :mod:`repro.obs.export`
consume, and the raw material ``repro trace`` turns into Chrome
trace-event JSON.  Sinks are process-global (not contextvar-scoped) so
records emitted on pool callback threads still land; worker processes
use :func:`capture_spans` to *replace* any fork-inherited sinks with a
chunk-local buffer.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from .metrics import LATENCY_BUCKETS, enabled, get_registry

__all__ = [
    "new_trace_id",
    "new_span_id",
    "current_trace_id",
    "current_span_id",
    "bind_trace",
    "span",
    "Span",
    "register_span_sink",
    "unregister_span_sink",
    "capture_spans",
    "emit_span_record",
    "have_span_sinks",
]

_trace_var: ContextVar[str | None] = ContextVar("repro_trace_id", default=None)
_span_var: ContextVar[str | None] = ContextVar("repro_span_id", default=None)


def new_trace_id() -> str:
    """A fresh 128-bit trace ID (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span ID (hex)."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The active trace ID, if any."""
    return _trace_var.get()


def current_span_id() -> str | None:
    """The active span ID, if any."""
    return _span_var.get()


@contextmanager
def bind_trace(
    trace_id: str | None, span_id: str | None = None
) -> Iterator[None]:
    """Re-enter *trace_id* (and optionally a parent *span_id*) on this
    thread/context — the cross-thread continuation primitive."""
    t_token = _trace_var.set(trace_id)
    s_token = _span_var.set(span_id)
    try:
        yield
    finally:
        _span_var.reset(s_token)
        _trace_var.reset(t_token)


# --------------------------------------------------------------------- #
# span sinks: fan completed spans out as plain-dict records
# --------------------------------------------------------------------- #
SpanSink = Callable[[dict[str, Any]], None]

_sink_lock = threading.Lock()
_SINKS: list[SpanSink] = []


def register_span_sink(sink: SpanSink) -> None:
    """Add a callable that receives every completed span as a dict record.

    Record shape: ``{"name", "trace_id", "span_id", "parent_id", "ts"
    (epoch seconds at span start), "dur_s", "pid", "tid", "fields"}``.
    Sinks must be fast and must not raise; a raising sink is dropped.
    """
    with _sink_lock:
        if sink not in _SINKS:
            _SINKS.append(sink)


def unregister_span_sink(sink: SpanSink) -> None:
    """Remove a sink registered via :func:`register_span_sink` (no-op if
    absent)."""
    with _sink_lock:
        try:
            _SINKS.remove(sink)
        except ValueError:
            pass


def have_span_sinks() -> bool:
    """Whether any span sink is registered (record building is skipped
    entirely when not)."""
    return bool(_SINKS)


@contextmanager
def capture_spans(sink: SpanSink) -> Iterator[None]:
    """Make *sink* the **only** span sink for the duration.

    Unlike :func:`register_span_sink` this *replaces* the sink list —
    the point is worker-side isolation: a fork-started worker inherits
    the parent's sinks (e.g. an open ``--trace-file`` handle) and must
    not double-write to them.  The previous sink list is restored on
    exit.
    """
    global _SINKS
    with _sink_lock:
        saved = _SINKS
        _SINKS = [sink]
    try:
        yield
    finally:
        with _sink_lock:
            _SINKS = saved


def emit_span_record(record: dict[str, Any]) -> None:
    """Deliver one span record to every registered sink.

    Also the entry point for *forwarded* records (worker spans merged by
    the parent): the record is delivered as-is, preserving the worker's
    pid/tid/timestamps.
    """
    sinks = _SINKS
    if not sinks:
        return
    dead: list[SpanSink] = []
    for sink in sinks:
        try:
            sink(record)
        except Exception:
            dead.append(sink)
    for sink in dead:
        unregister_span_sink(sink)


class Span:
    """Handle yielded by :func:`span`; carries IDs and mutable fields."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "fields",
        "duration_s",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None,
        span_id: str | None,
        parent_id: str | None,
        fields: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.fields = fields
        self.duration_s: float | None = None

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields reported on the span's completion event."""
        self.fields.update(fields)


@contextmanager
def span(name: str, *, level: str = "debug", **fields: Any) -> Iterator[Span]:
    """Time a phase; log its completion; observe its duration.

    Creates a trace ID if none is active, pushes a fresh span ID (the
    previous one becomes ``parent_id``), and on exit emits one ``span``
    log event — ``name``, ``duration_ms``, ``parent_id``, plus *fields*
    — and observes ``obs_span_duration_seconds{span=name}`` in the
    active registry.  No-op (cheap dummy handle) when observability is
    disabled.
    """
    if not enabled():
        yield Span(name, None, None, None, dict(fields))
        return
    trace_id = _trace_var.get() or new_trace_id()
    parent_id = _span_var.get()
    span_id = new_span_id()
    handle = Span(name, trace_id, span_id, parent_id, dict(fields))
    t_token = _trace_var.set(trace_id)
    s_token = _span_var.set(span_id)
    started_wall = time.time()
    started = time.perf_counter()
    try:
        yield handle
    finally:
        duration = time.perf_counter() - started
        handle.duration_s = duration
        _span_var.reset(s_token)
        _trace_var.reset(t_token)
        from .logging import get_logger  # deferred: logging imports spans

        get_logger("repro.obs.span").log(
            level,
            "span",
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            span=name,
            duration_ms=round(duration * 1e3, 3),
            **handle.fields,
        )
        get_registry().histogram(
            "obs_span_duration_seconds",
            "Wall-clock duration of instrumented spans",
            buckets=LATENCY_BUCKETS,
            labelnames=("span",),
        ).labels(span=name).observe(duration)
        if _SINKS:
            emit_span_record(
                {
                    "name": name,
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "ts": started_wall,
                    "dur_s": duration,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "fields": dict(handle.fields),
                }
            )
