"""Synchronous message-passing runtime (substrate S1).

This package is the faithful implementation of the model in Section III of
the paper: an undirected graph, synchronous rounds, ``O(log n)``-bit
messages, unique IDs, and per-node private randomness.
"""

from .errors import (
    AlreadyTerminated,
    MessageTooLarge,
    NotTerminated,
    ProtocolViolation,
    RoundLimitExceeded,
    SimulationError,
    UnknownNeighbor,
)
from .message import Message, UNBOUNDED_SLOTS, slot_cost
from .metrics import RequestRecord, RoundRecord, RunMetrics, ServiceCounters
from .network import DEFAULT_SLOT_LIMIT, RunResult, SyncNetwork, run_mis_protocol
from .node import NodeContext, NodeProcess, ProcessFactory
from .rng import (
    as_seed_sequence,
    generator_from,
    random_unique_ids,
    spawn_node_rngs,
    spawn_trial_seeds,
)
from .staged import StagedProcess
from .trace import MessageTrace, TraceEvent

__all__ = [
    "AlreadyTerminated",
    "MessageTooLarge",
    "NotTerminated",
    "ProtocolViolation",
    "RoundLimitExceeded",
    "SimulationError",
    "UnknownNeighbor",
    "Message",
    "UNBOUNDED_SLOTS",
    "slot_cost",
    "RoundRecord",
    "RunMetrics",
    "RequestRecord",
    "ServiceCounters",
    "DEFAULT_SLOT_LIMIT",
    "RunResult",
    "SyncNetwork",
    "run_mis_protocol",
    "NodeContext",
    "NodeProcess",
    "ProcessFactory",
    "as_seed_sequence",
    "generator_from",
    "random_unique_ids",
    "spawn_node_rngs",
    "spawn_trial_seeds",
    "StagedProcess",
    "MessageTrace",
    "TraceEvent",
]
