"""Exception hierarchy for the synchronous message-passing runtime.

The runtime enforces the model of Section III of the paper: synchronous
rounds, bounded per-edge message sizes, and explicit termination.  Each
violation maps to a distinct exception so tests can assert on the exact
failure mode.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "ProtocolViolation",
    "MessageTooLarge",
    "UnknownNeighbor",
    "AlreadyTerminated",
    "RoundLimitExceeded",
    "NotTerminated",
]


class SimulationError(Exception):
    """Base class for all runtime errors."""


class ProtocolViolation(SimulationError):
    """A node process broke an invariant of the execution model."""


class MessageTooLarge(ProtocolViolation):
    """A message exceeded the configured per-edge slot budget.

    The model allows ``O(log n)`` bits per message, i.e. a constant number
    of node identifiers.  The runtime measures payloads in *slots* (one
    slot per scalar) and raises this when a node exceeds its budget.
    """

    def __init__(self, sender: int, slots: int, limit: int) -> None:
        super().__init__(
            f"node {sender} sent a message of {slots} slots; "
            f"the per-message limit is {limit}"
        )
        self.sender = sender
        self.slots = slots
        self.limit = limit


class UnknownNeighbor(ProtocolViolation):
    """A node addressed a message to a vertex it is not adjacent to."""

    def __init__(self, sender: int, target: int) -> None:
        super().__init__(f"node {sender} tried to message non-neighbor {target}")
        self.sender = sender
        self.target = target


class AlreadyTerminated(ProtocolViolation):
    """A node attempted an action after calling ``terminate``."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node} acted after termination")
        self.node = node


class RoundLimitExceeded(SimulationError):
    """The network hit ``max_rounds`` before every node terminated."""

    def __init__(self, max_rounds: int, unfinished: int) -> None:
        super().__init__(
            f"{unfinished} node(s) still running after {max_rounds} rounds"
        )
        self.max_rounds = max_rounds
        self.unfinished = unfinished


class NotTerminated(SimulationError):
    """An output was requested from a node that has not terminated."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node} has not produced an output")
        self.node = node
