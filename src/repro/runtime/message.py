"""Messages and the slot-based size model.

Section III of the paper bounds message size at ``O(log n)`` bits — "enough
for a constant number of IDs".  We make that concrete by measuring payloads
in *slots*: one slot holds one scalar of ``O(log n)`` bits (a node ID, an
integer counter bounded by a polynomial in ``n``, or a single bit).  A
network is configured with a per-message slot budget; algorithms that need
to ship larger state (e.g. the Linial–Saks leader tables of FAIRBIPART)
must spread it over multiple rounds, exactly as the paper's "superrounds"
do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = ["Message", "slot_cost", "UNBOUNDED_SLOTS"]

#: Sentinel slot budget meaning "no limit" (used by the lower-bound
#: experiments, which the paper notes hold even with unbounded messages).
UNBOUNDED_SLOTS = -1


def slot_cost(payload: Any) -> int:
    """Return the number of ``O(log n)``-bit slots needed for *payload*.

    Scalars (ints, bools, floats used as random priorities) cost one slot.
    Strings cost one slot (they are used only as small message-type tags
    drawn from a constant-size alphabet).  Containers cost the sum of their
    items; mapping keys are type tags and are not charged.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float, str)):
        return 1
    if isinstance(payload, Mapping):
        return sum(slot_cost(v) for v in payload.values())
    if isinstance(payload, Sequence):
        return sum(slot_cost(v) for v in payload)
    raise TypeError(f"unsupported payload type: {type(payload)!r}")


@dataclass(frozen=True, slots=True)
class Message:
    """A single point-to-point message delivered at a round boundary.

    Attributes
    ----------
    sender:
        ID of the vertex that sent the message.
    payload:
        Arbitrary (slot-counted) content.  Algorithms in this package use
        small dicts with a ``"type"`` tag.
    """

    sender: int
    payload: Any

    @property
    def slots(self) -> int:
        """Slot cost of this message's payload."""
        return slot_cost(self.payload)
