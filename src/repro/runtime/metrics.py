"""Execution metrics collected by the synchronous network and the service.

The paper's complexity claims are in rounds; the model also constrains
per-message size.  The runtime therefore tracks, per round and in total:
round count, message count, and slot volume — enough to empirically verify
the ``O(log* n)`` / ``O(log n)`` / ``O(log^2 n)`` claims (experiment E11).

The estimation service (:mod:`repro.service`) reports through the same
module: :class:`ServiceCounters` aggregates request/cache/trial totals and
:class:`RequestRecord` captures per-request latency and throughput, so
``benchmarks/test_engine_speed.py`` can regress amortized-vs-cold serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry

__all__ = ["RoundRecord", "RunMetrics", "ServiceCounters", "RequestRecord"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Traffic observed in one synchronous round."""

    round_index: int
    messages: int
    slots: int
    active_nodes: int


@dataclass
class RunMetrics:
    """Aggregated metrics for one complete execution."""

    rounds: int = 0
    total_messages: int = 0
    total_slots: int = 0
    max_slots_per_message: int = 0
    per_round: list[RoundRecord] = field(default_factory=list)

    def record_round(
        self, round_index: int, messages: int, slots: int, active_nodes: int
    ) -> None:
        """Append one round's traffic and update the running totals.

        ``rounds`` tracks the highest index seen (not the last recorded),
        so out-of-order recording — or a restart at round 0 — can never
        silently under-count the run.
        """
        self.rounds = max(self.rounds, round_index)
        self.total_messages += messages
        self.total_slots += slots
        self.per_round.append(
            RoundRecord(
                round_index=round_index,
                messages=messages,
                slots=slots,
                active_nodes=active_nodes,
            )
        )

    def observe_message(self, slots: int) -> None:
        """Track the largest single message seen (slot-budget audits)."""
        if slots > self.max_slots_per_message:
            self.max_slots_per_message = slots

    @property
    def mean_messages_per_round(self) -> float:
        """Average messages per round (0.0 for an empty run)."""
        if not self.per_round:
            return 0.0
        return self.total_messages / len(self.per_round)


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Latency/throughput of one estimation-service request.

    ``trials_run`` is the number of *new* trials executed for this request
    (0 when served from cache; less than ``trials`` when coalesced chunks
    were shared with concurrent requests, or when a precision-targeted
    request stopped early).  ``trials`` is the request's budget — the
    fixed count for v1 requests, the hard cap for precision requests —
    and ``realized_trials`` the total evidence behind the returned
    estimate (new trials plus cached prior).
    """

    request_id: str
    algorithm: str
    graph_hash: str
    trials: int
    trials_run: int
    mode: str
    cached: bool
    coalesced: bool
    latency_s: float
    realized_trials: int = 0
    stopped_early: bool = False

    @property
    def throughput(self) -> float:
        """Trials executed per second (0.0 for cache hits)."""
        if self.latency_s <= 0.0 or self.trials_run <= 0:
            return 0.0
        return self.trials_run / self.latency_s


class ServiceCounters:
    """Thread-safe monotonic counters for the estimation service.

    The scheduler, cache, and worker pools all increment through one
    instance, so a single snapshot describes a service's lifetime traffic.

    Since the observability layer landed this is a compatibility shim
    over :class:`repro.obs.metrics.MetricsRegistry`: each field is backed
    by a registry counter named ``service_<field>_total``, so the same
    totals appear in the Prometheus/JSON expositions without double
    bookkeeping.  The historical surface — ``increment``, ``snapshot``,
    attribute reads like ``counters.requests`` — is unchanged.
    """

    _FIELDS = (
        "requests",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "coalesced_requests",
        "chunks_executed",
        "trials_executed",
        "pools_created",
        "pools_evicted",
        "precision_requests",
        "early_stops",
        "evidence_hits",
        "evidence_misses",
        "evidence_deposits",
        "evidence_trials_reused",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(
                f"service_{name}_total",
                f"Estimation-service lifetime total: {name.replace('_', ' ')}",
            )
            for name in self._FIELDS
        }

    @property
    def registry(self) -> MetricsRegistry:
        """The backing metrics registry."""
        return self._registry

    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (must be a known field).

        Validation and update are a single atomic step: the dictionary
        lookup either yields the live counter (whose own lock serializes
        the add) or fails immediately — there is no window in which an
        unknown name can partially update state.
        """
        counter = self._counters.get(name)
        if counter is None:
            raise AttributeError(f"unknown service counter {name!r}")
        counter.inc(amount)

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> dict[str, int]:
        """A consistent copy of all counters."""
        return {name: int(c.value) for name, c in self._counters.items()}

    def __getattr__(self, name: str):
        # Attribute-style reads (``counters.requests``) for known fields.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            counters = object.__getattribute__(self, "_counters")
        except AttributeError:
            raise AttributeError(name) from None
        counter = counters.get(name)
        if counter is None:
            raise AttributeError(f"unknown service counter {name!r}")
        return int(counter.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"ServiceCounters({inner})"
