"""Execution metrics collected by the synchronous network.

The paper's complexity claims are in rounds; the model also constrains
per-message size.  The runtime therefore tracks, per round and in total:
round count, message count, and slot volume — enough to empirically verify
the ``O(log* n)`` / ``O(log n)`` / ``O(log^2 n)`` claims (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "RunMetrics"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Traffic observed in one synchronous round."""

    round_index: int
    messages: int
    slots: int
    active_nodes: int


@dataclass
class RunMetrics:
    """Aggregated metrics for one complete execution."""

    rounds: int = 0
    total_messages: int = 0
    total_slots: int = 0
    max_slots_per_message: int = 0
    per_round: list[RoundRecord] = field(default_factory=list)

    def record_round(
        self, round_index: int, messages: int, slots: int, active_nodes: int
    ) -> None:
        """Append one round's traffic and update the running totals."""
        self.rounds = round_index
        self.total_messages += messages
        self.total_slots += slots
        self.per_round.append(
            RoundRecord(
                round_index=round_index,
                messages=messages,
                slots=slots,
                active_nodes=active_nodes,
            )
        )

    def observe_message(self, slots: int) -> None:
        """Track the largest single message seen (slot-budget audits)."""
        if slots > self.max_slots_per_message:
            self.max_slots_per_message = slots

    @property
    def mean_messages_per_round(self) -> float:
        """Average messages per round (0.0 for an empty run)."""
        if not self.per_round:
            return 0.0
        return self.total_messages / len(self.per_round)
