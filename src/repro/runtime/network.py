"""The synchronous network engine.

Implements the standard synchronous message-passing model of Section III:
in each round every live node (1) receives the messages sent to it in the
previous round, (2) performs local computation (including coin flips), and
(3) sends at most one bounded-size message per incident edge.  The engine
is deterministic given ``(graph, seed, protocol)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graphs.graph import StaticGraph
from ..obs.bridge import observe_run_metrics
from ..obs.profile import current_profiler
from .errors import MessageTooLarge, NotTerminated, RoundLimitExceeded
from .message import Message, UNBOUNDED_SLOTS, slot_cost
from .metrics import RunMetrics
from .node import NodeContext, NodeProcess, ProcessFactory
from .rng import SeedLike, spawn_node_rngs
from .trace import MessageTrace

__all__ = ["SyncNetwork", "RunResult", "DEFAULT_SLOT_LIMIT"]

#: Default per-message budget: a small constant number of ``O(log n)``-bit
#: scalars, matching "enough for a constant number of IDs".
DEFAULT_SLOT_LIMIT = 8


@dataclass
class RunResult:
    """Outcome of one complete synchronous execution.

    Attributes
    ----------
    outputs:
        ``object`` array of per-node termination outputs.
    metrics:
        Round/message/slot counters for the run.
    """

    outputs: np.ndarray
    metrics: RunMetrics

    def mis_membership(self) -> np.ndarray:
        """Interpret outputs as MIS membership (bool array).

        Raises if any node produced a non-0/1 output.
        """
        member = np.zeros(len(self.outputs), dtype=bool)
        for v, out in enumerate(self.outputs):
            if out not in (0, 1, True, False):
                raise ValueError(f"node {v} produced non-binary output {out!r}")
            member[v] = bool(out)
        return member


class SyncNetwork:
    """Executes a :class:`NodeProcess` per vertex in synchronous rounds.

    Parameters
    ----------
    graph:
        The communication topology.
    slot_limit:
        Per-message slot budget (:data:`UNBOUNDED_SLOTS` disables the
        check, as the lower-bound model allows).
    """

    def __init__(
        self, graph: StaticGraph, slot_limit: int = DEFAULT_SLOT_LIMIT
    ) -> None:
        self.graph = graph
        self.slot_limit = slot_limit

    def run(
        self,
        factory: ProcessFactory,
        seed: SeedLike = None,
        max_rounds: int | None = None,
        require_termination: bool = True,
        trace: MessageTrace | None = None,
    ) -> RunResult:
        """Run one execution to completion.

        Parameters
        ----------
        factory:
            Called as ``factory(v)`` for each vertex to build its process.
        seed:
            Root seed; per-node generators are spawned from it.
        max_rounds:
            Safety valve; defaults to ``64 * (n + 16)`` which is far above
            every algorithm in this package.
        require_termination:
            If true (default), raise :class:`RoundLimitExceeded` when the
            limit is hit; otherwise return with non-terminated nodes'
            outputs set to ``None``.
        trace:
            Optional :class:`~repro.runtime.trace.MessageTrace` that
            receives every delivered message and termination event.
        """
        g = self.graph
        n = g.n
        if max_rounds is None:
            max_rounds = 64 * (n + 16)

        prof = current_profiler()  # hoisted: one contextvar read per run
        run_started = time.perf_counter() if prof is not None else 0.0
        rngs = spawn_node_rngs(seed, n)
        contexts = [
            NodeContext(v, [int(w) for w in g.neighbors(v)], n, rngs[v])
            for v in range(n)
        ]
        processes = [factory(v) for v in range(n)]
        metrics = RunMetrics()

        inboxes: list[list[Message]] = [[] for _ in range(n)]
        for v in range(n):
            if not contexts[v].terminated:
                processes[v].on_start(contexts[v])
        delivered = self._collect(contexts, inboxes, metrics, 0, trace)
        self._trace_terminations(trace, contexts, set(), 0)
        metrics.record_round(0, *delivered, active_nodes=n)

        round_index = 0
        while any(not ctx.terminated for ctx in contexts):
            round_index += 1
            if round_index > max_rounds:
                unfinished = sum(1 for ctx in contexts if not ctx.terminated)
                if require_termination:
                    raise RoundLimitExceeded(max_rounds, unfinished)
                break
            round_started = time.perf_counter() if prof is not None else 0.0
            current, inboxes = inboxes, [[] for _ in range(n)]
            already_done = {
                v for v in range(n) if contexts[v].terminated
            }
            active = 0
            for v in range(n):
                ctx = contexts[v]
                if ctx.terminated:
                    continue
                active += 1
                ctx.round = round_index
                processes[v].on_round(ctx, current[v])
            delivered = self._collect(contexts, inboxes, metrics, round_index, trace)
            self._trace_terminations(trace, contexts, already_done, round_index)
            metrics.record_round(round_index, *delivered, active_nodes=active)
            if prof is not None:
                prof.record_round(
                    "network.round", time.perf_counter() - round_started
                )

        outputs = np.empty(n, dtype=object)
        for v, ctx in enumerate(contexts):
            outputs[v] = ctx.output if ctx.terminated else None
        observe_run_metrics(metrics)
        if prof is not None:
            prof.add_phase("network.run", time.perf_counter() - run_started)
        return RunResult(outputs=outputs, metrics=metrics)

    # ------------------------------------------------------------------ #
    def _collect(
        self,
        contexts: list[NodeContext],
        inboxes: list[list[Message]],
        metrics: RunMetrics,
        round_index: int,
        trace: MessageTrace | None = None,
    ) -> tuple[int, int]:
        """Move queued messages into next-round inboxes; returns
        ``(message_count, slot_count)`` for the round."""
        messages = 0
        slots = 0
        for ctx in contexts:
            for target, payload in ctx._drain_outbox():
                cost = slot_cost(payload)
                if self.slot_limit != UNBOUNDED_SLOTS and cost > self.slot_limit:
                    raise MessageTooLarge(ctx.node_id, cost, self.slot_limit)
                metrics.observe_message(cost)
                inboxes[target].append(Message(sender=ctx.node_id, payload=payload))
                if trace is not None:
                    trace.record_message(round_index, ctx.node_id, target, payload)
                messages += 1
                slots += cost
        return messages, slots

    @staticmethod
    def _trace_terminations(
        trace: MessageTrace | None,
        contexts: list[NodeContext],
        already_done: set[int],
        round_index: int,
    ) -> None:
        if trace is None:
            return
        for v, ctx in enumerate(contexts):
            if ctx.terminated and v not in already_done:
                trace.record_termination(round_index, v, ctx.output)


def run_mis_protocol(
    graph: StaticGraph,
    factory: ProcessFactory,
    seed: SeedLike = None,
    slot_limit: int = DEFAULT_SLOT_LIMIT,
    max_rounds: int | None = None,
) -> tuple[np.ndarray, RunMetrics]:
    """Convenience wrapper: run and return ``(membership, metrics)``."""
    result = SyncNetwork(graph, slot_limit=slot_limit).run(
        factory, seed=seed, max_rounds=max_rounds
    )
    for v, out in enumerate(result.outputs):
        if out is None:
            raise NotTerminated(v)
    return result.mis_membership(), result.metrics
