"""Node-side abstractions for the synchronous message-passing model.

An algorithm is expressed as a :class:`NodeProcess` subclass: a state
machine that, once per round, reads its inbox and queues outgoing messages
through its :class:`NodeContext`.  The context is the *only* channel
between a node and the world — it exposes exactly the knowledge Section III
grants a vertex: its own ID, its neighbors' IDs, ``n``, and a private
source of randomness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

import numpy as np

from .errors import AlreadyTerminated, UnknownNeighbor
from .message import Message

__all__ = ["NodeContext", "NodeProcess", "ProcessFactory"]


class NodeContext:
    """Per-node view of the network, handed to every callback.

    The context buffers outgoing messages; the network collects and
    delivers them at the next round boundary.  Messages queued to the same
    neighbor in one round are merged into that neighbor's inbox
    individually (the slot budget applies per message).
    """

    __slots__ = (
        "node_id",
        "neighbor_ids",
        "n",
        "rng",
        "round",
        "_outbox",
        "_terminated",
        "_output",
        "_neighbor_set",
    )

    def __init__(
        self,
        node_id: int,
        neighbor_ids: Sequence[int],
        n: int,
        rng: np.random.Generator,
    ) -> None:
        self.node_id = int(node_id)
        self.neighbor_ids = tuple(int(v) for v in neighbor_ids)
        self._neighbor_set = frozenset(self.neighbor_ids)
        self.n = int(n)
        self.rng = rng
        self.round = 0
        self._outbox: list[tuple[int, Any]] = []
        self._terminated = False
        self._output: Any = None

    # -- communication -------------------------------------------------- #
    def send(self, target: int, payload: Any) -> None:
        """Queue *payload* for neighbor *target* (delivered next round)."""
        if self._terminated:
            raise AlreadyTerminated(self.node_id)
        if target not in self._neighbor_set:
            raise UnknownNeighbor(self.node_id, target)
        self._outbox.append((target, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue *payload* for every neighbor."""
        for target in self.neighbor_ids:
            self.send(target, payload)

    # -- termination ----------------------------------------------------- #
    def terminate(self, output: Any) -> None:
        """Halt this node permanently with the given *output*.

        Messages queued earlier in the same round are still delivered
        (a node may announce its decision and stop, as FAIRROOTED does).
        """
        if self._terminated:
            raise AlreadyTerminated(self.node_id)
        self._terminated = True
        self._output = output

    @property
    def terminated(self) -> bool:
        """True once :meth:`terminate` has been called."""
        return self._terminated

    @property
    def output(self) -> Any:
        """The value passed to :meth:`terminate` (meaningless before)."""
        return self._output

    # -- runtime internals ------------------------------------------------ #
    def _drain_outbox(self) -> list[tuple[int, Any]]:
        out, self._outbox = self._outbox, []
        return out


class NodeProcess(ABC):
    """Base class for the per-vertex state machine of an algorithm.

    Lifecycle::

        on_start(ctx)                  # round 0, before any delivery
        on_round(ctx, inbox)           # once per round >= 1, inbox holds
                                       # messages sent in the previous round

    A process ends by calling ``ctx.terminate(output)``; for MIS
    algorithms the output is ``1`` (joined) or ``0`` (not joined).
    """

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> None:
        """Initialize state and send round-0 messages."""

    @abstractmethod
    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        """Process one synchronous round."""


#: A factory invoked once per vertex to create its process instance.
ProcessFactory = Callable[[int], NodeProcess]
