"""Deterministic randomness management for simulations.

Every node in a simulated network owns an independent ``numpy`` generator
spawned from a single root ``SeedSequence``.  This gives three properties
the evaluation harness relies on:

* **Reproducibility** — a run is a pure function of ``(graph, seed)``.
* **Independence** — per-node streams are statistically independent, which
  is what the synchronous model assumes of local coins.
* **Parallel safety** — trial seeds spawned with :func:`spawn_trial_seeds`
  can be handed to worker processes without stream collisions, the standard
  ``SeedSequence.spawn`` idiom for process pools.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "as_seed_sequence",
    "spawn_node_rngs",
    "spawn_trial_seeds",
    "generator_from",
]

SeedLike = int | np.random.SeedSequence | np.random.Generator | None


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize *seed* to a ``SeedSequence``.

    Accepts ``None`` (fresh entropy), an integer, an existing
    ``SeedSequence``, or a ``Generator`` (a child sequence is derived from
    it so the caller's stream is not consumed in a surprising way).
    """
    if seed is None or isinstance(seed, int):
        return np.random.SeedSequence(seed)
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # Derive a child seed from the generator's stream.
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    raise TypeError(f"cannot interpret {type(seed)!r} as a seed")


def generator_from(seed: SeedLike) -> np.random.Generator:
    """Return a ``Generator``; passes an existing ``Generator`` through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(as_seed_sequence(seed))


def spawn_node_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Spawn *n* independent per-node generators from a single seed."""
    root = as_seed_sequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def spawn_trial_seeds(seed: SeedLike, trials: int) -> list[np.random.SeedSequence]:
    """Spawn one independent ``SeedSequence`` per Monte-Carlo trial."""
    root = as_seed_sequence(seed)
    return root.spawn(trials)


def random_unique_ids(
    rng: np.random.Generator, n: int, id_space_exponent: int = 3
) -> np.ndarray:
    """Draw ``n`` distinct IDs uniformly from ``[0, n**id_space_exponent)``.

    The model (Section III) assumes unique IDs from a range polynomial in
    ``n``; Cole–Vishkin's worst-case bound needs IDs in ``n**Theta(1)``.
    Collisions are resolved by redrawing, which terminates quickly because
    the space is polynomially larger than ``n``.
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    space = max(n, 2) ** id_space_exponent
    ids = rng.choice(space, size=n, replace=False) if space <= 2**24 else None
    if ids is None:
        seen: set[int] = set()
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            draw = int(rng.integers(0, space))
            if draw not in seen:
                seen.add(draw)
                out[filled] = draw
                filled += 1
        ids = out
    return ids.astype(np.int64)


def sequence_entropy(seeds: Sequence[np.random.SeedSequence]) -> list[int]:
    """Return a stable fingerprint for a list of seed sequences (testing)."""
    return [int(np.random.default_rng(s).integers(0, 2**31)) for s in seeds]
