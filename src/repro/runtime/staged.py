"""Fixed-length stage scheduling for composite algorithms.

FAIRTREE, FAIRBIPART, and COLORMIS are built from *stages* that each run
for a fixed number of rounds so that every node enters the next stage in
the same round ("nodes not participating in a stage still wait the fixed
number of rounds before proceeding", Fig. 2).  :class:`StagedProcess`
factors out that barrier bookkeeping: subclasses declare stage lengths and
get per-stage callbacks with a local round counter.

A final *open-ended* stage (length ``None``) may follow the fixed ones —
used for the Luby fallback whose length is only bounded w.h.p.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Sequence

from ..obs.profile import current_profiler
from .message import Message
from .node import NodeContext, NodeProcess

__all__ = ["StagedProcess"]


class StagedProcess(NodeProcess):
    """A node process whose execution is split into fixed-length stages.

    Subclasses implement :meth:`stage_lengths` (per-instance, since stage
    budgets typically depend on ``n``) and the two callbacks
    :meth:`on_stage_start` and :meth:`on_stage_round`.  The base class
    guarantees:

    * ``on_stage_start(ctx, s)`` runs in the first round of stage ``s``
      *before* that round's ``on_stage_round``;
    * ``on_stage_round(ctx, s, r, inbox)`` runs with ``r`` counting rounds
      within the stage from 0;
    * stage boundaries are perfectly aligned across all nodes because they
      are a pure function of the global round number.
    """

    def __init__(self) -> None:
        self._lengths: list[int | None] | None = None
        self._stage = 0
        self._stage_round = -1

    # -- subclass API ---------------------------------------------------- #
    @abstractmethod
    def stage_lengths(self, ctx: NodeContext) -> Sequence[int | None]:
        """Round budget per stage; only the last entry may be ``None``."""

    def on_stage_start(self, ctx: NodeContext, stage: int) -> None:
        """Hook invoked when *stage* begins (default: nothing)."""

    @abstractmethod
    def on_stage_round(
        self, ctx: NodeContext, stage: int, stage_round: int, inbox: list[Message]
    ) -> None:
        """One round of work inside *stage*."""

    # -- NodeProcess ------------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> None:
        lengths = list(self.stage_lengths(ctx))
        if not lengths:
            raise ValueError("at least one stage is required")
        for i, length in enumerate(lengths):
            if length is None and i != len(lengths) - 1:
                raise ValueError("only the final stage may be open-ended")
            if length is not None and length <= 0:
                raise ValueError("stage lengths must be positive")
        self._lengths = lengths
        self._stage = 0
        self._stage_round = -1
        prof = current_profiler()
        if prof is not None:
            prof.count("staged.stage0.enter")
        self.on_stage_start(ctx, 0)
        self._step(ctx, [])

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        self._step(ctx, inbox)

    # -- internals --------------------------------------------------------- #
    def _step(self, ctx: NodeContext, inbox: list[Message]) -> None:
        assert self._lengths is not None
        self._stage_round += 1
        length = self._lengths[self._stage]
        if length is not None and self._stage_round >= length:
            self._stage += 1
            self._stage_round = 0
            if self._stage >= len(self._lengths):
                raise RuntimeError(
                    "staged process ran past its final stage without terminating"
                )
            prof = current_profiler()
            if prof is not None:
                # Stage boundaries are globally aligned; counting node
                # entries per stage gives the per-phase participation
                # profile of a staged run without per-round hooks.
                prof.count(f"staged.stage{self._stage}.enter")
            self.on_stage_start(ctx, self._stage)
        self.on_stage_round(ctx, self._stage, self._stage_round, inbox)
