"""Structured execution tracing for the synchronous engine.

Debugging a distributed algorithm means reading its message flow.  A
:class:`MessageTrace` attached to :meth:`SyncNetwork.run` (via the
``trace`` parameter) records every delivered message and every
termination as typed events, filterable by round / vertex / payload type
and renderable as a per-round transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceEvent", "MessageTrace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is ``"message"`` (sender → receiver payload) or
    ``"terminate"`` (sender is the vertex, payload its output).
    """

    round_index: int
    kind: str
    sender: int
    receiver: int | None
    payload: Any

    def describe(self) -> str:
        """One-line human-readable form."""
        if self.kind == "terminate":
            return f"r{self.round_index:>4}  node {self.sender} ⇒ output {self.payload!r}"
        ptype = (
            self.payload.get("type")
            if isinstance(self.payload, dict)
            else type(self.payload).__name__
        )
        return (
            f"r{self.round_index:>4}  {self.sender} → {self.receiver}"
            f"  [{ptype}] {self.payload!r}"
        )


@dataclass
class MessageTrace:
    """Event sink passed to :meth:`repro.runtime.SyncNetwork.run`.

    Parameters
    ----------
    max_events:
        Hard cap to keep traces bounded on long runs (oldest events are
        *not* evicted — recording simply stops, and :attr:`truncated` is
        set).
    """

    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    # -- recording (called by the engine) --------------------------------- #
    def record_message(
        self, round_index: int, sender: int, receiver: int, payload: Any
    ) -> None:
        """Record one delivered message."""
        self._push(
            TraceEvent(round_index, "message", sender, receiver, payload)
        )

    def record_termination(self, round_index: int, vertex: int, output: Any) -> None:
        """Record a vertex's termination and output."""
        self._push(TraceEvent(round_index, "terminate", vertex, None, output))

    def _push(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    # -- querying ----------------------------------------------------------- #
    def messages(self) -> list[TraceEvent]:
        """All message events."""
        return [e for e in self.events if e.kind == "message"]

    def by_round(self, round_index: int) -> list[TraceEvent]:
        """Events of one round."""
        return [e for e in self.events if e.round_index == round_index]

    def involving(self, vertex: int) -> list[TraceEvent]:
        """Events the vertex sent or received."""
        return [
            e
            for e in self.events
            if e.sender == vertex or e.receiver == vertex
        ]

    def payload_types(self) -> dict[str, int]:
        """Histogram of message payload ``type`` tags."""
        out: dict[str, int] = {}
        for e in self.messages():
            tag = (
                e.payload.get("type", "?")
                if isinstance(e.payload, dict)
                else type(e.payload).__name__
            )
            out[tag] = out.get(tag, 0) + 1
        return out

    def transcript(self, rounds: Iterable[int] | None = None) -> str:
        """Render (a slice of) the trace as text."""
        wanted = set(rounds) if rounds is not None else None
        lines = [
            e.describe()
            for e in self.events
            if wanted is None or e.round_index in wanted
        ]
        if self.truncated:
            lines.append(f"... trace truncated at {self.max_events} events")
        return "\n".join(lines)
