"""In-process fairness-estimation service (persistent pools + cache).

The production-facing serving layer over the Monte-Carlo engines:

* :class:`Estimator` — programmatic handle with submit/poll/await,
  timeout, and graceful-shutdown semantics;
* :class:`EstimateRequest` / :class:`EstimateResult` — the request
  surface shared by the library, the scheduler, and the
  ``python -m repro serve``/``batch`` CLI;
* :class:`Precision` / :class:`StoppingRule` — the v2 precision-targeted
  contract: requests specify a CI target and the scheduler runs trial
  rounds until it closes (sequential stopping with a hard cap);
* :class:`ResultCache` — content-addressed cache: exact-key results for
  fixed-budget requests plus an accumulating evidence store keyed by
  ``(graph hash, algorithm)`` that seeds precision requests' CIs;
* :class:`BatchScheduler` — request coalescing and chunked dispatch onto
  persistent :class:`~repro.analysis.montecarlo.TrialPool` workers.

See ``docs/SERVICE.md`` for the architecture and request JSON schema,
``docs/API.md`` for the v2 request lifecycle and migration guide.
"""

from .cache import ResultCache, cache_key, evidence_key
from .estimator import Estimator, RequestHandle
from .journal import ConvergenceTrace, RequestJournal, TraceFrame
from .precision import Precision, StopDecision, StoppingRule
from .requests import MODES, PROTOCOL_VERSIONS, EstimateRequest, EstimateResult
from .scheduler import BatchScheduler, EstimateCancelled, EstimateTimeout

__all__ = [
    "Estimator",
    "RequestHandle",
    "EstimateRequest",
    "EstimateResult",
    "Precision",
    "StoppingRule",
    "StopDecision",
    "ConvergenceTrace",
    "TraceFrame",
    "RequestJournal",
    "MODES",
    "PROTOCOL_VERSIONS",
    "ResultCache",
    "cache_key",
    "evidence_key",
    "BatchScheduler",
    "EstimateTimeout",
    "EstimateCancelled",
]
