"""In-process fairness-estimation service (persistent pools + cache).

The production-facing serving layer over the Monte-Carlo engines:

* :class:`Estimator` — programmatic handle with submit/poll/await,
  timeout, and graceful-shutdown semantics;
* :class:`EstimateRequest` / :class:`EstimateResult` — the request
  surface shared by the library, the scheduler, and the
  ``python -m repro serve``/``batch`` CLI;
* :class:`ResultCache` — content-addressed LRU result cache keyed by
  ``(graph hash, algorithm, seed, trials, mode)``;
* :class:`BatchScheduler` — request coalescing and chunked dispatch onto
  persistent :class:`~repro.analysis.montecarlo.TrialPool` workers.

See ``docs/SERVICE.md`` for the architecture and request JSON schema.
"""

from .cache import ResultCache, cache_key
from .estimator import Estimator, RequestHandle
from .requests import MODES, EstimateRequest, EstimateResult
from .scheduler import BatchScheduler, EstimateCancelled, EstimateTimeout

__all__ = [
    "Estimator",
    "RequestHandle",
    "EstimateRequest",
    "EstimateResult",
    "MODES",
    "ResultCache",
    "cache_key",
    "BatchScheduler",
    "EstimateTimeout",
    "EstimateCancelled",
]
