"""Content-addressed LRU cache for join estimates.

Keys are ``(graph content hash, algorithm+params, seed, trials, mode)``:
everything that determines the count vector bit-for-bit.  Requests with
``seed=None`` (fresh entropy) are inherently unrepeatable and never touch
the cache.  Hit/miss/eviction totals are reported through the shared
:class:`repro.runtime.metrics.ServiceCounters` instance.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from ..analysis.fairness import JoinEstimate
from ..obs.logging import get_logger
from ..obs.metrics import AGE_BUCKETS, MetricsRegistry
from ..runtime.metrics import ServiceCounters

__all__ = ["ResultCache", "cache_key"]

_log = get_logger("repro.service.cache")


def cache_key(
    graph_hash: str,
    algorithm_key: str,
    seed: int | None,
    trials: int,
    mode: str,
) -> tuple | None:
    """The cache key for a resolved request, or ``None`` if uncacheable."""
    if seed is None:
        return None
    return (graph_hash, algorithm_key, int(seed), int(trials), mode)


class ResultCache:
    """Thread-safe LRU mapping of cache keys to :class:`JoinEstimate`.

    ``capacity=0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which the benchmarks use to time pure execution.
    """

    def __init__(
        self,
        capacity: int = 128,
        counters: ServiceCounters | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.counters = counters if counters is not None else ServiceCounters()
        if registry is None:
            registry = self.counters.registry
        self._h_age = registry.histogram(
            "service_cache_age_seconds",
            "Age of the cached entry at the moment it served a hit",
            buckets=AGE_BUCKETS,
        )
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[JoinEstimate, float]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple | None) -> JoinEstimate | None:
        """Look *key* up, recording a hit or miss; ``None`` keys miss.

        Hits additionally observe the entry's age (time since insertion)
        into the ``service_cache_age_seconds`` histogram.
        """
        if key is None:
            self.counters.increment("cache_misses")
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.counters.increment("cache_misses")
            return None
        est, inserted_at = entry
        age = time.monotonic() - inserted_at
        self._h_age.observe(age)
        self.counters.increment("cache_hits")
        _log.debug("cache_hit", age_s=round(age, 6))
        return est

    def put(self, key: tuple | None, estimate: JoinEstimate) -> None:
        """Insert, evicting least-recently-used entries beyond capacity."""
        if key is None or self.capacity == 0:
            return
        evictions = 0
        with self._lock:
            self._entries[key] = (estimate, time.monotonic())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evictions += 1
        if evictions:
            self.counters.increment("cache_evictions", evictions)
            _log.debug("cache_evicted", evictions=evictions)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
