"""Content-addressed cache: exact-key results plus accumulating evidence.

Two planes share one LRU budget discipline:

* **Exact plane** (legacy, fixed-budget requests) — keys are ``(graph
  content hash, algorithm+params, seed, trials, mode)``: everything that
  determines the count vector bit-for-bit.  A repeated identical request
  is served verbatim.  Requests with ``seed=None`` never touch this
  plane.
* **Evidence plane** (v2, precision-targeted requests) — keyed by
  ``(graph content hash, algorithm+params)`` only.  Every executed trial
  chunk *deposits* its counts; a precision request *reads* the pooled
  evidence as a prior, so its confidence interval starts partially (or
  fully) closed and warm requests finish in a fraction of a cold
  budget.  Deposits carry an optional dedup ``tag`` (the exact-plane
  cache key, or a seeded-run fingerprint) so re-running a deterministic
  seeded request can never double-count its correlated samples.

Hit/miss/eviction/deposit totals are reported through the shared
:class:`repro.runtime.metrics.ServiceCounters` instance.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..analysis.fairness import JoinEstimate, z_for_confidence
from ..obs.logging import get_logger
from ..obs.metrics import AGE_BUCKETS, MetricsRegistry
from ..runtime.metrics import ServiceCounters

__all__ = ["ResultCache", "cache_key", "evidence_key"]

_log = get_logger("repro.service.cache")


def cache_key(
    graph_hash: str,
    algorithm_key: str,
    seed: int | None,
    trials: int,
    mode: str,
) -> tuple | None:
    """The exact-plane key for a resolved request, or ``None`` if
    uncacheable."""
    if seed is None:
        return None
    return (graph_hash, algorithm_key, int(seed), int(trials), mode)


def evidence_key(graph_hash: str, algorithm_key: str) -> tuple:
    """The evidence-plane key: graph content and algorithm identity only."""
    return (graph_hash, algorithm_key)


@dataclass
class _Evidence:
    """Accumulated join counts for one ``(graph, algorithm)`` pair."""

    counts: np.ndarray
    trials: int = 0
    inserted_at: float = 0.0
    tags: set = field(default_factory=set)

    def estimate(self) -> JoinEstimate:
        return JoinEstimate(counts=self.counts.copy(), trials=self.trials)


class ResultCache:
    """Thread-safe LRU over both cache planes.

    ``capacity`` bounds each plane independently (an exact entry and an
    evidence entry are different granularities; sharing one budget would
    let high-cardinality exact keys evict the far more valuable pooled
    evidence).  ``capacity=0`` disables caching entirely (every lookup
    is a miss and nothing is stored), which the benchmarks use to time
    pure execution.
    """

    def __init__(
        self,
        capacity: int = 128,
        counters: ServiceCounters | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.counters = counters if counters is not None else ServiceCounters()
        if registry is None:
            registry = self.counters.registry
        self._h_age = registry.histogram(
            "service_cache_age_seconds",
            "Age of the cached entry at the moment it served a hit",
            buckets=AGE_BUCKETS,
        )
        self._g_evidence_trials = registry.gauge(
            "service_evidence_trials_resident",
            "Total pooled trials currently held in the evidence store",
        )
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[JoinEstimate, float]] = (
            OrderedDict()
        )
        self._evidence: OrderedDict[tuple, _Evidence] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # exact plane (legacy fixed-budget requests)
    # ------------------------------------------------------------------ #
    def get(self, key: tuple | None) -> JoinEstimate | None:
        """Look *key* up, recording a hit or miss; ``None`` keys miss.

        Hits additionally observe the entry's age (time since insertion)
        into the ``service_cache_age_seconds`` histogram.
        """
        if key is None:
            self.counters.increment("cache_misses")
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.counters.increment("cache_misses")
            return None
        est, inserted_at = entry
        age = time.monotonic() - inserted_at
        self._h_age.observe(age)
        self.counters.increment("cache_hits")
        _log.debug("cache_hit", age_s=round(age, 6))
        return est

    def put(self, key: tuple | None, estimate: JoinEstimate) -> None:
        """Insert, evicting least-recently-used entries beyond capacity."""
        if key is None or self.capacity == 0:
            return
        evictions = 0
        with self._lock:
            self._entries[key] = (estimate, time.monotonic())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evictions += 1
        if evictions:
            self.counters.increment("cache_evictions", evictions)
            _log.debug("cache_evicted", evictions=evictions)

    # ------------------------------------------------------------------ #
    # evidence plane (v2 precision-targeted requests)
    # ------------------------------------------------------------------ #
    def evidence(
        self, graph_hash: str, algorithm_key: str
    ) -> JoinEstimate | None:
        """Pooled evidence for a pair, or ``None``; counts hits/misses."""
        key = evidence_key(graph_hash, algorithm_key)
        with self._lock:
            entry = self._evidence.get(key)
            if entry is not None and entry.trials > 0:
                self._evidence.move_to_end(key)
                est = entry.estimate()
                age = time.monotonic() - entry.inserted_at
            else:
                est = None
        if est is None:
            self.counters.increment("evidence_misses")
            return None
        self._h_age.observe(age)
        self.counters.increment("evidence_hits")
        self.counters.increment("evidence_trials_reused", est.trials)
        _log.debug(
            "evidence_hit", trials=est.trials, algorithm=algorithm_key
        )
        return est

    def add_evidence(
        self,
        graph_hash: str,
        algorithm_key: str,
        estimate: JoinEstimate,
        tag: object | None = None,
    ) -> None:
        """Merge *estimate*'s counts into the pair's pooled evidence.

        A non-``None`` *tag* identifies a deterministic contribution
        (e.g. a seeded fixed-budget run): depositing the same tag twice
        is a no-op, so repeat seeded traffic cannot inflate the pooled
        trial count with correlated samples.
        """
        if self.capacity == 0 or estimate.trials <= 0:
            return
        key = evidence_key(graph_hash, algorithm_key)
        evictions = 0
        with self._lock:
            entry = self._evidence.get(key)
            if entry is None:
                entry = _Evidence(
                    counts=np.zeros_like(np.asarray(estimate.counts)),
                    inserted_at=time.monotonic(),
                )
                self._evidence[key] = entry
            if tag is not None:
                if tag in entry.tags:
                    return
                entry.tags.add(tag)
            if entry.counts.shape != estimate.counts.shape:
                # A different graph collapsed onto this hash is impossible
                # (content-addressed); shape drift means caller error.
                raise ValueError("evidence counts cover a different node set")
            entry.counts += estimate.counts
            entry.trials += estimate.trials
            self._evidence.move_to_end(key)
            while len(self._evidence) > self.capacity:
                self._evidence.popitem(last=False)
                evictions += 1
            resident = sum(e.trials for e in self._evidence.values())
        self._g_evidence_trials.set(resident)
        self.counters.increment("evidence_deposits")
        if evictions:
            self.counters.increment("cache_evictions", evictions)
            _log.debug("evidence_evicted", evictions=evictions)

    def evidence_trials(self, graph_hash: str, algorithm_key: str) -> int:
        """Pooled trial count for a pair (0 when absent); no counters."""
        with self._lock:
            entry = self._evidence.get(evidence_key(graph_hash, algorithm_key))
            return entry.trials if entry is not None else 0

    def evidence_entries(self, confidence: float = 0.95) -> list[dict]:
        """Introspection snapshot of the evidence plane (LRU order,
        coldest first); does not touch hit/miss counters or recency.

        Each row reports the pair identity, pooled trials, node count,
        resident bytes, seconds since first deposit, dedup-tag count,
        and the half-width the pooled evidence can already achieve at
        the given *confidence* — i.e. what a precision request would
        start from.  Backs ``repro evidence ls``/``show``.
        """
        z = z_for_confidence(confidence)
        with self._lock:
            items = [
                (key, entry.estimate(), entry) for key, entry in self._evidence.items()
            ]
        now = time.monotonic()
        rows = []
        for (graph_hash, algorithm_key), est, entry in items:
            rows.append(
                {
                    "graph_hash": graph_hash,
                    "algorithm": algorithm_key,
                    "trials": entry.trials,
                    "nodes": int(est.counts.shape[0]),
                    "bytes": int(entry.counts.nbytes),
                    "age_s": now - entry.inserted_at,
                    "tags": len(entry.tags),
                    "achievable_halfwidth": float(est.max_halfwidth(z)),
                }
            )
        return rows

    def purge_evidence(
        self,
        graph_hash: str | None = None,
        algorithm_key: str | None = None,
    ) -> int:
        """Drop matching evidence entries; returns how many were purged.

        ``None`` filters match everything, so ``purge_evidence()`` empties
        the plane.  An entry's dedup tags go with it — a purge is a
        statement that the pooled samples are unwanted, so later seeded
        re-runs may legitimately re-deposit.
        """
        with self._lock:
            victims = [
                key
                for key in self._evidence
                if (graph_hash is None or key[0] == graph_hash)
                and (algorithm_key is None or key[1] == algorithm_key)
            ]
            for key in victims:
                del self._evidence[key]
            resident = sum(e.trials for e in self._evidence.values())
        self._g_evidence_trials.set(resident)
        if victims:
            self.counters.increment("cache_evictions", len(victims))
            _log.debug("evidence_purged", purged=len(victims))
        return len(victims)

    def clear(self) -> None:
        """Drop every entry in both planes (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._evidence.clear()
        self._g_evidence_trials.set(0)
