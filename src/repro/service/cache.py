"""Content-addressed LRU cache for join estimates.

Keys are ``(graph content hash, algorithm+params, seed, trials, mode)``:
everything that determines the count vector bit-for-bit.  Requests with
``seed=None`` (fresh entropy) are inherently unrepeatable and never touch
the cache.  Hit/miss/eviction totals are reported through the shared
:class:`repro.runtime.metrics.ServiceCounters` instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..analysis.fairness import JoinEstimate
from ..runtime.metrics import ServiceCounters

__all__ = ["ResultCache", "cache_key"]


def cache_key(
    graph_hash: str,
    algorithm_key: str,
    seed: int | None,
    trials: int,
    mode: str,
) -> tuple | None:
    """The cache key for a resolved request, or ``None`` if uncacheable."""
    if seed is None:
        return None
    return (graph_hash, algorithm_key, int(seed), int(trials), mode)


class ResultCache:
    """Thread-safe LRU mapping of cache keys to :class:`JoinEstimate`.

    ``capacity=0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which the benchmarks use to time pure execution.
    """

    def __init__(
        self, capacity: int = 128, counters: ServiceCounters | None = None
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.counters = counters if counters is not None else ServiceCounters()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, JoinEstimate] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple | None) -> JoinEstimate | None:
        """Look *key* up, recording a hit or miss; ``None`` keys miss."""
        if key is None:
            self.counters.increment("cache_misses")
            return None
        with self._lock:
            est = self._entries.get(key)
            if est is not None:
                self._entries.move_to_end(key)
        if est is None:
            self.counters.increment("cache_misses")
        else:
            self.counters.increment("cache_hits")
        return est

    def put(self, key: tuple | None, estimate: JoinEstimate) -> None:
        """Insert, evicting least-recently-used entries beyond capacity."""
        if key is None or self.capacity == 0:
            return
        evictions = 0
        with self._lock:
            self._entries[key] = estimate
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evictions += 1
        if evictions:
            self.counters.increment("cache_evictions", evictions)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
