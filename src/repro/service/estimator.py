"""The programmatic estimation-service handle.

:class:`Estimator` is the public face of :mod:`repro.service`: a
long-lived object owning the persistent worker pools, the batched
scheduler, and the result cache.  Contrast with the cold path::

    # cold: pays pool spin-up + graph pickling on every call
    est = run_trials(FastLuby(), graph, 2000, seed=0, n_jobs=4)

    # warm: spin-up paid once, evidence cached, requests coalesced.
    # v2 requests target a precision, not a trial count — the scheduler
    # stops as soon as the requested CI closes:
    with Estimator(n_jobs=4) as service:
        est = service.estimate(graph=graph, algorithm="luby_fast",
                               precision=Precision(node_ci=0.02),
                               seed=0).estimate

Submission is asynchronous (`submit` returns a handle with
``done``/``poll``/``result(timeout)``); :meth:`estimate` is the blocking
convenience.  ``shutdown`` (or the context manager) releases every worker
process — ``wait=True`` drains queued requests first, ``wait=False``
cancels them and terminates workers immediately.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from typing import Any, Mapping

from ..analysis.montecarlo import normalize_jobs
from ..graphs.graph import StaticGraph
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, use_registry
from ..obs.spans import span
from ..runtime.metrics import RequestRecord, ServiceCounters
from .cache import ResultCache
from .journal import RequestJournal
from .precision import Precision
from .requests import EstimateRequest, EstimateResult
from .scheduler import BatchScheduler, Ticket

__all__ = ["Estimator", "RequestHandle"]


class RequestHandle:
    """Caller-side view of one submitted request (wraps a scheduler ticket)."""

    def __init__(self, ticket: Ticket) -> None:
        self._ticket = ticket

    @property
    def request(self) -> EstimateRequest:
        """The request this handle tracks."""
        return self._ticket.request

    @property
    def trace_id(self) -> str:
        """The trace this request's span tree lives under.

        Hand it to ``repro trace`` / :func:`repro.obs.export.to_chrome_trace`
        to export the connected estimator → scheduler → worker-chunk tree.
        """
        return self._ticket.trace_id

    def done(self) -> bool:
        """True once a result (or error) is available."""
        return self._ticket.done()

    def poll(self) -> EstimateResult | None:
        """The result if ready, else ``None``; request errors re-raise."""
        return self._ticket.poll()

    def result(self, timeout: float | None = None) -> EstimateResult:
        """Block for the result; :class:`~repro.service.EstimateTimeout`
        on expiry (the request keeps running — poll again or cancel)."""
        return self._ticket.result(timeout)

    def cancel(self) -> None:
        """Stop scheduling further trial chunks for this request."""
        self._ticket.cancel()


class Estimator:
    """In-process fairness-estimation service.

    Parameters
    ----------
    n_jobs:
        Canonical semantics (see
        :func:`repro.analysis.montecarlo.normalize_jobs`): ``1`` inline,
        ``0``/negative all cores, ``k > 1`` that many workers.  Unlike the
        low-level ``run_trials`` — which does exactly what it is told —
        the service additionally right-sizes to the host when
        ``clamp_to_host`` is true (default): CPU-bound trials never go
        faster with more processes than cores, so requesting 4 jobs on a
        1-core box yields one inline worker, not 4 thrashing processes.
    cache_size:
        LRU capacity of the result cache (0 disables caching).
    chunk_trials:
        Trials per scheduling chunk — the unit of coalescing, incremental
        merging, and cancellation.
    max_pools:
        Resident ``(graph, algorithm)`` worker pools kept warm (LRU).
    shm:
        Ship graphs to worker processes over the zero-copy shared-memory
        transport (default).  ``False`` — or ``REPRO_SHM=0`` in the
        environment — falls back to pickling the graph per worker.
    """

    def __init__(
        self,
        n_jobs: int = 0,
        cache_size: int = 128,
        chunk_trials: int = 64,
        max_pools: int = 2,
        clamp_to_host: bool = True,
        context: str | None = None,
        registry: MetricsRegistry | None = None,
        shm: bool = True,
    ) -> None:
        workers = normalize_jobs(n_jobs)
        if clamp_to_host:
            workers = min(workers, os.cpu_count() or 1)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.counters = ServiceCounters(registry=self.registry)
        self.cache = ResultCache(
            capacity=cache_size,
            counters=self.counters,
            registry=self.registry,
        )
        self._scheduler = BatchScheduler(
            workers=workers,
            cache=self.cache,
            counters=self.counters,
            chunk_trials=chunk_trials,
            max_pools=max_pools,
            context=context,
            registry=self.registry,
            shm=shm,
            journal=RequestJournal(),
        )
        self._log = get_logger("repro.service.estimator")
        self._log.info(
            "service_started",
            workers=workers,
            cache_size=cache_size,
            chunk_trials=chunk_trials,
            max_pools=max_pools,
            shm=shm,
        )

    # ------------------------------------------------------------------ #
    # request surface
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Effective worker count after normalization/clamping."""
        return self._scheduler.workers

    @property
    def records(self) -> deque[RequestRecord]:
        """Per-request latency/throughput records (bounded, newest last)."""
        return self._scheduler.records

    @property
    def telemetry(self):
        """The scheduler's :class:`~repro.obs.remote.RemoteTelemetry`
        merge point (worker metric deltas land here)."""
        return self._scheduler.telemetry

    @property
    def journal(self) -> RequestJournal:
        """Bounded ring of recent convergence traces (``repro explain``)."""
        return self._scheduler.journal

    def submit(
        self,
        request: EstimateRequest | None = None,
        *,
        graph: StaticGraph | None = None,
        graph_spec: str | None = None,
        algorithm: str = "fair_tree_fast",
        trials: int | None = None,
        precision: Precision | None = None,
        seed: int | None = 0,
        params: Mapping[str, Any] | None = None,
        mode: str = "auto",
        trace: bool = False,
        request_id: str | None = None,
    ) -> RequestHandle:
        """Submit a request (non-blocking); returns a :class:`RequestHandle`.

        Pass either a prebuilt :class:`EstimateRequest` or the keyword
        fields of one.  ``precision=`` is the v2 surface — the scheduler
        runs trial rounds until the target CI closes (seeding from
        cached evidence) instead of burning a fixed budget.  ``trials=``
        alone is the deprecated fixed-budget mode (a
        ``DeprecationWarning`` is raised); passed alongside
        ``precision=`` it overrides the target's hard cap.  With neither
        given, :meth:`Precision.default` applies.
        """
        if request is None:
            if trials is not None and precision is None:
                warnings.warn(
                    "fixed trial budgets (trials= without precision=) are "
                    "deprecated; pass precision=Precision(...) to target a "
                    "confidence interval, optionally keeping trials= as the "
                    "hard cap (see docs/API.md)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            if trials is None and precision is None:
                precision = Precision.default()
            request = EstimateRequest(
                algorithm=algorithm,
                trials=trials,
                graph=graph,
                graph_spec=graph_spec,
                seed=seed,
                params=dict(params or {}),
                mode=mode,
                precision=precision,
                trace=trace,
                id=request_id,
            )
        with use_registry(self.registry), span(
            "estimator.submit",
            algorithm=request.algorithm,
            trials=request.trials,
        ):
            ticket = self._scheduler.submit(request)
        return RequestHandle(ticket)

    def estimate(
        self,
        request: EstimateRequest | None = None,
        *,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> EstimateResult:
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(request, **kwargs).result(timeout)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop the scheduler and terminate every worker process.

        ``wait=True`` finishes queued requests first; ``wait=False``
        cancels pending requests (their handles raise
        :class:`~repro.service.EstimateCancelled`) and kills workers.
        Afterwards no worker process of this estimator remains alive.
        """
        self._log.info("service_shutdown", graceful=wait)
        self._scheduler.shutdown(wait=wait, timeout=timeout)

    def __enter__(self) -> "Estimator":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.shutdown(wait=exc_type is None)
