"""Decision audit for the statistical layer: convergence traces.

The systems telemetry (spans, metrics) explains *where time went*; this
module explains *why the estimator stopped*.  Every precision-targeted
request is dispatched in rounds, and between rounds the scheduler
evaluates its :class:`~repro.service.precision.StoppingRule` — the
sequence of those evaluations is exactly the Wilson half-width
trajectory that produced the final ``stopped_early`` /
``precision_achieved`` verdict.  A :class:`ConvergenceTrace` records
that trajectory (one :class:`TraceFrame` per round, plus a frame for a
prior-only decision), and a bounded per-Estimator
:class:`RequestJournal` keeps the recent traces so ``repro explain``
can render any of them after the fact.

Fixed-budget (v1) requests get a degenerate single-frame trace with
stop reason ``fixed-budget`` — there was no decision to audit, but the
achieved half-widths are still worth seeing.

Recording is O(rounds) per request (a handful of small frozen records),
never per-trial, so the journal lives comfortably inside the ≤5%
observability-overhead budget.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TraceFrame", "ConvergenceTrace", "RequestJournal", "STOP_REASONS"]

#: The three ways a request's trial budget can end.
STOP_REASONS: tuple[str, ...] = ("satisfied", "capped", "fixed-budget")


@dataclass(frozen=True)
class TraceFrame:
    """One between-rounds stopping-rule evaluation.

    ``round`` 0 is the prior-only check made at submission (no chunks
    dispatched); rounds 1.. are executed trial rounds.  ``trials`` is
    the combined evidence the rule saw (prior + fresh);
    ``predicted_remaining`` is the scheduler's normal-approximation
    estimate of the trials still needed (0 once the decision stops).
    """

    round: int
    chunks: int
    new_trials: int
    total_new_trials: int
    prior_trials: int
    trials: int
    node_halfwidth: float
    node_target: float | None
    inequality_halfwidth: float | None
    inequality_target: float | None
    predicted_remaining: int
    satisfied: bool
    capped: bool
    wall_s: float

    @property
    def outcome(self) -> str:
        """``satisfied`` / ``capped`` / ``continue`` for this round."""
        if self.satisfied:
            return "satisfied"
        if self.capped:
            return "capped"
        return "continue"

    def to_json(self) -> dict[str, Any]:
        return {
            "round": self.round,
            "chunks": self.chunks,
            "new_trials": self.new_trials,
            "total_new_trials": self.total_new_trials,
            "prior_trials": self.prior_trials,
            "trials": self.trials,
            "node_halfwidth": self.node_halfwidth,
            "node_target": self.node_target,
            "inequality_halfwidth": self.inequality_halfwidth,
            "inequality_target": self.inequality_target,
            "predicted_remaining": self.predicted_remaining,
            "outcome": self.outcome,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "TraceFrame":
        outcome = str(obj.get("outcome", "continue"))
        return cls(
            round=int(obj["round"]),
            chunks=int(obj.get("chunks", 0)),
            new_trials=int(obj.get("new_trials", 0)),
            total_new_trials=int(obj.get("total_new_trials", 0)),
            prior_trials=int(obj.get("prior_trials", 0)),
            trials=int(obj["trials"]),
            node_halfwidth=float(obj["node_halfwidth"]),
            node_target=(
                None
                if obj.get("node_target") is None
                else float(obj["node_target"])
            ),
            inequality_halfwidth=(
                None
                if obj.get("inequality_halfwidth") is None
                else float(obj["inequality_halfwidth"])
            ),
            inequality_target=(
                None
                if obj.get("inequality_target") is None
                else float(obj["inequality_target"])
            ),
            predicted_remaining=int(obj.get("predicted_remaining", 0)),
            satisfied=outcome == "satisfied",
            capped=outcome == "capped",
            wall_s=float(obj.get("wall_s", 0.0)),
        )


@dataclass(frozen=True)
class ConvergenceTrace:
    """The full decision audit of one serviced request.

    ``stop_reason`` is ``satisfied`` (the CI closed before the cap),
    ``capped`` (the hard trial cap ended the request first), or
    ``fixed-budget`` (a v1 request — the budget *was* the decision).
    ``prior_trials`` / ``new_trials`` are the provenance split: how much
    of the final evidence came from the cache's pooled evidence plane
    versus trials executed for this request.
    """

    request_id: str | None
    algorithm: str
    graph_hash: str
    mode: str
    stop_reason: str
    prior_trials: int
    new_trials: int
    cached: bool
    precision: Mapping[str, Any] | None
    frames: tuple[TraceFrame, ...]

    def __post_init__(self) -> None:
        if self.stop_reason not in STOP_REASONS:
            raise ValueError(
                f"stop_reason must be one of {STOP_REASONS}, "
                f"got {self.stop_reason!r}"
            )

    @property
    def rounds(self) -> int:
        """Executed trial rounds (frame 0 is the prior-only check)."""
        return sum(1 for f in self.frames if f.round > 0)

    @property
    def stopped_early(self) -> bool:
        return self.stop_reason == "satisfied"

    def node_halfwidths(self) -> list[float]:
        """The per-round node half-width trajectory (sparkline input)."""
        return [f.node_halfwidth for f in self.frames]

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.request_id,
            "algorithm": self.algorithm,
            "graph_hash": self.graph_hash,
            "mode": self.mode,
            "stop_reason": self.stop_reason,
            "prior_trials": self.prior_trials,
            "new_trials": self.new_trials,
            "cached": self.cached,
            "precision": None if self.precision is None else dict(self.precision),
            "frames": [f.to_json() for f in self.frames],
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ConvergenceTrace":
        return cls(
            request_id=obj.get("id"),
            algorithm=str(obj.get("algorithm", "?")),
            graph_hash=str(obj.get("graph_hash", "?")),
            mode=str(obj.get("mode", "?")),
            stop_reason=str(obj.get("stop_reason", "fixed-budget")),
            prior_trials=int(obj.get("prior_trials", 0)),
            new_trials=int(obj.get("new_trials", 0)),
            cached=bool(obj.get("cached", False)),
            precision=obj.get("precision"),
            frames=tuple(
                TraceFrame.from_json(f) for f in obj.get("frames", [])
            ),
        )


class RequestJournal:
    """Thread-safe bounded ring of recent :class:`ConvergenceTrace`\\ s.

    One per :class:`~repro.service.Estimator`; the scheduler records
    every completed primary request (coalesced subscribers share their
    primary's trace).  Lookup is by request id (newest match wins) or
    ``last()``; capacity bounds memory, oldest traces fall off.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._traces: deque[ConvergenceTrace] = deque(maxlen=capacity)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def record(self, trace: ConvergenceTrace) -> None:
        with self._lock:
            self._traces.append(trace)

    def last(self) -> ConvergenceTrace | None:
        """The most recently recorded trace, or ``None``."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def get(self, request_id: str) -> ConvergenceTrace | None:
        """The newest trace whose request id equals *request_id*."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace.request_id == request_id:
                    return trace
        return None

    def traces(self) -> list[ConvergenceTrace]:
        """All retained traces, oldest first."""
        with self._lock:
            return list(self._traces)
