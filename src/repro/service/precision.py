"""Precision targets and sequential stopping rules (the v2 request core).

The paper's quantities of interest — per-node join frequencies and the
inequality factor ``F_A(G)`` — are Monte-Carlo estimates, so the natural
request contract is *statistical*: "give me the answer to ±0.02 at 95%
confidence", not "run exactly 2000 trials".  :class:`Precision` is that
contract; :class:`StoppingRule` is its executable form, evaluated by the
scheduler between trial rounds so requests stop as soon as their
confidence interval closes (with :attr:`Precision.max_trials` as the
hard cap against targets the graph cannot meet).

Concentration analyses of randomized MIS dynamics (read-k inequalities
for Luby-type processes, arXiv:1605.06486; Fischer–Noever's randomized
greedy bounds, arXiv:1707.05124) are why this wins: per-node join
statistics concentrate fast, so typical requests close their CI in a
small fraction of a fixed worst-case budget.

Targets
-------
``node_ci``
    Stop when every node's Wilson CI half-width is at most this value.
``inequality_ci``
    Stop when the inequality-factor interval half-width
    (:meth:`repro.analysis.fairness.JoinEstimate.inequality_halfwidth`)
    is at most this value.  Note the factor is unbounded above while any
    node's interval touches probability 0, so pair this target with a
    realistic ``max_trials``.

Either or both may be set; both must hold to stop early.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from ..analysis.fairness import JoinEstimate, z_for_confidence

__all__ = ["Precision", "StoppingRule", "StopDecision", "DEFAULT_NODE_CI"]

#: Default per-node CI half-width target (95% confidence).  Chosen so a
#: cold request on a typical paper graph closes in well under the classic
#: fixed budget of 2000 trials (worst case ~1540 at p = 0.5), and any
#: cached evidence from one such fixed request satisfies it outright.
DEFAULT_NODE_CI = 0.025

#: Default hard cap on total trials backing a precision request.
DEFAULT_MAX_TRIALS = 20_000

#: Default minimum trials before the stopping rule may fire — guards
#: against closing a degenerate CI on a handful of lucky samples.
DEFAULT_MIN_TRIALS = 32


@dataclass(frozen=True)
class Precision:
    """A precision target: what the estimate must achieve, not how.

    At least one of ``node_ci`` / ``inequality_ci`` must be set; use
    :meth:`default` for the service-wide default target.  ``confidence``
    sets the two-sided level for every interval involved.
    """

    node_ci: float | None = None
    inequality_ci: float | None = None
    confidence: float = 0.95
    max_trials: int = DEFAULT_MAX_TRIALS
    min_trials: int = DEFAULT_MIN_TRIALS

    def __post_init__(self) -> None:
        if self.node_ci is None and self.inequality_ci is None:
            raise ValueError(
                "precision needs at least one target: node_ci and/or "
                "inequality_ci (or use Precision.default())"
            )
        for name in ("node_ci", "inequality_ci"):
            value = getattr(self, name)
            if value is not None and not 0.0 < float(value):
                raise ValueError(f"{name} must be positive, got {value!r}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.max_trials <= 0:
            raise ValueError("max_trials must be positive")
        if not 0 < self.min_trials <= self.max_trials:
            raise ValueError("need 0 < min_trials <= max_trials")

    @classmethod
    def default(cls) -> "Precision":
        """The service-wide default target (node CI ±0.025 at 95%)."""
        return cls(node_ci=DEFAULT_NODE_CI)

    def with_cap(self, max_trials: int) -> "Precision":
        """This target with a different hard trial cap."""
        return replace(
            self,
            max_trials=max_trials,
            min_trials=min(self.min_trials, max_trials),
        )

    def rule(self) -> "StoppingRule":
        """Compile the target into an executable :class:`StoppingRule`."""
        return StoppingRule(
            node_ci=self.node_ci,
            inequality_ci=self.inequality_ci,
            z=z_for_confidence(self.confidence),
            max_trials=self.max_trials,
            min_trials=self.min_trials,
        )

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "Precision":
        """Build from a decoded JSON ``precision`` block."""
        known = {
            "node_ci", "inequality_ci", "confidence", "max_trials",
            "min_trials",
        }
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown precision fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for name in ("node_ci", "inequality_ci"):
            if obj.get(name) is not None:
                kwargs[name] = float(obj[name])
        if "confidence" in obj:
            kwargs["confidence"] = float(obj["confidence"])
        if "max_trials" in obj:
            kwargs["max_trials"] = int(obj["max_trials"])
        if "min_trials" in obj:
            kwargs["min_trials"] = int(obj["min_trials"])
        if "node_ci" not in kwargs and "inequality_ci" not in kwargs:
            kwargs["node_ci"] = DEFAULT_NODE_CI
        return cls(**kwargs)

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form (the v2 request ``precision`` block)."""
        out: dict[str, Any] = {
            "confidence": self.confidence,
            "max_trials": self.max_trials,
            "min_trials": self.min_trials,
        }
        if self.node_ci is not None:
            out["node_ci"] = self.node_ci
        if self.inequality_ci is not None:
            out["inequality_ci"] = self.inequality_ci
        return out


@dataclass(frozen=True)
class StopDecision:
    """One between-rounds evaluation of a :class:`StoppingRule`.

    ``satisfied`` — every requested target holds (and ``min_trials`` is
    reached); ``capped`` — the hard trial cap is exhausted.  The request
    stops on either (:attr:`should_stop`), but only ``satisfied`` counts
    as an early stop in the metrics.
    """

    satisfied: bool
    capped: bool
    trials: int
    node_halfwidth: float
    inequality_halfwidth: float | None

    @property
    def should_stop(self) -> bool:
        return self.satisfied or self.capped

    def achieved(self) -> dict[str, float]:
        """The achieved half-widths, for result metadata / JSON."""
        out = {"node_ci": self.node_halfwidth}
        if self.inequality_halfwidth is not None:
            out["inequality_ci"] = self.inequality_halfwidth
        return out


@dataclass(frozen=True)
class StoppingRule:
    """Executable form of a :class:`Precision` target.

    Pure and stateless: :meth:`check` maps accumulated evidence
    ``(counts, trials)`` to a :class:`StopDecision`.  The scheduler calls
    it between trial rounds; anything else (tests, offline analysis) may
    call it on arbitrary evidence.
    """

    node_ci: float | None
    inequality_ci: float | None
    z: float
    max_trials: int
    min_trials: int

    def check(self, counts: np.ndarray | None, trials: int) -> StopDecision:
        """Evaluate the rule on pooled evidence of *trials* runs."""
        if counts is None or trials <= 0:
            return StopDecision(
                satisfied=False,
                capped=False,
                trials=0,
                node_halfwidth=float("inf"),
                inequality_halfwidth=(
                    float("inf") if self.inequality_ci is not None else None
                ),
            )
        estimate = JoinEstimate(counts=np.asarray(counts), trials=trials)
        node_hw = estimate.max_halfwidth(self.z)
        ineq_hw = (
            estimate.inequality_halfwidth(self.z)
            if self.inequality_ci is not None
            else None
        )
        satisfied = trials >= self.min_trials
        if self.node_ci is not None:
            satisfied = satisfied and node_hw <= self.node_ci
        if self.inequality_ci is not None:
            assert ineq_hw is not None
            satisfied = satisfied and ineq_hw <= self.inequality_ci
        return StopDecision(
            satisfied=satisfied,
            capped=trials >= self.max_trials,
            trials=trials,
            node_halfwidth=node_hw,
            inequality_halfwidth=ineq_hw,
        )
