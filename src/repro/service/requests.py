"""Request/result dataclasses shared by the CLI, service, and library.

:class:`EstimateRequest` is the one description of "estimate join
probabilities for this graph/algorithm/trials/seed" used everywhere: the
``repro.service.Estimator`` accepts it programmatically, ``python -m
repro serve``/``batch`` read it as JSON lines, and library callers can
build it directly.  :class:`EstimateResult` pairs the request with the
:class:`~repro.analysis.fairness.JoinEstimate` plus serving metadata
(cache/coalescing provenance, resolved executor mode, latency).

JSON schema (one object per line; see ``docs/SERVICE.md``)::

    {"id": "r1", "graph": "tree:500:1", "algorithm": "fair_tree_fast",
     "trials": 2000, "seed": 0, "mode": "auto", "params": {}}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..analysis.fairness import JoinEstimate
from ..graphs.graph import StaticGraph
from ..graphs.spec import GraphSpec

__all__ = ["EstimateRequest", "EstimateResult", "MODES"]

#: Executor modes: ``auto`` picks the vectorized kernel when the algorithm
#: has one, ``exact`` forces per-trial seed parity with ``run_trials``,
#: ``vectorized`` requires the batched kernel (error if unavailable).
MODES: tuple[str, ...] = ("auto", "exact", "vectorized")


@dataclass(frozen=True)
class EstimateRequest:
    """One fairness-estimation request.

    Exactly one of ``graph`` (a built :class:`StaticGraph`) or
    ``graph_spec`` (a ``kind:arg`` string, see :mod:`repro.graphs.spec`)
    must be provided.  ``seed`` defaults to 0 so identical requests are
    deterministic and cacheable; pass ``seed=None`` for fresh entropy
    (such requests bypass the cache and may share trial chunks with
    concurrent seedless requests for the same pair).
    """

    algorithm: str
    trials: int
    graph: StaticGraph | None = None
    graph_spec: str | None = None
    seed: int | None = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    mode: str = "auto"
    id: str | None = None

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ValueError("algorithm name must be non-empty")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if (self.graph is None) == (self.graph_spec is None):
            raise ValueError("provide exactly one of graph / graph_spec")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.graph_spec is not None:
            GraphSpec.parse(self.graph_spec)  # fail fast on bad specs

    def resolve_graph(self) -> StaticGraph:
        """The request's graph, building it from the spec if needed."""
        if self.graph is not None:
            return self.graph
        assert self.graph_spec is not None
        return GraphSpec.parse(self.graph_spec).build()

    def algorithm_key(self) -> str:
        """Stable identity of ``(algorithm, params)`` for cache/pool keys."""
        if not self.params:
            return self.algorithm
        inner = ",".join(f"{k}={self.params[k]!r}" for k in sorted(self.params))
        return f"{self.algorithm}({inner})"

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "EstimateRequest":
        """Build a request from a decoded JSON object."""
        known = {"id", "graph", "algorithm", "trials", "seed", "params", "mode"}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        if "graph" not in obj:
            raise ValueError("request JSON requires a 'graph' spec string")
        return cls(
            algorithm=obj.get("algorithm", "fair_tree_fast"),
            trials=int(obj.get("trials", 2000)),
            graph_spec=str(obj["graph"]),
            seed=None if obj.get("seed", 0) is None else int(obj.get("seed", 0)),
            params=dict(obj.get("params", {})),
            mode=str(obj.get("mode", "auto")),
            id=obj.get("id"),
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form (requires a spec-described graph)."""
        if self.graph_spec is None:
            raise ValueError(
                "requests built from an in-memory graph are not serializable; "
                "use graph_spec"
            )
        out: dict[str, Any] = {
            "graph": self.graph_spec,
            "algorithm": self.algorithm,
            "trials": self.trials,
            "seed": self.seed,
            "mode": self.mode,
        }
        if self.params:
            out["params"] = dict(self.params)
        if self.id is not None:
            out["id"] = self.id
        return out


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of one serviced request.

    ``trials_run`` counts the *new* trials executed on behalf of this
    request: 0 for a cache hit, possibly less than ``request.trials``
    when chunks were shared with coalesced concurrent requests.
    """

    request: EstimateRequest
    estimate: JoinEstimate
    graph_hash: str
    mode: str
    cached: bool
    coalesced: bool
    trials_run: int
    latency_s: float

    def to_json(self, include_counts: bool = True) -> dict[str, Any]:
        """JSON-serializable summary (counts optional — they can be big)."""
        est = self.estimate
        out: dict[str, Any] = {
            "algorithm": self.request.algorithm,
            "trials": est.trials,
            "seed": self.request.seed,
            "graph_hash": self.graph_hash,
            "mode": self.mode,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "trials_run": self.trials_run,
            "latency_s": self.latency_s,
            "inequality": est.inequality,
            "min_probability": est.min_probability,
            "max_probability": est.max_probability,
        }
        if self.request.id is not None:
            out["id"] = self.request.id
        if self.request.graph_spec is not None:
            out["graph"] = self.request.graph_spec
        if include_counts:
            out["counts"] = est.counts.tolist()
        return out
