"""Request/result dataclasses shared by the CLI, service, and library.

:class:`EstimateRequest` is the one description of an estimation request
used everywhere: the ``repro.service.Estimator`` accepts it
programmatically, ``python -m repro serve``/``batch`` read it as JSON
lines, and library callers can build it directly.
:class:`EstimateResult` pairs the request with the
:class:`~repro.analysis.fairness.JoinEstimate` plus serving metadata
(cache/coalescing provenance, resolved executor mode, latency, realized
trials).

Two request generations coexist (see ``docs/API.md`` for the migration
table):

* **v2 (precision-targeted, preferred)** — the request carries a
  :class:`~repro.service.precision.Precision` target and the scheduler
  runs trial rounds until the confidence interval closes (sequential
  stopping with a hard cap), seeding from cached evidence::

      {"v": 2, "id": "r1", "graph": "tree:500:1",
       "algorithm": "fair_tree_fast", "seed": 0, "mode": "auto",
       "precision": {"node_ci": 0.025, "confidence": 0.95,
                     "max_trials": 20000}}

* **v1 (fixed budget, deprecated)** — a bare ``trials`` count::

      {"id": "r1", "graph": "tree:500:1", "algorithm": "fair_tree_fast",
       "trials": 2000, "seed": 0, "mode": "auto", "params": {}}

  v1 keeps working (bit-identical exact-mode results, exact-key result
  caching) but is deprecated; the serve/batch loop logs the deprecation
  once per connection and ``Estimator.submit(trials=...)`` raises a
  ``DeprecationWarning``.

When both ``trials`` and ``precision`` are given, ``trials`` acts as the
hard cap override (the natural migration stepping stone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..analysis.fairness import JoinEstimate
from ..graphs.graph import StaticGraph
from ..graphs.spec import GraphSpec
from .journal import ConvergenceTrace
from .precision import Precision

__all__ = ["EstimateRequest", "EstimateResult", "MODES", "PROTOCOL_VERSIONS"]

#: Executor modes: ``auto`` picks the vectorized kernel when the algorithm
#: has one, ``exact`` forces per-trial seed parity with ``run_trials``,
#: ``vectorized`` requires the batched kernel (error if unavailable).
MODES: tuple[str, ...] = ("auto", "exact", "vectorized")

#: JSON protocol versions understood by :meth:`EstimateRequest.from_json`.
PROTOCOL_VERSIONS: tuple[int, ...] = (1, 2)

_V1_FIELDS = {"v", "id", "graph", "algorithm", "trials", "seed", "params", "mode"}
_V2_FIELDS = _V1_FIELDS | {"precision", "trace"}


@dataclass(frozen=True)
class EstimateRequest:
    """One fairness-estimation request.

    Exactly one of ``graph`` (a built :class:`StaticGraph`) or
    ``graph_spec`` (a ``kind:arg`` string, see :mod:`repro.graphs.spec`)
    must be provided, and at least one of ``trials`` (deprecated fixed
    budget) or ``precision`` (v2 target).  ``seed`` defaults to 0 so
    identical requests are deterministic and cacheable; pass
    ``seed=None`` for fresh entropy (fixed-budget seedless requests
    bypass the result cache and may share trial chunks with concurrent
    seedless requests for the same pair).
    """

    algorithm: str
    trials: int | None = None
    graph: StaticGraph | None = None
    graph_spec: str | None = None
    seed: int | None = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    mode: str = "auto"
    precision: Precision | None = None
    trace: bool = False
    id: str | None = None

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ValueError("algorithm name must be non-empty")
        if self.trials is None and self.precision is None:
            raise ValueError(
                "provide trials= (deprecated fixed budget) and/or "
                "precision= (v2 target)"
            )
        if self.trials is not None and self.trials <= 0:
            raise ValueError("trials must be positive")
        if (self.graph is None) == (self.graph_spec is None):
            raise ValueError("provide exactly one of graph / graph_spec")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.graph_spec is not None:
            GraphSpec.parse(self.graph_spec)  # fail fast on bad specs

    def resolve_graph(self) -> StaticGraph:
        """The request's graph, building it from the spec if needed."""
        if self.graph is not None:
            return self.graph
        assert self.graph_spec is not None
        return GraphSpec.parse(self.graph_spec).build()

    def resolved_precision(self) -> Precision | None:
        """The effective precision target, or ``None`` for fixed budgets.

        When both ``precision`` and ``trials`` are given, ``trials``
        overrides the target's hard cap.
        """
        if self.precision is None:
            return None
        if self.trials is not None:
            return self.precision.with_cap(self.trials)
        return self.precision

    def algorithm_key(self) -> str:
        """Stable identity of ``(algorithm, params)`` for cache/pool keys."""
        if not self.params:
            return self.algorithm
        inner = ",".join(f"{k}={self.params[k]!r}" for k in sorted(self.params))
        return f"{self.algorithm}({inner})"

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "EstimateRequest":
        """Build a request from a decoded JSON object.

        The ``"v"`` envelope field selects the protocol generation:
        ``2`` accepts a ``precision`` block (and makes ``trials``
        optional); absent or ``1`` is the legacy fixed-budget line where
        ``trials`` defaults to 2000 and ``precision`` is rejected.
        """
        version = int(obj.get("v", 1))
        if version not in PROTOCOL_VERSIONS:
            raise ValueError(
                f"unsupported request protocol v{version} "
                f"(supported: {PROTOCOL_VERSIONS})"
            )
        known = _V2_FIELDS if version >= 2 else _V1_FIELDS
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        if "graph" not in obj:
            raise ValueError("request JSON requires a 'graph' spec string")
        precision: Precision | None = None
        trials: int | None = None
        trace = False
        if version >= 2:
            if obj.get("precision") is not None:
                precision = Precision.from_json(obj["precision"])
            if obj.get("trials") is not None:
                trials = int(obj["trials"])
            if precision is None and trials is None:
                precision = Precision.default()
            trace = bool(obj.get("trace", False))
        else:
            trials = int(obj.get("trials", 2000))
        return cls(
            algorithm=obj.get("algorithm", "fair_tree_fast"),
            trials=trials,
            graph_spec=str(obj["graph"]),
            seed=None if obj.get("seed", 0) is None else int(obj.get("seed", 0)),
            params=dict(obj.get("params", {})),
            mode=str(obj.get("mode", "auto")),
            precision=precision,
            trace=trace,
            id=obj.get("id"),
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form (requires a spec-described graph).

        Precision-bearing requests serialize as v2 envelopes; pure
        fixed-budget requests keep the exact legacy v1 shape.
        """
        if self.graph_spec is None:
            raise ValueError(
                "requests built from an in-memory graph are not serializable; "
                "use graph_spec"
            )
        out: dict[str, Any] = {}
        if self.precision is not None or self.trace:
            out["v"] = 2
        out.update(
            graph=self.graph_spec,
            algorithm=self.algorithm,
            seed=self.seed,
            mode=self.mode,
        )
        if self.precision is not None:
            out["precision"] = self.precision.to_json()
            if self.trials is not None:
                out["trials"] = self.trials
        else:
            out["trials"] = self.trials
        if self.trace:
            out["trace"] = True
        if self.params:
            out["params"] = dict(self.params)
        if self.id is not None:
            out["id"] = self.id
        return out


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of one serviced request.

    ``trials_run`` counts the *new* trials executed on behalf of this
    request: 0 for a cache/evidence hit, possibly less than the budget
    when chunks were shared with coalesced concurrent requests or the
    stopping rule fired early.  :attr:`realized_trials` is the total
    evidence behind the returned estimate — new trials plus any cached
    prior (``prior_trials``) the scheduler seeded the CI with.

    ``convergence`` is the request's decision audit (one frame per
    stopping-rule evaluation; see :mod:`repro.service.journal`) — always
    recorded for primary requests, but only serialized into the JSON
    envelope when the request asked for it (``"trace": true``).
    """

    request: EstimateRequest
    estimate: JoinEstimate
    graph_hash: str
    mode: str
    cached: bool
    coalesced: bool
    trials_run: int
    latency_s: float
    stopped_early: bool = False
    prior_trials: int = 0
    precision_achieved: Mapping[str, float] | None = None
    convergence: ConvergenceTrace | None = None

    @property
    def realized_trials(self) -> int:
        """Total trials backing the estimate (prior evidence + new)."""
        return self.estimate.trials

    def to_json(self, include_counts: bool = True) -> dict[str, Any]:
        """JSON-serializable summary (counts optional — they can be big)."""
        est = self.estimate
        out: dict[str, Any] = {
            "algorithm": self.request.algorithm,
            "trials": est.trials,
            "seed": self.request.seed,
            "graph_hash": self.graph_hash,
            "mode": self.mode,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "trials_run": self.trials_run,
            "latency_s": self.latency_s,
            "inequality": est.inequality,
            "min_probability": est.min_probability,
            "max_probability": est.max_probability,
        }
        if self.request.precision is not None:
            out["v"] = 2
            out["realized_trials"] = self.realized_trials
            out["prior_trials"] = self.prior_trials
            out["stopped_early"] = self.stopped_early
            if self.precision_achieved is not None:
                out["precision_achieved"] = dict(self.precision_achieved)
        if self.request.trace and self.convergence is not None:
            out["v"] = 2
            out["convergence"] = self.convergence.to_json()
        if self.request.id is not None:
            out["id"] = self.request.id
        if self.request.graph_spec is not None:
            out["graph"] = self.request.graph_spec
        if include_counts:
            out["counts"] = est.counts.tolist()
        return out
