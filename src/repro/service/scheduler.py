"""Batched request scheduler: coalescing, chunk dispatch, incremental merge.

One daemon dispatcher thread drains a FIFO of submitted requests and
turns each into a sequence of trial *chunks* executed on a persistent
:class:`~repro.analysis.montecarlo.TrialPool`.  Chunk results are merged
incrementally into per-request accumulators, so partial progress is never
lost and concurrent requests can share work three ways:

* **identical-request coalescing** — a seeded fixed-budget request that
  matches an in-flight request's cache key bit-for-bit subscribes to
  that request's completion instead of re-running anything;
* **shared seedless streams** — concurrent ``seed=None`` fixed-budget
  requests for the same ``(graph, algorithm, mode)`` pair consume one
  shared chunk stream: every finished chunk is merged into every
  unfinished subscriber, so N overlapping requests cost roughly one
  request's trials, not N;
* **evidence reuse (v2)** — every executed chunk also deposits its
  counts into the cache's accumulating evidence store, and
  precision-targeted requests seed their confidence interval from that
  pooled prior, so warm precision traffic typically executes few or zero
  new trials.

Precision-targeted requests (``request.precision`` set) are dispatched
in *rounds*: the scheduler submits one round of chunks, and when the
round completes it evaluates the request's
:class:`~repro.service.precision.StoppingRule` on prior + accumulated
counts — stopping early the moment the requested CI closes, or at the
hard trial cap.  Rounds re-enter the dispatcher queue rather than
blocking it, so sequential stopping never stalls concurrent traffic.

Pools are kept resident per ``(graph, algorithm)`` pair (LRU-capped), so
repeated traffic for the same pair never pays spin-up or graph pickling
again — the amortization the ROADMAP's throughput goal asks for.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict, deque
from typing import Any

import numpy as np

from ..analysis.fairness import JoinEstimate, z_for_confidence
from ..analysis.montecarlo import TrialPool, normalize_jobs
from ..core.registry import make
from ..core.result import MISAlgorithm
from ..fast.batched import vector_runner_for
from ..graphs.graph import StaticGraph
from ..obs.logging import get_logger
from ..obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    use_registry,
)
from ..obs.remote import RemoteTelemetry
from ..obs.spans import bind_trace, current_span_id, current_trace_id, new_trace_id, span
from ..runtime.metrics import RequestRecord, ServiceCounters
from ..runtime.rng import as_seed_sequence, spawn_trial_seeds
from .cache import ResultCache, cache_key
from .journal import ConvergenceTrace, RequestJournal, TraceFrame
from .precision import StopDecision, StoppingRule
from .requests import EstimateRequest, EstimateResult

__all__ = ["BatchScheduler", "EstimateTimeout", "EstimateCancelled", "Ticket"]


class EstimateTimeout(TimeoutError):
    """Waiting on a request exceeded the caller's deadline (it may still
    complete; poll again or cancel)."""


class EstimateCancelled(RuntimeError):
    """The request was cancelled before completion (shutdown or caller)."""


class Ticket:
    """Tracks one submitted request from submission to completion."""

    def __init__(
        self,
        request: EstimateRequest,
        graph: StaticGraph,
        graph_hash: str,
        algorithm: MISAlgorithm,
        mode: str,
        key: tuple | None,
        stopping: StoppingRule | None = None,
        prior: JoinEstimate | None = None,
    ) -> None:
        self.request = request
        self.graph = graph
        self.graph_hash = graph_hash
        self.algorithm = algorithm
        self.mode = mode
        self.key = key
        # Trace continuation: tickets join the submitting context's trace
        # (e.g. the Estimator.submit span) or start a fresh one, so every
        # scheduler/pool/chunk event for this request shares one trace_id.
        self.trace_id = current_trace_id() or new_trace_id()
        self.parent_span_id = current_span_id()
        # Sequential-stopping state: the rule, the cached prior seeding the
        # CI, and the target = fixed budget (v1) or hard cap minus prior
        # (v2, prior trials already count toward the cap).
        self.stopping = stopping
        self.prior = prior
        prior_trials = prior.trials if prior is not None else 0
        if stopping is None:
            assert request.trials is not None
            self.target = request.trials
        else:
            self.target = max(0, stopping.max_trials - prior_trials)
        self.seed_root = as_seed_sequence(request.seed)
        self.rounds = 0
        self.inflight_chunks = 0
        self.round_chunks = 0
        self.round_start_trials = 0
        self.frames: list[TraceFrame] = []
        self.stopped_early = False
        self.achieved: dict[str, float] | None = None
        self.counts = np.zeros(graph.n, dtype=np.int64)
        self.trials_done = 0
        self.trials_run = 0
        self.coalesced = False
        self.subscribers: list[Ticket] = []
        self.submitted_at = time.perf_counter()
        self._event = threading.Event()
        self._result: EstimateResult | None = None
        self._error: BaseException | None = None
        self._cancelled = False

    @property
    def prior_trials(self) -> int:
        return self.prior.trials if self.prior is not None else 0

    def combined(self) -> tuple[np.ndarray, int]:
        """Prior + accumulated counts — the evidence the rule sees."""
        if self.prior is None:
            return self.counts, self.trials_done
        return (
            self.prior.counts + self.counts,
            self.prior.trials + self.trials_done,
        )

    # ---- caller-facing ------------------------------------------------ #
    def done(self) -> bool:
        """True once a result or error is available."""
        return self._event.is_set()

    def cancel(self) -> None:
        """Stop executing further chunks for this request."""
        self._cancelled = True

    def result(self, timeout: float | None = None) -> EstimateResult:
        """Block until complete; raise :class:`EstimateTimeout` on expiry."""
        if not self._event.wait(timeout):
            raise EstimateTimeout(
                f"request {self.request.id or self.request.algorithm!r} "
                f"not complete within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def poll(self) -> EstimateResult | None:
        """The result if complete, else ``None`` (errors re-raise)."""
        if not self._event.is_set():
            return None
        return self.result(timeout=0)

    # ---- scheduler-facing --------------------------------------------- #
    @property
    def dead(self) -> bool:
        return self._cancelled or self._event.is_set()

    def _complete(self, result: EstimateResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Stream:
    """Shared chunk stream for seedless requests on one pair."""

    def __init__(self, pair: tuple) -> None:
        self.pair = pair
        self.root = as_seed_sequence(None)
        self.subscribers: list[Ticket] = []
        self.inflight_trials = 0
        self.scheduled = False
        self.closed = False


class BatchScheduler:
    """Owns the dispatcher thread, resident pools, cache, and records.

    Most callers should use :class:`repro.service.Estimator`, which wraps
    this with a friendlier construction/submission surface.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        counters: ServiceCounters | None = None,
        chunk_trials: int = 64,
        max_pools: int = 2,
        max_records: int = 1024,
        context: str | None = None,
        registry: MetricsRegistry | None = None,
        shm: bool = True,
        journal: RequestJournal | None = None,
    ) -> None:
        if chunk_trials <= 0:
            raise ValueError("chunk_trials must be positive")
        if max_pools <= 0:
            raise ValueError("max_pools must be positive")
        self.workers = normalize_jobs(workers)
        self.counters = (
            counters
            if counters is not None
            else (
                cache.counters
                if cache is not None
                else ServiceCounters(registry=registry)
            )
        )
        self.registry = (
            registry if registry is not None else self.counters.registry
        )
        self.cache = (
            cache
            if cache is not None
            else ResultCache(counters=self.counters, registry=self.registry)
        )
        self._log = get_logger("repro.service.scheduler")
        self._h_latency = self.registry.histogram(
            "service_request_latency_seconds",
            "Submit-to-completion latency of estimation requests",
            buckets=LATENCY_BUCKETS,
            labelnames=("algorithm",),
        )
        self._h_chunk = self.registry.histogram(
            "service_trials_per_chunk",
            "Trials executed per scheduled chunk",
            buckets=COUNT_BUCKETS,
        )
        self._h_queue = self.registry.histogram(
            "service_queue_depth",
            "Dispatcher queue depth sampled at each submission",
            buckets=COUNT_BUCKETS,
        )
        self._g_queue = self.registry.gauge(
            "service_queue_depth_current", "Current dispatcher queue depth"
        )
        self._g_pools = self.registry.gauge(
            "service_pools_resident", "Worker pools currently kept warm"
        )
        self._c_fallback = self.registry.counter(
            "service_vectorized_fallback_total",
            "Auto-mode requests that fell back to exact per-trial chunks "
            "because the algorithm has no vectorized runner",
            labelnames=("algorithm",),
        )
        self._h_realized = self.registry.histogram(
            "service_realized_trials",
            "New trials executed per completed request (0 = served "
            "entirely from cache or pooled evidence)",
            buckets=COUNT_BUCKETS,
            labelnames=("algorithm",),
        )
        self._c_early = self.registry.counter(
            "service_precision_early_stops_total",
            "Precision requests whose stopping rule fired before the "
            "hard trial cap",
            labelnames=("algorithm",),
        )
        self._c_capped = self.registry.counter(
            "service_precision_capped_total",
            "Precision requests that exhausted their hard trial cap "
            "before the requested CI closed",
            labelnames=("algorithm",),
        )
        self.chunk_trials = chunk_trials
        self.max_pools = max_pools
        self.records: deque[RequestRecord] = deque(maxlen=max_records)
        # Decision-audit plane: every primary request's convergence trace
        # lands here (bounded ring) for `repro explain` / EstimateResult.
        self.journal = journal if journal is not None else RequestJournal()
        self._context = context
        self._shm = shm
        # Cross-process plane: every pool this scheduler creates ships
        # trace context with its chunks and pipes worker metric deltas +
        # span records back through this merge point (repro.obs.remote).
        self.telemetry = RemoteTelemetry(self.registry)
        self._lock = threading.RLock()
        self._queue: queue.Queue[Any] = queue.Queue()
        self._inflight: dict[tuple, Ticket] = {}
        self._streams: dict[tuple, _Stream] = {}
        self._dynamic: set[Ticket] = set()
        self._pools: OrderedDict[tuple, TrialPool] = OrderedDict()
        self._pool_busy: dict[tuple, int] = {}
        self._graph_memo: OrderedDict[str, StaticGraph] = OrderedDict()
        self._sem = threading.BoundedSemaphore(self.workers * 2)
        self._closed = False
        self._hard_stop = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, request: EstimateRequest) -> Ticket:
        """Register *request*; returns a :class:`Ticket` immediately.

        Cache/evidence hits complete before this returns; identical
        in-flight requests and same-pair seedless requests are coalesced
        rather than re-executed.  Precision-targeted requests enter the
        round-based sequential-stopping path, seeded with any pooled
        evidence for their ``(graph, algorithm)`` pair.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        self.counters.increment("requests")
        graph = self._resolve_graph(request)
        algorithm = make(request.algorithm, **dict(request.params))
        mode = self._resolve_mode(request.mode, algorithm)
        graph_hash = graph.content_hash()
        precision = request.resolved_precision()
        if precision is not None:
            return self._submit_precision(
                request, graph, graph_hash, algorithm, mode, precision
            )
        assert request.trials is not None
        key = cache_key(
            graph_hash, request.algorithm_key(), request.seed, request.trials, mode
        )
        ticket = Ticket(request, graph, graph_hash, algorithm, mode, key)
        depth = self._queue.qsize()
        self._h_queue.observe(depth)
        self._g_queue.set(depth)
        self._log.info(
            "request_submitted",
            trace_id=ticket.trace_id,
            request_id=request.id,
            algorithm=request.algorithm,
            trials=request.trials,
            mode=mode,
            seeded=request.seed is not None,
            queue_depth=depth,
        )

        if key is not None:
            est = self.cache.get(key)
            if est is not None:
                self._finish(ticket, est, cached=True)
                return ticket
            with self._lock:
                primary = self._inflight.get(key)
                if primary is not None and not primary.done():
                    ticket.coalesced = True
                    primary.subscribers.append(ticket)
                    self.counters.increment("coalesced_requests")
                    self._log.info(
                        "request_coalesced",
                        trace_id=ticket.trace_id,
                        primary_trace_id=primary.trace_id,
                        request_id=request.id,
                    )
                    return ticket
                self._inflight[key] = ticket
            self._queue.put(ticket)
            return ticket

        # Seedless: join (or open) the shared stream for this pair.
        pair = (graph_hash, request.algorithm_key(), mode)
        with self._lock:
            stream = self._streams.get(pair)
            if stream is not None and not stream.closed:
                ticket.coalesced = True
                stream.subscribers.append(ticket)
                self.counters.increment("coalesced_requests")
                self._log.info(
                    "request_coalesced",
                    trace_id=ticket.trace_id,
                    stream=repr(pair[1]),
                    request_id=request.id,
                )
                if not stream.scheduled:
                    stream.scheduled = True
                    self._queue.put(stream)
                return ticket
            stream = _Stream(pair)
            stream.subscribers.append(ticket)
            stream.scheduled = True
            self._streams[pair] = stream
        self._queue.put(stream)
        return ticket

    def _submit_precision(
        self,
        request: EstimateRequest,
        graph: StaticGraph,
        graph_hash: str,
        algorithm: MISAlgorithm,
        mode: str,
        precision,
    ) -> Ticket:
        """Register a precision-targeted request (sequential stopping).

        The cached evidence pool for ``(graph, algorithm)`` seeds the
        CI; if the prior alone already satisfies the stopping rule the
        request completes here with zero new trials.
        """
        self.counters.increment("precision_requests")
        rule = precision.rule()
        prior = self.cache.evidence(graph_hash, request.algorithm_key())
        ticket = Ticket(
            request, graph, graph_hash, algorithm, mode, key=None,
            stopping=rule, prior=prior,
        )
        depth = self._queue.qsize()
        self._h_queue.observe(depth)
        self._g_queue.set(depth)
        self._log.info(
            "request_submitted",
            trace_id=ticket.trace_id,
            request_id=request.id,
            algorithm=request.algorithm,
            mode=mode,
            seeded=request.seed is not None,
            precision=precision.to_json(),
            prior_trials=ticket.prior_trials,
            queue_depth=depth,
        )
        if prior is not None:
            decision = rule.check(prior.counts, prior.trials)
            stop = decision.should_stop
            ticket.frames.append(
                self._precision_frame(
                    ticket,
                    decision,
                    chunks=0,
                    new_trials=0,
                    predicted=0 if stop else self._round_budget(ticket),
                )
            )
            if stop:
                ticket.stopped_early = decision.satisfied
                ticket.achieved = decision.achieved()
                if decision.satisfied:
                    self.counters.increment("early_stops")
                    self._c_early.labels(algorithm=request.algorithm).inc()
                else:
                    self._c_capped.labels(algorithm=request.algorithm).inc()
                self._finish(ticket, prior, cached=True)
                return ticket
        with self._lock:
            self._dynamic.add(ticket)
        self._queue.put(ticket)
        return ticket

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #
    def _resolve_graph(self, request: EstimateRequest) -> StaticGraph:
        if request.graph is not None:
            return request.graph
        spec = request.graph_spec
        assert spec is not None
        with self._lock:
            memo = self._graph_memo.get(spec)
            if memo is not None:
                self._graph_memo.move_to_end(spec)
                return memo
        graph = request.resolve_graph()
        with self._lock:
            self._graph_memo[spec] = graph
            while len(self._graph_memo) > 8:
                self._graph_memo.popitem(last=False)
        return graph

    def _resolve_mode(self, mode: str, algorithm: MISAlgorithm) -> str:
        runner = vector_runner_for(algorithm)
        if mode == "auto":
            if runner is not None:
                return "vectorized"
            # The fallback is a silent throughput cliff (per-trial python
            # loop instead of the batched kernel) — make it observable.
            self._c_fallback.labels(algorithm=algorithm.name).inc()
            self._log.warning(
                "vectorized_fallback",
                algorithm=algorithm.name,
                reason="no vectorized runner registered",
            )
            return "exact"
        if mode == "vectorized" and runner is None:
            raise ValueError(
                f"algorithm {algorithm.name!r} has no vectorized runner; "
                "use mode='exact' or 'auto'"
            )
        return mode

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            self._g_queue.set(self._queue.qsize())
            if item is None:
                break
            try:
                if isinstance(item, _Stream):
                    self._dispatch_stream(item)
                elif item.stopping is not None:
                    self._dispatch_precision_round(item)
                else:
                    self._dispatch_ticket(item)
            except BaseException as exc:  # noqa: BLE001 - fail the request
                if isinstance(item, _Stream):
                    with self._lock:
                        subs = list(item.subscribers)
                        item.closed = True
                        self._streams.pop(item.pair, None)
                    for sub in subs:
                        sub._fail(exc)
                else:
                    self._abort(item, exc)

    def _acquire_slot(self) -> bool:
        """Bounded-concurrency gate; gives up when hard-stopped."""
        while not self._sem.acquire(timeout=0.05):
            if self._hard_stop:
                return False
        if self._hard_stop:
            self._sem.release()
            return False
        return True

    def _pool_for(self, ticket_pair: tuple, algorithm, graph) -> TrialPool:
        with self._lock:
            pool = self._pools.get(ticket_pair)
            if pool is not None:
                self._pools.move_to_end(ticket_pair)
                return pool
        pool = TrialPool(
            algorithm,
            graph,
            workers=self.workers,
            context=self._context,
            shm=self._shm,
            telemetry=self.telemetry,
        )
        self.counters.increment("pools_created")
        with self._lock:
            self._pools[ticket_pair] = pool
            self._pool_busy.setdefault(ticket_pair, 0)
            victims = []
            if len(self._pools) > self.max_pools:
                for key in list(self._pools):
                    if len(self._pools) <= self.max_pools:
                        break
                    if key != ticket_pair and self._pool_busy.get(key, 0) == 0:
                        victims.append((key, self._pools.pop(key)))
                        self._pool_busy.pop(key, None)
        for _key, victim in victims:
            victim.close(wait=True)
            self.counters.increment("pools_evicted")
        with self._lock:
            self._g_pools.set(len(self._pools))
        return pool

    def _plan_chunks(self, ticket: Ticket) -> list[tuple[Any, int]]:
        """Split a seeded request into ``(payload, n_trials)`` chunks.

        Exact mode partitions the same spawned per-trial seeds
        ``run_trials`` would use, contiguously — totals are bit-identical
        to serial execution however the chunks land on workers.
        Vectorized mode spawns one child seed per chunk, so results are
        deterministic for a fixed ``chunk_trials``.
        """
        trials, seed = ticket.target, ticket.request.seed
        size = self.chunk_trials
        n_chunks = math.ceil(trials / size)
        if ticket.mode == "exact":
            seeds = spawn_trial_seeds(seed, trials)
            parts = [seeds[i * size : (i + 1) * size] for i in range(n_chunks)]
            return [(part, len(part)) for part in parts]
        roots = as_seed_sequence(seed).spawn(n_chunks)
        sizes = [min(size, trials - i * size) for i in range(n_chunks)]
        return [((root, k), k) for root, k in zip(roots, sizes)]

    def _dispatch_ticket(self, ticket: Ticket) -> None:
        # Re-enter the request's trace on the dispatcher thread and bind
        # the service registry so pool/engine observations land here.
        with bind_trace(ticket.trace_id, ticket.parent_span_id), use_registry(
            self.registry
        ), span(
            "scheduler.dispatch",
            algorithm=ticket.request.algorithm,
            trials=ticket.target,
            mode=ticket.mode,
        ):
            pair = (ticket.graph_hash, ticket.request.algorithm_key())
            pool = self._pool_for(pair, ticket.algorithm, ticket.graph)
            vectorized = ticket.mode == "vectorized"
            for payload, n_trials in self._plan_chunks(ticket):
                if ticket.dead:
                    break
                if not self._acquire_slot():
                    self._abort(ticket, EstimateCancelled("scheduler stopped"))
                    return
                with self._lock:
                    self._pool_busy[pair] = self._pool_busy.get(pair, 0) + 1
                pool.submit_chunk(
                    payload,
                    vectorized,
                    callback=lambda counts, t=ticket, p=pair, n=n_trials: (
                        self._on_ticket_chunk(t, p, n, counts)
                    ),
                    error_callback=lambda exc, t=ticket, p=pair: (
                        self._on_chunk_error(t, p, exc)
                    ),
                )
        if ticket._cancelled and not ticket.done():
            self._abort(ticket, EstimateCancelled("request cancelled"))

    def _on_ticket_chunk(
        self, ticket: Ticket, pair: tuple, n_trials: int, counts: np.ndarray
    ) -> None:
        self._release_slot(pair)
        self.counters.increment("chunks_executed")
        self.counters.increment("trials_executed", n_trials)
        self._h_chunk.observe(n_trials)
        self._log.debug(
            "chunk_completed",
            trace_id=ticket.trace_id,
            trials=n_trials,
            algorithm=ticket.request.algorithm,
        )
        finish = False
        with self._lock:
            ticket.counts += counts
            ticket.trials_done += n_trials
            ticket.trials_run += n_trials
            if ticket.trials_done >= ticket.target and not ticket.done():
                finish = True
        if finish:
            est = JoinEstimate(
                counts=ticket.counts.copy(), trials=ticket.trials_done
            )
            self.cache.put(ticket.key, est)
            # Fixed-budget executions feed the evidence pool too, tagged
            # by their exact cache key so deterministic repeats (after an
            # exact-plane eviction) can never double-deposit.
            self.cache.add_evidence(
                ticket.graph_hash,
                ticket.request.algorithm_key(),
                est,
                tag=ticket.key,
            )
            with self._lock:
                if self._inflight.get(ticket.key) is ticket:
                    self._inflight.pop(ticket.key, None)
            self._finish(ticket, est, cached=False)

    def _on_chunk_error(
        self, ticket: Ticket, pair: tuple, exc: BaseException
    ) -> None:
        self._release_slot(pair)
        self._abort(ticket, exc)

    def _release_slot(self, pair: tuple) -> None:
        with self._lock:
            self._pool_busy[pair] = max(0, self._pool_busy.get(pair, 0) - 1)
        try:
            self._sem.release()
        except ValueError:  # pragma: no cover - defensive
            pass

    # ---- precision rounds (sequential stopping) ----------------------- #
    def _round_budget(self, ticket: Ticket) -> int:
        """Trials to execute in the next round of a precision request.

        The first round is one scheduling quantum (enough chunks to keep
        every worker busy); later rounds jump to the trial count the
        normal approximation predicts the bottleneck node still needs,
        so a cold request typically converges in two or three rounds
        instead of dozens of tiny ones.  Always clamped to the remaining
        cap budget.
        """
        assert ticket.stopping is not None
        remaining = ticket.target - ticket.trials_done
        base = self.chunk_trials * max(1, self.workers)
        counts, trials = ticket.combined()
        budget = base
        if trials > 0 and ticket.stopping.node_ci is not None:
            est = JoinEstimate(counts=counts.copy(), trials=trials)
            hw = est.halfwidths(ticket.stopping.z)
            p = est.probabilities[int(np.argmax(hw))]
            z, ci = ticket.stopping.z, ticket.stopping.node_ci
            needed = z * z * max(p * (1.0 - p), 1e-4) / (ci * ci) - trials
            budget = max(base, int(needed * 1.05))
        return max(0, min(remaining, budget))

    def _precision_frame(
        self,
        ticket: Ticket,
        decision: StopDecision,
        *,
        chunks: int,
        new_trials: int,
        predicted: int,
    ) -> TraceFrame:
        """One convergence-trace frame from a stopping-rule evaluation."""
        assert ticket.stopping is not None
        rule = ticket.stopping
        return TraceFrame(
            round=ticket.rounds,
            chunks=chunks,
            new_trials=new_trials,
            total_new_trials=ticket.trials_done,
            prior_trials=ticket.prior_trials,
            trials=decision.trials,
            node_halfwidth=decision.node_halfwidth,
            node_target=rule.node_ci,
            inequality_halfwidth=decision.inequality_halfwidth,
            inequality_target=rule.inequality_ci,
            predicted_remaining=predicted,
            satisfied=decision.satisfied,
            capped=decision.capped,
            wall_s=time.perf_counter() - ticket.submitted_at,
        )

    def _build_trace(
        self, ticket: Ticket, estimate: JoinEstimate, cached: bool
    ) -> ConvergenceTrace:
        """The request's decision audit (see :mod:`repro.service.journal`).

        Precision tickets carry the frames accumulated between rounds;
        fixed-budget (and exact-cache-hit) requests get a single
        synthetic frame so the achieved half-widths are still auditable,
        with stop reason ``fixed-budget``.
        """
        if ticket.stopping is not None:
            precision = ticket.request.resolved_precision()
            return ConvergenceTrace(
                request_id=ticket.request.id,
                algorithm=ticket.request.algorithm,
                graph_hash=ticket.graph_hash,
                mode=ticket.mode,
                stop_reason="satisfied" if ticket.stopped_early else "capped",
                prior_trials=ticket.prior_trials,
                new_trials=ticket.trials_run,
                cached=cached,
                precision=precision.to_json() if precision is not None else None,
                frames=tuple(ticket.frames),
            )
        z = z_for_confidence(0.95)
        frame = TraceFrame(
            round=0 if cached else 1,
            chunks=0 if cached else math.ceil(ticket.target / self.chunk_trials),
            new_trials=ticket.trials_run if not cached else 0,
            total_new_trials=ticket.trials_run if not cached else 0,
            prior_trials=0,
            trials=estimate.trials,
            node_halfwidth=estimate.max_halfwidth(z),
            node_target=None,
            inequality_halfwidth=None,
            inequality_target=None,
            predicted_remaining=0,
            satisfied=False,
            capped=False,
            wall_s=time.perf_counter() - ticket.submitted_at,
        )
        return ConvergenceTrace(
            request_id=ticket.request.id,
            algorithm=ticket.request.algorithm,
            graph_hash=ticket.graph_hash,
            mode=ticket.mode,
            stop_reason="fixed-budget",
            prior_trials=0,
            new_trials=frame.new_trials,
            cached=cached,
            precision=None,
            frames=(frame,),
        )

    def _dispatch_precision_round(self, ticket: Ticket) -> None:
        """Submit one round of chunks for a precision-targeted request."""
        if ticket.dead:
            self._abort(ticket, EstimateCancelled("request cancelled"))
            return
        with bind_trace(ticket.trace_id, ticket.parent_span_id), use_registry(
            self.registry
        ), span(
            "scheduler.dispatch_round",
            algorithm=ticket.request.algorithm,
            round=ticket.rounds,
            mode=ticket.mode,
        ):
            budget = self._round_budget(ticket)
            if budget <= 0:
                # Cap already consumed (e.g. prior nearly at cap): settle.
                self._settle_precision(ticket)
                return
            pair = (ticket.graph_hash, ticket.request.algorithm_key())
            pool = self._pool_for(pair, ticket.algorithm, ticket.graph)
            vectorized = ticket.mode == "vectorized"
            sizes = [
                min(self.chunk_trials, budget - i * self.chunk_trials)
                for i in range(math.ceil(budget / self.chunk_trials))
            ]
            with self._lock:
                ticket.rounds += 1
                ticket.inflight_chunks = len(sizes)
                ticket.round_chunks = len(sizes)
                ticket.round_start_trials = ticket.trials_done
            for n_trials in sizes:
                if not self._acquire_slot():
                    self._abort(ticket, EstimateCancelled("scheduler stopped"))
                    return
                chunk_seed = ticket.seed_root.spawn(1)[0]
                payload = (
                    (chunk_seed, n_trials)
                    if vectorized
                    else chunk_seed.spawn(n_trials)
                )
                with self._lock:
                    self._pool_busy[pair] = self._pool_busy.get(pair, 0) + 1
                pool.submit_chunk(
                    payload,
                    vectorized,
                    callback=lambda counts, t=ticket, p=pair, n=n_trials: (
                        self._on_precision_chunk(t, p, n, counts)
                    ),
                    error_callback=lambda exc, t=ticket, p=pair: (
                        self._on_chunk_error(t, p, exc)
                    ),
                )

    def _on_precision_chunk(
        self, ticket: Ticket, pair: tuple, n_trials: int, counts: np.ndarray
    ) -> None:
        self._release_slot(pair)
        self.counters.increment("chunks_executed")
        self.counters.increment("trials_executed", n_trials)
        self._h_chunk.observe(n_trials)
        with self._lock:
            ticket.counts += counts
            ticket.trials_done += n_trials
            ticket.trials_run += n_trials
            ticket.inflight_chunks -= 1
            round_done = ticket.inflight_chunks <= 0
        if not round_done:
            return
        if ticket.dead:
            if not ticket.done():
                self._abort(ticket, EstimateCancelled("request cancelled"))
            return
        assert ticket.stopping is not None
        combined_counts, combined_trials = ticket.combined()
        decision = ticket.stopping.check(combined_counts, combined_trials)
        self._log.debug(
            "round_completed",
            trace_id=ticket.trace_id,
            round=ticket.rounds,
            trials=combined_trials,
            node_halfwidth=round(decision.node_halfwidth, 6),
            satisfied=decision.satisfied,
        )
        stopping = decision.should_stop or ticket.trials_done >= ticket.target
        ticket.frames.append(
            self._precision_frame(
                ticket,
                decision,
                chunks=ticket.round_chunks,
                new_trials=ticket.trials_done - ticket.round_start_trials,
                predicted=0 if stopping else self._round_budget(ticket),
            )
        )
        if decision.should_stop or ticket.trials_done >= ticket.target:
            ticket.stopped_early = decision.satisfied
            ticket.achieved = decision.achieved()
            if decision.satisfied:
                self.counters.increment("early_stops")
                self._c_early.labels(algorithm=ticket.request.algorithm).inc()
            else:
                self._c_capped.labels(algorithm=ticket.request.algorithm).inc()
            self._settle_precision(ticket)
        else:
            self._queue.put(ticket)

    def _settle_precision(self, ticket: Ticket) -> None:
        """Finish a precision ticket: deposit its new evidence, report."""
        if ticket.trials_done > 0:
            # Seeded runs carry a dedup tag so an identical re-run (after
            # evidence eviction) cannot double-count correlated samples.
            tag = None
            if ticket.request.seed is not None:
                tag = (
                    "precision", ticket.request.seed, ticket.mode,
                    ticket.trials_done,
                )
            self.cache.add_evidence(
                ticket.graph_hash,
                ticket.request.algorithm_key(),
                JoinEstimate(
                    counts=ticket.counts.copy(), trials=ticket.trials_done
                ),
                tag=tag,
            )
        combined_counts, combined_trials = ticket.combined()
        if combined_trials <= 0:  # pragma: no cover - defensive
            self._abort(
                ticket, RuntimeError("precision request produced no trials")
            )
            return
        est = JoinEstimate(counts=combined_counts.copy(), trials=combined_trials)
        self._finish(ticket, est, cached=False)

    # ---- seedless streams --------------------------------------------- #
    def _stream_need(self, stream: _Stream) -> int:
        """Trials still to dispatch so every subscriber can reach target."""
        with self._lock:
            shortfall = 0
            for sub in stream.subscribers:
                if sub.dead:
                    continue
                shortfall = max(
                    shortfall,
                    sub.target - sub.trials_done - stream.inflight_trials,
                )
            return shortfall

    def _dispatch_stream(self, stream: _Stream) -> None:
        graph_hash, algorithm_key, _mode = stream.pair
        with self._lock:
            live = [s for s in stream.subscribers if not s.dead]
        if not live:
            self._close_stream(stream)
            return
        exemplar = live[0]
        with bind_trace(
            exemplar.trace_id, exemplar.parent_span_id
        ), use_registry(self.registry), span(
            "scheduler.dispatch_stream",
            algorithm=exemplar.request.algorithm,
            subscribers=len(live),
        ):
            self._pump_stream(stream, exemplar, graph_hash, algorithm_key)

    def _pump_stream(
        self,
        stream: _Stream,
        exemplar: Ticket,
        graph_hash: str,
        algorithm_key: str,
    ) -> None:
        pair = (graph_hash, algorithm_key)
        pool = self._pool_for(pair, exemplar.algorithm, exemplar.graph)
        vectorized = exemplar.mode == "vectorized"
        while True:
            need = self._stream_need(stream)
            if need <= 0:
                break
            n_trials = min(self.chunk_trials, need)
            chunk_seed = stream.root.spawn(1)[0]
            if not self._acquire_slot():
                for sub in list(stream.subscribers):
                    self._abort(sub, EstimateCancelled("scheduler stopped"))
                self._close_stream(stream)
                return
            with self._lock:
                stream.inflight_trials += n_trials
                self._pool_busy[pair] = self._pool_busy.get(pair, 0) + 1
            payload = (
                (chunk_seed, n_trials)
                if vectorized
                else chunk_seed.spawn(n_trials)
            )
            pool.submit_chunk(
                payload,
                vectorized,
                callback=lambda counts, s=stream, p=pair, n=n_trials: (
                    self._on_stream_chunk(s, p, n, counts)
                ),
                error_callback=lambda exc, s=stream, p=pair: (
                    self._on_stream_error(s, p, exc)
                ),
            )
        with self._lock:
            stream.scheduled = False
            # Late subscribers may have joined after the last need check.
            if self._stream_need(stream) > 0 and not stream.closed:
                stream.scheduled = True
                self._queue.put(stream)
            elif not any(not s.done() for s in stream.subscribers):
                self._close_stream(stream)

    def _on_stream_chunk(
        self, stream: _Stream, pair: tuple, n_trials: int, counts: np.ndarray
    ) -> None:
        self._release_slot(pair)
        self.counters.increment("chunks_executed")
        self.counters.increment("trials_executed", n_trials)
        self._h_chunk.observe(n_trials)
        # Every stream chunk is fresh entropy executed exactly once, so it
        # deposits unconditionally (no dedup tag needed).
        self.cache.add_evidence(
            stream.pair[0],
            stream.pair[1],
            JoinEstimate(counts=counts.copy(), trials=n_trials),
        )
        subs_now = list(stream.subscribers)
        self._log.debug(
            "chunk_completed",
            trace_id=subs_now[0].trace_id if subs_now else None,
            trials=n_trials,
            stream=repr(pair[1]),
        )
        finished: list[Ticket] = []
        with self._lock:
            stream.inflight_trials = max(0, stream.inflight_trials - n_trials)
            charged = False
            for sub in stream.subscribers:
                if sub.dead or sub.trials_done >= sub.target:
                    continue
                sub.counts += counts
                sub.trials_done += n_trials
                if not charged:
                    sub.trials_run += n_trials
                    charged = True
                if sub.trials_done >= sub.target:
                    finished.append(sub)
            for sub in finished:
                stream.subscribers.remove(sub)
            drained = not stream.subscribers
        for sub in finished:
            est = JoinEstimate(counts=sub.counts.copy(), trials=sub.trials_done)
            self._finish(sub, est, cached=False)
        if drained:
            self._close_stream(stream)

    def _on_stream_error(
        self, stream: _Stream, pair: tuple, exc: BaseException
    ) -> None:
        self._release_slot(pair)
        with self._lock:
            subs = list(stream.subscribers)
            stream.subscribers.clear()
        for sub in subs:
            self._abort(sub, exc)
        self._close_stream(stream)

    def _close_stream(self, stream: _Stream) -> None:
        with self._lock:
            stream.closed = True
            if self._streams.get(stream.pair) is stream:
                self._streams.pop(stream.pair, None)

    # ------------------------------------------------------------------ #
    # completion / records
    # ------------------------------------------------------------------ #
    def _finish(
        self, ticket: Ticket, estimate: JoinEstimate, cached: bool
    ) -> None:
        latency = time.perf_counter() - ticket.submitted_at
        trials_run = 0 if cached else ticket.trials_run
        self._h_latency.labels(algorithm=ticket.request.algorithm).observe(
            latency
        )
        self._h_realized.labels(algorithm=ticket.request.algorithm).observe(
            trials_run
        )
        with self._lock:
            self._dynamic.discard(ticket)
        self._log.info(
            "request_completed",
            trace_id=ticket.trace_id,
            request_id=ticket.request.id,
            algorithm=ticket.request.algorithm,
            cached=cached,
            coalesced=ticket.coalesced,
            trials_run=trials_run,
            realized_trials=estimate.trials,
            stopped_early=ticket.stopped_early,
            latency_s=round(latency, 6),
        )
        trace = self._build_trace(ticket, estimate, cached)
        result = EstimateResult(
            request=ticket.request,
            estimate=estimate,
            graph_hash=ticket.graph_hash,
            mode=ticket.mode,
            cached=cached,
            coalesced=ticket.coalesced,
            trials_run=trials_run,
            latency_s=latency,
            stopped_early=ticket.stopped_early,
            prior_trials=ticket.prior_trials,
            precision_achieved=ticket.achieved,
            convergence=trace,
        )
        ticket._complete(result)
        self.journal.record(trace)
        self._record(ticket, result)
        with self._lock:
            subscribers = list(ticket.subscribers)
        for sub in subscribers:
            if sub.done():
                continue
            sub_latency = time.perf_counter() - sub.submitted_at
            self._h_latency.labels(algorithm=sub.request.algorithm).observe(
                sub_latency
            )
            self._log.info(
                "request_completed",
                trace_id=sub.trace_id,
                request_id=sub.request.id,
                algorithm=sub.request.algorithm,
                cached=cached,
                coalesced=True,
                trials_run=0,
                latency_s=round(sub_latency, 6),
            )
            sub_result = EstimateResult(
                request=sub.request,
                estimate=estimate,
                graph_hash=sub.graph_hash,
                mode=sub.mode,
                cached=cached,
                coalesced=True,
                trials_run=0,
                latency_s=sub_latency,
            )
            sub._complete(sub_result)
            self._record(sub, sub_result)

    def _record(self, ticket: Ticket, result: EstimateResult) -> None:
        self.records.append(
            RequestRecord(
                request_id=ticket.request.id or "",
                algorithm=ticket.request.algorithm,
                graph_hash=ticket.graph_hash,
                trials=(
                    ticket.request.trials
                    if ticket.request.trials is not None
                    else ticket.target
                ),
                trials_run=result.trials_run,
                mode=result.mode,
                cached=result.cached,
                coalesced=result.coalesced,
                latency_s=result.latency_s,
                realized_trials=result.realized_trials,
                stopped_early=result.stopped_early,
            )
        )

    def _abort(self, ticket: Ticket, exc: BaseException) -> None:
        self._log.error(
            "request_failed",
            trace_id=ticket.trace_id,
            request_id=ticket.request.id,
            algorithm=ticket.request.algorithm,
            error=f"{type(exc).__name__}: {exc}",
        )
        with self._lock:
            if ticket.key is not None and self._inflight.get(ticket.key) is ticket:
                self._inflight.pop(ticket.key, None)
            self._dynamic.discard(ticket)
            subs = list(ticket.subscribers)
        if not ticket.done():
            ticket._fail(exc)
        for sub in subs:
            if not sub.done():
                sub._fail(exc)

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def worker_processes(self) -> list:
        """Live worker ``Process`` objects across all resident pools.

        Empty when every pool is inline (workers == 1).  Diagnostics and
        the shutdown tests use this to assert no process outlives
        :meth:`shutdown`.
        """
        with self._lock:
            pools = list(self._pools.values())
        procs = []
        for pool in pools:
            procs.extend(pool.processes)
        return procs

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop the scheduler and its worker pools.

        With ``wait=True`` (graceful) queued requests finish first; with
        ``wait=False`` pending work is cancelled and worker processes are
        terminated immediately.  Idempotent.
        """
        if self._closed and not self._thread.is_alive():
            return
        self._closed = True
        self._log.info("scheduler_shutdown", graceful=wait)
        if not wait:
            self._hard_stop = True
            with self._lock:
                pending = list(self._inflight.values())
                streams = list(self._streams.values())
                dynamic = list(self._dynamic)
            for ticket in pending:
                ticket.cancel()
            for stream in streams:
                for sub in stream.subscribers:
                    sub.cancel()
            for ticket in dynamic:
                ticket.cancel()
        else:
            # Precision tickets requeue themselves between rounds, so the
            # dispatcher must keep draining until they settle; only then
            # may the stop sentinel go in.
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            while True:
                with self._lock:
                    open_dynamic = [
                        t for t in self._dynamic if not t.done()
                    ]
                if not open_dynamic or not self._thread.is_alive():
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                open_dynamic[0]._event.wait(0.05)
        self._queue.put(None)
        self._thread.join(timeout)
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
            self._pool_busy.clear()
        for pool in pools:
            pool.close(wait=wait)
        if not wait:
            with self._lock:
                pending = list(self._inflight.values())
                self._inflight.clear()
                streams = list(self._streams.values())
                self._streams.clear()
                dynamic = list(self._dynamic)
                self._dynamic.clear()
            exc = EstimateCancelled("service shut down")
            for ticket in pending:
                if not ticket.done():
                    ticket._fail(exc)
            for stream in streams:
                for sub in stream.subscribers:
                    if not sub.done():
                        sub._fail(exc)
            for ticket in dynamic:
                if not ticket.done():
                    ticket._fail(exc)
