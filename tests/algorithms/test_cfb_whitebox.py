"""White-box tests for the embedded CFBCall state machine.

These drive a CFBCall round by round with hand-crafted inboxes, pinning
the exact election/BFS timing that the staged algorithms rely on.
"""

import numpy as np
import pytest

from repro.algorithms.cntrl_fair_bipart import CFBCall, cfb_duration
from repro.runtime import Message, NodeContext


def make_ctx(node_id: int, neighbors: list[int], n: int = 10, seed: int = 0):
    return NodeContext(node_id, neighbors, n, np.random.default_rng(seed))


def drain(ctx: NodeContext) -> list[tuple[int, dict]]:
    return ctx._drain_outbox()


class TestElectionTiming:
    def test_round0_broadcasts_own_id(self):
        ctx = make_ctx(3, [2, 4])
        call = CFBCall(d_hat=2, participating=True, peers=[2, 4])
        call.step(ctx, 0, [])
        out = drain(ctx)
        assert len(out) == 2
        assert all(p["type"] == "cfb_max" and p["id"] == 3 for _, p in out)

    def test_max_propagates(self):
        ctx = make_ctx(3, [2, 4])
        call = CFBCall(d_hat=2, participating=True, peers=[2, 4])
        call.step(ctx, 0, [])
        drain(ctx)
        call.step(ctx, 1, [Message(4, {"type": "cfb_max", "id": 9})])
        out = drain(ctx)
        assert all(p["id"] == 9 for _, p in out)

    def test_election_decided_at_round_dhat(self):
        ctx = make_ctx(5, [1])
        call = CFBCall(d_hat=2, participating=True, peers=[1])
        call.step(ctx, 0, [])
        drain(ctx)
        call.step(ctx, 1, [Message(1, {"type": "cfb_max", "id": 7})])
        drain(ctx)
        call.step(ctx, 2, [])
        assert call.leader == 7

    def test_self_election_starts_bfs(self):
        ctx = make_ctx(9, [1])
        call = CFBCall(d_hat=1, participating=True, peers=[1])
        call.step(ctx, 0, [])
        drain(ctx)
        call.step(ctx, 1, [Message(1, {"type": "cfb_max", "id": 1})])
        out = drain(ctx)
        assert call.leader == 9
        assert call.level == 0
        bfs = [p for _, p in out if p["type"] == "cfb_bfs"]
        assert len(bfs) == 1 and bfs[0]["level"] == 1 and bfs[0]["leader"] == 9


class TestBfsAcceptance:
    def _elected(self, d_hat=2):
        """A node that elected leader 9 (not itself)."""
        ctx = make_ctx(4, [5])
        call = CFBCall(d_hat=d_hat, participating=True, peers=[5])
        call.step(ctx, 0, [])
        drain(ctx)
        call.step(ctx, 1, [Message(5, {"type": "cfb_max", "id": 9})])
        drain(ctx)
        call.step(ctx, 2, [])  # election decided: leader 9
        drain(ctx)
        return ctx, call

    def test_accepts_own_leader_bfs(self):
        ctx, call = self._elected()
        call.step(
            ctx, 3, [Message(5, {"type": "cfb_bfs", "leader": 9, "level": 1, "bit": 0})]
        )
        assert call.level == 1
        # level 1 + bit 0 is odd → does not join
        assert not call.joined

    def test_join_parity_rule(self):
        ctx, call = self._elected()
        call.step(
            ctx, 3, [Message(5, {"type": "cfb_bfs", "leader": 9, "level": 1, "bit": 1})]
        )
        assert call.joined  # 1 + 1 ≡ 0 (mod 2)

    def test_rejects_foreign_leader_bfs(self):
        ctx, call = self._elected()
        call.step(
            ctx, 3, [Message(5, {"type": "cfb_bfs", "leader": 7, "level": 1, "bit": 0})]
        )
        assert call.level is None
        assert not call.joined

    def test_nonparticipant_inert(self):
        ctx = make_ctx(4, [5])
        call = CFBCall(d_hat=2, participating=False, peers=[5])
        for r in range(cfb_duration(2)):
            call.step(ctx, r, [])
            assert drain(ctx) == []
        assert not call.joined


class TestIsolatedLeader:
    def test_isolated_always_joins(self):
        for seed in range(6):
            ctx = make_ctx(2, [], seed=seed)
            call = CFBCall(d_hat=1, participating=True, peers=[])
            for r in range(cfb_duration(1)):
                call.step(ctx, r, [])
            assert call.joined
