"""Tests for CNTRLFAIRBIPART (Lemma 7)."""

import numpy as np
import pytest

from repro.algorithms.cntrl_fair_bipart import CntrlFairBipart, cfb_duration
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import path_graph, random_tree, singleton, star_graph


class TestDuration:
    def test_formula(self):
        assert cfb_duration(1) == 3
        assert cfb_duration(5) == 11

    def test_invalid(self):
        with pytest.raises(ValueError):
            cfb_duration(0)


class TestCorrectness:
    """Lemma 7(a): with D̂ >= D(T), the output is a correct MIS."""

    def test_path(self, rng):
        alg = CntrlFairBipart()
        g = path_graph(9)
        for _ in range(10):
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_random_trees(self, rng):
        alg = CntrlFairBipart()
        for seed in range(4):
            g = random_tree(20, seed=seed).graph
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_star(self, rng):
        alg = CntrlFairBipart()
        g = star_graph(8)
        res = alg.run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_singleton_always_joins(self, rng):
        alg = CntrlFairBipart()
        res = alg.run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_explicit_d_hat(self, rng):
        alg = CntrlFairBipart(d_hat=10)
        g = path_graph(8)  # diameter 7 < 10
        res = alg.run(g, rng)
        assert is_maximal_independent_set(g, res.membership)


class TestStructure:
    def test_output_alternates_on_path(self, rng):
        """On a path the MIS from parity BFS is one of the 2 parity classes
        of the leader — a perfectly alternating pattern."""
        alg = CntrlFairBipart()
        g = path_graph(6)
        m = alg.run(g, rng).membership
        assert m.tolist() in (
            [True, False, True, False, True, False],
            [False, True, False, True, False, True],
        )

    def test_star_outcomes(self, rng):
        """On a star, the MIS is either {center} or all leaves."""
        alg = CntrlFairBipart()
        g = star_graph(6)
        for _ in range(10):
            m = alg.run(g, rng).membership
            assert (m[0] and m.sum() == 1) or ((not m[0]) and m[1:].all())


class TestFairness:
    """Lemma 7(b): every node joins with probability exactly 1/2."""

    def test_path_half(self, rng, thorough):
        trials = 3000 if thorough else 600
        alg = CntrlFairBipart()
        g = path_graph(5)
        counts = np.zeros(5)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        assert np.all(np.abs(freqs - 0.5) < 0.08)

    def test_tree_half(self, rng):
        alg = CntrlFairBipart()
        g = random_tree(12, seed=3).graph
        trials = 500
        counts = np.zeros(12)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        assert np.all(np.abs(freqs - 0.5) < 0.1)


class TestUnderestimatedDiameter:
    """With D̂ < D the routine must still terminate on schedule; the
    result may be incomplete (hosts fix it), but no crash or overrun."""

    def test_terminates_with_small_d_hat(self, rng):
        alg = CntrlFairBipart(d_hat=1, validate=False)
        g = path_graph(12)
        res = alg.run(g, rng)
        assert res.rounds <= cfb_duration(1) + 1

    def test_partial_output_is_independent(self, rng):
        from repro.analysis import is_independent_set

        alg = CntrlFairBipart(d_hat=2, validate=False)
        g = path_graph(16)
        for _ in range(10):
            res = alg.run(g, rng)
            # joins can conflict only across distinct leader regions; on a
            # path with D̂ too small independence can break between regions
            # — but each leader's own region stays alternating.  We check
            # the weaker invariant the hosts rely on: termination + binary
            # outputs (already enforced) and that *some* structure exists.
            assert res.membership.dtype == bool
