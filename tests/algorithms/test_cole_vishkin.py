"""Tests for the Cole–Vishkin subroutine and standalone MIS."""

import numpy as np
import pytest

from repro.algorithms.cole_vishkin import (
    CVEngine,
    ColeVishkinMIS,
    cv_duration,
    cv_reduction_iterations,
)
from repro.analysis import is_maximal_independent_set
from repro.graphs import RootedTree, StaticGraph
from repro.graphs.generators import complete_tree, path_graph, random_tree


class TestReductionMath:
    def test_small_colors_need_one_sweep(self):
        assert cv_reduction_iterations(5) == 0

    def test_log_star_growth(self):
        # doubling the bit-length adds at most one iteration
        assert cv_reduction_iterations(2**16) <= cv_reduction_iterations(2**32)
        assert cv_reduction_iterations(2**32) <= 6

    def test_monotone(self):
        vals = [cv_reduction_iterations(m) for m in (7, 63, 1023, 2**20)]
        assert vals == sorted(vals)

    def test_reduce_step_preserves_distinctness(self):
        # exhaustive check over small color pairs
        for a in range(1, 64):
            for b in range(64):
                if a == b:
                    continue
                ra = CVEngine._reduce(a, b)
                rb = CVEngine._reduce(b, a)
                assert ra != rb, (a, b)

    def test_reduce_lands_in_range(self):
        for a in range(64):
            for b in range(64):
                if a != b:
                    assert 0 <= CVEngine._reduce(a, b) <= 11

    def test_duration_includes_sweep(self):
        assert cv_duration(5) == 1 + 12  # 0 reduction iters + 1 + 12


class TestColeVishkinMIS:
    def test_deterministic(self, rng):
        g = random_tree(30, seed=2).graph
        alg = ColeVishkinMIS()
        a = alg.run(g, np.random.default_rng(0)).membership
        b = alg.run(g, np.random.default_rng(99)).membership
        # deterministic: identical regardless of the seed
        assert np.array_equal(a, b)

    def test_correct_on_trees(self, rng):
        alg = ColeVishkinMIS()
        for seed in range(4):
            g = random_tree(40, seed=seed).graph
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_correct_on_forest(self, rng):
        g = StaticGraph.from_edges(7, [(0, 1), (1, 2), (4, 5)])
        res = ColeVishkinMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_correct_on_deep_path(self, rng):
        g = path_graph(100)
        res = ColeVishkinMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_explicit_rooting(self, rng):
        tree = complete_tree(2, 4)
        alg = ColeVishkinMIS(tree=tree)
        res = alg.run(tree.graph, rng)
        assert is_maximal_independent_set(tree.graph, res.membership)

    def test_mismatched_rooting_rejected(self, rng):
        tree = complete_tree(2, 3)
        alg = ColeVishkinMIS(tree=tree)
        with pytest.raises(ValueError):
            alg.run(path_graph(5), rng)

    def test_rounds_are_log_star_scale(self, rng):
        """O(log* n): rounds grow extremely slowly with n."""
        small = ColeVishkinMIS().run(path_graph(8), rng).rounds
        large = ColeVishkinMIS().run(path_graph(400), rng).rounds
        assert large <= small + 4
