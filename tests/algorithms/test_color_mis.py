"""Tests for COLORMIS (Theorem 17 / Corollary 18)."""

import numpy as np
import pytest

from repro.algorithms.color_mis import ColorMIS
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    singleton,
    star_graph,
    triangulated_grid,
)


class TestCorrectness:
    def test_valid_on_planar(self, rng):
        g = triangulated_grid(3, 3)
        res = ColorMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_trees(self, rng):
        g = random_tree(12, seed=1).graph
        res = ColorMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_with_arboricity_coloring(self, rng):
        g = triangulated_grid(3, 3)
        res = ColorMIS(coloring="arboricity").run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_odd_cycle(self, rng):
        g = cycle_graph(7)
        res = ColorMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_singleton(self, rng):
        res = ColorMIS().run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_unknown_coloring_rejected(self):
        with pytest.raises(ValueError):
            ColorMIS(coloring="rainbow")


class TestInfo:
    def test_k_reported(self, rng):
        g = star_graph(6)
        res = ColorMIS().run(g, rng)
        assert res.info["k"] == g.max_degree + 1

    def test_k_override(self, rng):
        g = path_graph(5)
        res = ColorMIS(k=7).run(g, rng)
        assert res.info["k"] == 7

    def test_names(self):
        assert ColorMIS().name == "color_mis"
        assert ColorMIS(coloring="arboricity").name == "color_mis_arb"


class TestFairnessDirection:
    def test_every_node_joins_sometimes(self, rng, thorough):
        """Theorem 17: Ω(1/k) join probability — with k ≤ 4 on a path and
        modest trials every node must join at least once."""
        trials = 200 if thorough else 80
        g = path_graph(6)
        alg = ColorMIS()
        counts = np.zeros(6)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        assert counts.min() > 0
