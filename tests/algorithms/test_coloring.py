"""Tests for the distributed coloring subroutines."""

import numpy as np
import pytest

from repro.algorithms.coloring import (
    DistributedColoring,
    greedy_budget_iterations,
    hpartition_classes,
    run_coloring,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
    triangulated_grid,
)


def assert_proper(graph, colors):
    es, ed = graph.edge_src, graph.edge_dst
    both = (colors[es] >= 0) & (colors[ed] >= 0)
    assert not np.any((colors[es] == colors[ed]) & both)


class TestGreedyColoring:
    def test_proper_on_trees(self):
        g = random_tree(40, seed=1).graph
        colors = run_coloring(g, kind="greedy", seed=0)
        assert_proper(g, colors)
        assert np.all(colors >= 0)

    def test_proper_on_clique(self):
        g = complete_graph(6)
        colors = run_coloring(g, kind="greedy", seed=0)
        assert_proper(g, colors)
        assert len(set(colors.tolist())) == 6

    def test_palette_bound_delta_plus_one(self):
        g = star_graph(8)
        colors = run_coloring(g, kind="greedy", seed=0)
        assert colors.max() <= g.max_degree

    def test_deterministic_given_seed(self):
        g = grid_graph(4, 4)
        a = run_coloring(g, kind="greedy", seed=5)
        b = run_coloring(g, kind="greedy", seed=5)
        assert np.array_equal(a, b)

    def test_odd_cycle(self):
        g = cycle_graph(7)
        colors = run_coloring(g, kind="greedy", seed=1)
        assert_proper(g, colors)


class TestArboricityColoring:
    def test_proper_on_planar(self):
        g = triangulated_grid(5, 5)
        colors = run_coloring(g, kind="arboricity", seed=0)
        assert_proper(g, colors)

    def test_constant_palette_on_planar(self):
        """Corollary 18's input: palette must not grow with Δ but with
        arboricity — ≤ floor(2.5·a(G)) + 1 colors."""
        g = triangulated_grid(6, 6)
        colors = run_coloring(g, kind="arboricity", seed=0)
        assert colors.max() <= int(2.5 * 3)  # a(G) <= 3 for planar

    def test_tree_small_palette(self):
        g = random_tree(40, seed=3).graph
        colors = run_coloring(g, kind="arboricity", seed=0)
        assert_proper(g, colors)
        assert colors.max() <= 2  # a=1 → cap 2 → palette {0,1,2}

    def test_path(self):
        g = path_graph(20)
        colors = run_coloring(g, kind="arboricity", seed=0)
        assert_proper(g, colors)


class TestBudgets:
    def test_greedy_budget_logarithmic(self):
        assert greedy_budget_iterations(16) < greedy_budget_iterations(2**16)

    def test_hpartition_classes_logarithmic(self):
        assert hpartition_classes(16) < hpartition_classes(2**16)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DistributedColoring(kind="rainbow")
