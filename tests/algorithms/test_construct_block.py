"""Tests for the Linial–Saks Construct_Block routine."""

import numpy as np
import pytest

from repro.algorithms.construct_block import (
    block_duration,
    draw_radius,
    entries_per_message,
    superround_length,
)


class TestRadiusDistribution:
    def test_support(self):
        rng = np.random.default_rng(0)
        draws = [draw_radius(rng, gamma=4) for _ in range(500)]
        assert min(draws) >= 0 and max(draws) <= 4

    def test_geometric_shape(self):
        """Pr[r=0] = 1-p = 1/2; Pr[r>=1] = 1/2."""
        rng = np.random.default_rng(1)
        draws = np.array([draw_radius(rng, gamma=8) for _ in range(4000)])
        assert abs(np.mean(draws == 0) - 0.5) < 0.04
        assert abs(np.mean(draws >= 1) - 0.5) < 0.04

    def test_tail_mass_at_gamma(self):
        """Pr[r=γ] = p^γ — with small γ, measurable."""
        rng = np.random.default_rng(2)
        draws = np.array([draw_radius(rng, gamma=2) for _ in range(4000)])
        assert abs(np.mean(draws == 2) - 0.25) < 0.04

    def test_invalid_gamma(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            draw_radius(rng, gamma=0)


class TestChunking:
    def test_entries_per_message(self):
        assert entries_per_message(8) == 2  # (8-1)//3
        assert entries_per_message(4) == 1
        assert entries_per_message(100) == 33

    def test_minimum_one_entry(self):
        assert entries_per_message(2) == 1

    def test_superround_length(self):
        # γ+1 = 9 entries, 2 per message → 5 rounds
        assert superround_length(8, 8) == 5

    def test_block_duration_quadratic_in_gamma(self):
        """Under the O(log n)-bit model the call is γ·SR + 1 rounds; SR
        grows linearly with γ so duration is Θ(γ²) — this is the Lemma 15
        O(log² n) structure."""
        d1 = block_duration(4, 8)
        d2 = block_duration(8, 8)
        assert d2 > 2 * d1  # super-linear growth

    def test_unbounded_slots_linear(self):
        # with huge slot budgets a superround is one round: γ+1 rounds total
        assert block_duration(10, 10_000) == 11
