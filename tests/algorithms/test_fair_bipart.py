"""Tests for FAIRBIPART (Theorem 13)."""

import numpy as np
import pytest

from repro.algorithms.fair_bipart import FairBipart, default_block_gamma
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite,
    random_tree,
    singleton,
)


class TestGamma:
    def test_paper_default(self):
        # γ = 2·lg n
        assert default_block_gamma(16) == 8

    def test_scales(self):
        assert default_block_gamma(1024, c=4.0) == 2 * default_block_gamma(1024)

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_block_gamma(0)


class TestCorrectness:
    def test_valid_on_paths(self, rng):
        alg = FairBipart()
        g = path_graph(8)
        for _ in range(3):
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_grid(self, rng):
        g = grid_graph(3, 4)
        res = FairBipart().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_complete_bipartite(self, rng):
        g = complete_bipartite(3, 4)
        res = FairBipart().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)
        # in K_{a,b} the MIS is exactly one side
        m = res.membership
        assert m[:3].all() != m[3:].all()

    def test_valid_on_random_bipartite(self, rng):
        g = random_bipartite(6, 6, 0.3, seed=1)
        res = FairBipart().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_trees(self, rng):
        g = random_tree(15, seed=2).graph
        res = FairBipart().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_singleton(self, rng):
        res = FairBipart().run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_total_on_odd_cycles(self, rng):
        """Guarantees need bipartiteness, but the fix stage makes the
        implementation produce a correct MIS on any graph."""
        g = cycle_graph(7)
        for _ in range(3):
            res = FairBipart().run(g, rng)
            assert is_maximal_independent_set(g, res.membership)


class TestFairness:
    """Lemma 16: every node joins with probability >= 1/8."""

    def test_min_join_probability(self, rng, thorough):
        trials = 600 if thorough else 150
        g = grid_graph(3, 3)
        alg = FairBipart()
        counts = np.zeros(9)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        slack = 3 * np.sqrt(0.125 * 0.875 / trials)
        assert freqs.min() >= 0.125 - slack


class TestComplexity:
    def test_rounds_quadratic_structure(self, rng):
        g = path_graph(6)
        r1 = FairBipart(gamma=3).run(g, rng).rounds
        r2 = FairBipart(gamma=6).run(g, rng).rounds
        assert r2 > r1

    def test_message_slot_budget_respected(self, rng):
        """The leader tables must be chunked to the O(log n)-bit budget;
        the network enforces it, so a clean run proves compliance."""
        res = FairBipart().run(grid_graph(3, 3), rng)
        assert res.metrics is not None
        assert res.metrics.max_slots_per_message <= 8
