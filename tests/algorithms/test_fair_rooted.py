"""Tests for FAIRROOTED (Theorem 3)."""

import numpy as np
import pytest

from repro.algorithms.fair_rooted import FairRooted
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import (
    complete_tree,
    path_graph,
    random_tree,
    singleton,
    star_graph,
)


class TestCorrectness:
    def test_valid_on_random_trees(self, rng):
        alg = FairRooted()
        for seed in range(4):
            g = random_tree(30, seed=seed).graph
            for _ in range(3):
                res = alg.run(g, rng)
                assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_complete_trees(self, rng):
        alg = FairRooted()
        t = complete_tree(3, 3)
        res = alg.run(t.graph, rng)
        assert is_maximal_independent_set(t.graph, res.membership)

    def test_singleton(self, rng):
        res = FairRooted().run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_explicit_tree(self, rng):
        t = complete_tree(2, 4)
        res = FairRooted(tree=t).run(t.graph, rng)
        assert is_maximal_independent_set(t.graph, res.membership)

    def test_mismatched_tree_rejected(self, rng):
        t = complete_tree(2, 3)
        with pytest.raises(ValueError):
            FairRooted(tree=t).run(path_graph(4), rng)


class TestFairness:
    """Theorem 3: every node joins w.p. >= 1/4, inequality <= 4."""

    def test_min_join_probability(self, rng, thorough):
        trials = 2000 if thorough else 400
        g = random_tree(15, seed=9).graph
        alg = FairRooted()
        counts = np.zeros(15)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        # allow 3-sigma sampling slack below the 1/4 bound
        slack = 3 * np.sqrt(0.25 * 0.75 / trials)
        assert freqs.min() >= 0.25 - slack

    def test_inequality_below_bound(self, rng, thorough):
        trials = 2000 if thorough else 500
        g = star_graph(10)
        alg = FairRooted()
        counts = np.zeros(10)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        assert freqs.max() / freqs.min() <= 4.5

    def test_stage1_membership_probability_quarter(self, rng):
        """A node is in I after stage 1 iff (tag=0, parent tag=1): p=1/4.
        Measured indirectly: on a path, join probability must be strictly
        between 1/4 and 3/4 for interior nodes."""
        trials = 600
        g = path_graph(6)
        alg = FairRooted()
        counts = np.zeros(6)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        assert np.all(freqs > 0.2) and np.all(freqs < 0.85)


class TestComplexity:
    def test_rounds_log_star(self, rng):
        alg = FairRooted()
        r_small = alg.run(random_tree(16, seed=0).graph, rng).rounds
        r_big = alg.run(random_tree(256, seed=0).graph, rng).rounds
        assert r_big <= r_small + 4  # log* grows by <= 1 over this range
