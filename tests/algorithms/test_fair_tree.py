"""Tests for FAIRTREE (Theorem 8)."""

import numpy as np
import pytest

from repro.algorithms.fair_tree import FairTree, default_gamma
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import (
    caterpillar,
    cycle_graph,
    path_graph,
    random_tree,
    singleton,
    star_graph,
)


class TestGamma:
    def test_default_scales_with_log(self):
        assert default_gamma(2) < default_gamma(1024)

    def test_constant_scales(self):
        assert default_gamma(256, c=1.0) < default_gamma(256, c=4.0)

    def test_minimum_one(self):
        assert default_gamma(1) >= 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            default_gamma(0)


class TestCorrectness:
    def test_valid_on_random_trees(self, rng):
        alg = FairTree()
        for seed in range(3):
            g = random_tree(20, seed=seed).graph
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_path(self, rng):
        alg = FairTree()
        g = path_graph(12)
        for _ in range(4):
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_star(self, rng):
        g = star_graph(9)
        res = FairTree().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_valid_on_caterpillar(self, rng):
        g = caterpillar(4, 3).graph
        res = FairTree().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_singleton(self, rng):
        res = FairTree().run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_correct_even_on_cycles(self, rng):
        """FAIRTREE's guarantees need a tree, but its fix+fallback stages
        make the output a correct MIS on any graph."""
        g = cycle_graph(9)
        for _ in range(5):
            res = FairTree().run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_tiny_gamma_still_correct(self, rng):
        """With γ=1 the CFB calls fail constantly; the Luby fallback must
        preserve correctness."""
        alg = FairTree(gamma=1)
        g = random_tree(15, seed=4).graph
        for _ in range(5):
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)


class TestFairness:
    """Theorem 8: join probability >= (1-eps)/4 for every node."""

    def test_min_join_probability_path(self, rng, thorough):
        trials = 1500 if thorough else 300
        g = path_graph(8)
        alg = FairTree()
        counts = np.zeros(8)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        slack = 3 * np.sqrt(0.25 * 0.75 / trials)
        assert freqs.min() >= 0.25 - slack

    def test_star_is_fair(self, rng, thorough):
        trials = 1000 if thorough else 300
        g = star_graph(10)
        alg = FairTree()
        counts = np.zeros(10)
        for _ in range(trials):
            counts += alg.run(g, rng).membership
        freqs = counts / trials
        assert freqs.max() / freqs.min() <= 4.5


class TestInternals:
    def test_gamma_override_respected(self, rng):
        alg = FairTree(gamma=5)
        g = path_graph(6)
        res = alg.run(g, rng)
        # stage budget: 3 CFB calls of 2γ+1=11 rounds plus syncs
        assert res.rounds >= 3 * 11

    def test_rounds_scale_with_gamma(self, rng):
        g = path_graph(6)
        r_small = FairTree(gamma=3).run(g, rng).rounds
        r_large = FairTree(gamma=9).run(g, rng).rounds
        assert r_large > r_small
