"""Tests for the faithful Luby implementations (both variants)."""

import numpy as np
import pytest

from repro.algorithms.luby import LubyMIS
from repro.analysis import is_maximal_independent_set
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)

VARIANTS = ["priority", "degree"]


@pytest.mark.parametrize("variant", VARIANTS)
class TestCorrectness:
    def test_always_valid_on_trees(self, variant, rng):
        alg = LubyMIS(variant=variant)
        for seed in range(3):
            g = random_tree(25, seed=seed).graph
            for _ in range(5):
                res = alg.run(g, rng)
                assert is_maximal_independent_set(g, res.membership)

    def test_clique_yields_single_node(self, variant, rng):
        alg = LubyMIS(variant=variant)
        res = alg.run(complete_graph(7), rng)
        assert res.size == 1

    def test_isolated_nodes_always_join(self, variant, rng):
        alg = LubyMIS(variant=variant)
        res = alg.run(empty_graph(5), rng)
        assert res.size == 5

    def test_cycle(self, variant, rng):
        alg = LubyMIS(variant=variant)
        for _ in range(5):
            res = alg.run(cycle_graph(9), rng)
            assert is_maximal_independent_set(cycle_graph(9), res.membership)

    def test_grid(self, variant, rng):
        alg = LubyMIS(variant=variant)
        g = grid_graph(4, 4)
        res = alg.run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_singleton(self, variant, rng):
        alg = LubyMIS(variant=variant)
        res = alg.run(empty_graph(1), rng)
        assert res.membership.tolist() == [True]


class TestStarUnfairness:
    """Section I: Luby is Θ(n)-unfair on the star."""

    def test_center_joins_rarely(self, rng):
        alg = LubyMIS()
        n, trials = 12, 400
        center = sum(
            alg.run(star_graph(n), rng).membership[0] for _ in range(trials)
        )
        freq = center / trials
        # exact probability is 1/12 ≈ 0.083
        assert freq < 0.2

    def test_leaves_join_often(self, rng):
        alg = LubyMIS()
        n, trials = 12, 300
        leaf = sum(
            alg.run(star_graph(n), rng).membership[1] for _ in range(trials)
        )
        assert leaf / trials > 0.75

    def test_star_mis_is_center_or_all_leaves(self, rng):
        alg = LubyMIS()
        g = star_graph(8)
        for _ in range(20):
            m = alg.run(g, rng).membership
            if m[0]:
                assert m.sum() == 1
            else:
                assert m[1:].all()


class TestConfig:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            LubyMIS(variant="bogus")

    def test_names(self):
        assert LubyMIS().name == "luby"
        assert LubyMIS("degree").name == "luby_degree"

    def test_rounds_logarithmic(self, rng):
        alg = LubyMIS()
        g = random_tree(64, seed=0).graph
        rounds = [alg.run(g, rng).rounds for _ in range(5)]
        # O(log n) w.h.p.: generous absolute cap for n=64
        assert max(rounds) < 80

    def test_metrics_attached(self, rng):
        res = LubyMIS().run(path_graph(6), rng)
        assert res.metrics is not None
        assert res.metrics.total_messages > 0
