"""Tests for the random-ID wrapper (the §II deterministic-fairness remark)."""

import numpy as np
import pytest

from repro.algorithms.random_ids import RandomizedIDs
from repro.analysis import is_maximal_independent_set, run_trials
from repro.fast.fair_rooted import FastColeVishkin
from repro.fast.luby import FastLuby
from repro.graphs.generators import path_graph, random_tree, star_graph


class TestWrapperMechanics:
    def test_output_valid_on_original_graph(self, rng):
        g = random_tree(25, seed=1).graph
        alg = RandomizedIDs(FastColeVishkin())
        for _ in range(10):
            res = alg.run(g, rng)
            assert is_maximal_independent_set(g, res.membership)

    def test_name_composed(self):
        assert (
            RandomizedIDs(FastColeVishkin()).name
            == "cole_vishkin_fast+random_ids"
        )

    def test_randomizes_deterministic_inner(self, rng):
        """The inner CV is deterministic; the wrapper must produce
        different outputs across runs."""
        g = random_tree(20, seed=2).graph
        alg = RandomizedIDs(FastColeVishkin())
        outputs = {
            alg.run(g, rng).membership.tobytes() for _ in range(20)
        }
        assert len(outputs) > 1

    def test_registry_entry(self):
        from repro.core import make

        alg = make("cole_vishkin_random_ids")
        assert "random_ids" in alg.name

    def test_info_tagged(self, rng):
        res = RandomizedIDs(FastLuby()).run(path_graph(5), rng)
        assert res.info["wrapper"] == "random_ids"

    def test_edgeless_graph(self, rng):
        from repro.graphs.generators import empty_graph

        res = RandomizedIDs(FastColeVishkin()).run(empty_graph(4), rng)
        assert res.membership.all()


class TestSectionIIFairness:
    """§II: with random IDs, deterministic-algorithm fairness is
    'once again non-trivial' — neither infinite nor constant."""

    def test_finite_inequality_on_trees(self):
        g = random_tree(40, seed=3).graph
        est = run_trials(RandomizedIDs(FastColeVishkin()), g, 1500, seed=0)
        assert est.inequality < float("inf")
        assert est.min_probability > 0.05

    def test_star_still_unfair(self):
        """Random IDs do not rescue CV on the star: the center's position
        dominates regardless of its label."""
        g = star_graph(12)
        est = run_trials(RandomizedIDs(FastColeVishkin()), g, 1500, seed=0)
        assert est.inequality > 3.0

    def test_symmetric_path_nearly_fair(self):
        """On a short path, random IDs symmetrize mirror positions."""
        g = path_graph(5)
        est = run_trials(RandomizedIDs(FastColeVishkin()), g, 3000, seed=0)
        p = est.probabilities
        assert abs(p[0] - p[4]) < 0.05
        assert abs(p[1] - p[3]) < 0.05
