"""Tests for the ASCII rendering helpers."""

import numpy as np
import pytest

from repro.analysis.ascii import render_cdf, render_histogram, render_series
from repro.analysis.cdf import empirical_cdf


class TestRenderSeries:
    def test_contains_legend_and_axes(self):
        x = np.linspace(0, 1, 20)
        out = render_series({"lin": (x, x)}, width=30, height=8)
        assert "lin" in out
        assert "1.0" in out and "0.0" in out

    def test_multiple_curves_distinct_glyphs(self):
        x = np.linspace(0, 1, 20)
        out = render_series({"a": (x, x), "b": (x, x**2)}, width=30, height=8)
        assert "* a" in out and "o b" in out

    def test_dimensions(self):
        x = np.linspace(0, 1, 10)
        out = render_series({"c": (x, x)}, width=40, height=10)
        lines = out.split("\n")
        assert len(lines) == 10 + 3  # grid + axis + labels + legend

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})


class TestRenderCdf:
    def test_runs_on_real_cdf(self):
        values = np.random.default_rng(0).random(100)
        out = render_cdf({"luby": empirical_cdf(values)})
        assert "join frequency" in out


class TestRenderHistogram:
    def test_fixed_width(self):
        values = np.random.default_rng(0).random(500)
        out = render_histogram(values, bins=32)
        assert out.startswith("0.0 |") and out.endswith("| 1.0")
        assert len(out) == len("0.0 |") + 32 + len("| 1.0")

    def test_point_mass_renders_peak(self):
        out = render_histogram(np.full(100, 0.5), bins=10)
        assert "█" in out

    def test_empty_bins_blank(self):
        out = render_histogram(np.full(100, 0.95), bins=10)
        assert out.count(" ") >= 8
