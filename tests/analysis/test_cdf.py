"""Unit tests for empirical CDFs and spread statistics."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_spread_stats, empirical_cdf


class TestEmpiricalCDF:
    def test_sorted_steps(self):
        cdf = empirical_cdf(np.array([0.3, 0.1, 0.2]))
        assert cdf.x.tolist() == [0.1, 0.2, 0.3]
        assert cdf.y.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_evaluate(self):
        cdf = empirical_cdf(np.array([0.1, 0.2, 0.3, 0.4]))
        assert cdf.evaluate(0.25) == pytest.approx(0.5)
        assert cdf.evaluate(0.0) == 0.0
        assert cdf.evaluate(1.0) == 1.0

    def test_quantile(self):
        cdf = empirical_cdf(np.array([0.1, 0.2, 0.3, 0.4]))
        assert cdf.quantile(0.5) == pytest.approx(0.2)
        assert cdf.quantile(1.0) == pytest.approx(0.4)

    def test_quantile_validated(self):
        cdf = empirical_cdf(np.array([0.5]))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))


class TestSpreadStats:
    def test_compact_distribution(self):
        stats = cdf_spread_stats(np.full(100, 0.5))
        assert stats["iqr"] == 0.0
        assert stats["range"] == 0.0
        assert stats["frac_below_0.25"] == 0.0

    def test_diffuse_distribution(self):
        v = np.concatenate([np.full(10, 0.05), np.full(90, 0.95)])
        stats = cdf_spread_stats(v)
        assert stats["frac_below_0.10"] == pytest.approx(0.1)
        assert stats["frac_above_0.90"] == pytest.approx(0.9)
        assert stats["range"] == pytest.approx(0.9)

    def test_keys_present(self):
        stats = cdf_spread_stats(np.array([0.2, 0.5, 0.8]))
        for key in ("min", "max", "median", "iqr", "range"):
            assert key in stats
