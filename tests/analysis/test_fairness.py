"""Unit tests for fairness estimation."""

import numpy as np
import pytest

from repro.analysis.fairness import (
    JoinEstimate,
    estimate_from_counts,
    inequality_factor,
    wilson_interval,
    z_for_confidence,
)


class TestInequalityFactor:
    def test_uniform_is_one(self):
        assert inequality_factor(np.array([0.5, 0.5, 0.5])) == 1.0

    def test_ratio(self):
        assert inequality_factor(np.array([0.2, 0.8])) == pytest.approx(4.0)

    def test_zero_gives_infinity(self):
        # Definition 1: division by zero evaluates to infinity
        assert inequality_factor(np.array([0.0, 0.5])) == float("inf")

    def test_all_zero_gives_infinity(self):
        assert inequality_factor(np.array([0.0, 0.0])) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            inequality_factor(np.array([]))


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(np.array([50]), 100)
        assert lo[0] < 0.5 < hi[0]

    def test_shrinks_with_trials(self):
        lo1, hi1 = wilson_interval(np.array([5]), 10)
        lo2, hi2 = wilson_interval(np.array([500]), 1000)
        assert (hi2 - lo2)[0] < (hi1 - lo1)[0]

    def test_extremes_clipped(self):
        lo, hi = wilson_interval(np.array([0, 100]), 100)
        assert lo[0] >= 0.0 and hi[1] <= 1.0

    def test_zero_successes_upper_positive(self):
        _, hi = wilson_interval(np.array([0]), 100)
        assert hi[0] > 0.0  # never rules out small probabilities

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(np.array([1]), 0)


class TestJoinEstimate:
    def test_probabilities(self):
        est = JoinEstimate(counts=np.array([25, 75]), trials=100)
        assert est.probabilities.tolist() == [0.25, 0.75]

    def test_inequality(self):
        est = JoinEstimate(counts=np.array([25, 75]), trials=100)
        assert est.inequality == pytest.approx(3.0)

    def test_min_max(self):
        est = JoinEstimate(counts=np.array([10, 40, 90]), trials=100)
        assert est.min_probability == pytest.approx(0.1)
        assert est.max_probability == pytest.approx(0.9)

    def test_bounds_bracket_plugin(self):
        est = JoinEstimate(counts=np.array([300, 600]), trials=1000)
        lower, upper = est.inequality_bounds()
        assert lower <= est.inequality <= upper

    def test_bounds_floor_one(self):
        est = JoinEstimate(counts=np.array([500, 500]), trials=1000)
        lower, _ = est.inequality_bounds()
        assert lower == 1.0

    def test_merge_pools(self):
        a = JoinEstimate(counts=np.array([5, 10]), trials=20)
        b = JoinEstimate(counts=np.array([15, 10]), trials=20)
        merged = a.merge(b)
        assert merged.trials == 40
        assert merged.counts.tolist() == [20, 20]

    def test_merge_shape_mismatch(self):
        a = JoinEstimate(counts=np.array([5]), trials=10)
        b = JoinEstimate(counts=np.array([5, 5]), trials=10)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            JoinEstimate(counts=np.array([11]), trials=10)
        with pytest.raises(ValueError):
            JoinEstimate(counts=np.array([-1]), trials=10)
        with pytest.raises(ValueError):
            JoinEstimate(counts=np.array([1]), trials=0)

    def test_estimate_from_counts(self):
        est = estimate_from_counts([1, 2, 3], trials=4)
        assert est.trials == 4


class TestConfidenceHelpers:
    def test_z_for_standard_levels(self):
        assert z_for_confidence(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_for_confidence(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_z_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                z_for_confidence(bad)

    def test_halfwidths_match_wilson(self):
        est = JoinEstimate(counts=np.array([30, 70]), trials=100)
        lo, hi = wilson_interval(est.counts, est.trials)
        assert est.halfwidths().tolist() == ((hi - lo) / 2.0).tolist()
        assert est.max_halfwidth() == pytest.approx(
            float(np.max((hi - lo) / 2.0))
        )

    def test_halfwidths_shrink_with_confidence(self):
        est = JoinEstimate(counts=np.array([50]), trials=100)
        narrow = est.max_halfwidth(z=z_for_confidence(0.80))
        wide = est.max_halfwidth(z=z_for_confidence(0.99))
        assert narrow < wide

    def test_inequality_halfwidth_bracket(self):
        est = JoinEstimate(counts=np.array([300, 600]), trials=1000)
        lower, upper = est.inequality_bounds()
        assert est.inequality_halfwidth() == pytest.approx(
            (upper - lower) / 2.0
        )

    def test_inequality_halfwidth_unbounded(self):
        # A node whose interval touches 0 makes the factor unbounded.
        est = JoinEstimate(counts=np.array([0, 100]), trials=100)
        lower, upper = est.inequality_bounds()
        if np.isinf(upper):
            assert np.isinf(est.inequality_halfwidth())
