"""Tests for the Monte-Carlo trial runner (serial and parallel)."""

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_join_probabilities, run_trials
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs.generators import path_graph, random_tree, star_graph


class TestSerial:
    def test_counts_bounded_by_trials(self):
        est = run_trials(FastLuby(), path_graph(6), trials=50, seed=0)
        assert est.trials == 50
        assert est.counts.max() <= 50

    def test_deterministic_given_seed(self):
        g = random_tree(30, seed=1).graph
        a = run_trials(FastLuby(), g, trials=40, seed=7)
        b = run_trials(FastLuby(), g, trials=40, seed=7)
        assert np.array_equal(a.counts, b.counts)

    def test_different_seeds_differ(self):
        g = random_tree(30, seed=1).graph
        a = run_trials(FastLuby(), g, trials=40, seed=7)
        b = run_trials(FastLuby(), g, trials=40, seed=8)
        assert not np.array_equal(a.counts, b.counts)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_trials(FastLuby(), path_graph(3), trials=0)

    def test_validate_runs_flag(self):
        # FastLuby always produces a valid MIS; flag must not raise
        run_trials(
            FastLuby(), star_graph(8), trials=10, seed=0, validate_runs=True
        )

    def test_probabilities_helper(self):
        probs = estimate_join_probabilities(
            FastLuby(), path_graph(5), trials=30, seed=0
        )
        assert probs.shape == (5,)
        assert np.all((0 <= probs) & (probs <= 1))


class TestParallel:
    def test_parallel_matches_serial_totals(self):
        """Parallel and serial runs use the same spawned seed sequences,
        so the pooled counts must be identical."""
        g = random_tree(25, seed=2).graph
        serial = run_trials(FastLuby(), g, trials=48, seed=3, n_jobs=1)
        parallel = run_trials(FastLuby(), g, trials=48, seed=3, n_jobs=2)
        assert np.array_equal(serial.counts, parallel.counts)

    def test_parallel_fair_tree(self):
        g = random_tree(25, seed=2).graph
        est = run_trials(FastFairTree(), g, trials=32, seed=0, n_jobs=2)
        assert est.trials == 32

    def test_auto_job_count(self):
        g = path_graph(8)
        est = run_trials(FastLuby(), g, trials=16, seed=0, n_jobs=0)
        assert est.trials == 16


class TestNormalizeJobs:
    def test_one_is_inline(self):
        from repro.analysis.montecarlo import normalize_jobs

        assert normalize_jobs(1) == 1

    def test_zero_and_negative_mean_all_cores(self):
        import os

        from repro.analysis.montecarlo import normalize_jobs

        cores = os.cpu_count() or 1
        assert normalize_jobs(0) == cores
        assert normalize_jobs(-1) == cores
        assert normalize_jobs(-7) == cores

    def test_positive_passthrough(self):
        from repro.analysis.montecarlo import normalize_jobs

        assert normalize_jobs(3) == 3

    def test_limit_caps_result(self):
        from repro.analysis.montecarlo import normalize_jobs

        assert normalize_jobs(8, limit=2) == 2
        assert normalize_jobs(0, limit=1) == 1


class TestTrialPool:
    def test_inline_pool_matches_run_trials(self):
        from repro.analysis.montecarlo import TrialPool

        g = random_tree(25, seed=2).graph
        serial = run_trials(FastLuby(), g, trials=48, seed=3)
        with TrialPool(FastLuby(), g, workers=1) as pool:
            est = pool.run(48, seed=3)
        assert np.array_equal(est.counts, serial.counts)

    def test_process_pool_matches_run_trials(self):
        from repro.analysis.montecarlo import TrialPool

        g = random_tree(25, seed=2).graph
        serial = run_trials(FastLuby(), g, trials=48, seed=3)
        with TrialPool(FastLuby(), g, workers=2) as pool:
            est = pool.run(48, seed=3)
            assert pool.processes  # real subprocesses exist while open
        assert np.array_equal(est.counts, serial.counts)

    def test_pool_reuse_across_runs(self):
        from repro.analysis.montecarlo import TrialPool

        g = random_tree(25, seed=2).graph
        with TrialPool(FastLuby(), g, workers=1) as pool:
            a = pool.run(16, seed=0)
            b = pool.run(16, seed=0)
            c = pool.run(16, seed=1)
        assert np.array_equal(a.counts, b.counts)
        assert not np.array_equal(a.counts, c.counts)

    def test_inline_pool_has_no_processes(self):
        from repro.analysis.montecarlo import TrialPool

        g = path_graph(6)
        with TrialPool(FastLuby(), g, workers=1) as pool:
            assert pool.processes == []

    def test_close_joins_workers(self):
        from repro.analysis.montecarlo import TrialPool

        g = path_graph(6)
        pool = TrialPool(FastLuby(), g, workers=2)
        procs = pool.processes
        pool.run(16, seed=0)
        pool.close(wait=True)
        assert not any(p.is_alive() for p in procs)
