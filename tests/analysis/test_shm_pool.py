"""TrialPool over the shared-memory graph transport (fork and spawn)."""

import multiprocessing as mp

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.analysis.montecarlo import TrialPool, resolve_start_method, run_trials
from repro.fast import FastFairRooted, FastLuby
from repro.graphs import random_tree


def _tree(n=40, seed=3):
    return random_tree(n, seed).graph


def _segment_gone(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


def _handle_names(pool: TrialPool) -> list[str]:
    handle = pool._shared.handle
    return [handle.edges.name, handle.indptr.name, handle.indices.name]


class TestResolveStartMethod:
    def test_explicit_context_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert resolve_start_method("fork") == "fork"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert resolve_start_method() == "spawn"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "warp")
        with pytest.raises(ValueError, match="REPRO_MP_START"):
            resolve_start_method()

    def test_default_prefers_fork_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        expected = "fork" if "fork" in mp.get_all_start_methods() else None
        assert resolve_start_method() == expected


class TestShmPool:
    def test_fork_pool_matches_inline_and_reclaims(self):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork unavailable")
        graph = _tree()
        alg = FastLuby()
        inline = run_trials(alg, graph, 48, seed=5)
        pool = TrialPool(alg, graph, workers=2, context="fork")
        assert pool.transport == "shm"
        names = _handle_names(pool)
        est = pool.run(48, seed=5)
        pool.close()
        assert np.array_equal(inline.counts, est.counts)
        for name in names:
            assert _segment_gone(name)

    @pytest.mark.slow
    def test_spawn_pool_matches_inline_and_reclaims(self):
        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("spawn unavailable")
        graph = _tree()
        alg = FastLuby()
        inline = run_trials(alg, graph, 32, seed=5)
        pool = TrialPool(alg, graph, workers=2, context="spawn")
        assert pool.transport == "shm"
        names = _handle_names(pool)
        est = pool.run(32, seed=5)
        pool.close()
        assert np.array_equal(inline.counts, est.counts)
        for name in names:
            assert _segment_gone(name)

    def test_vector_chunk_through_shm_pool(self):
        graph = _tree()
        pool = TrialPool(FastFairRooted(), graph, workers=2)
        try:
            counts = pool.run_vector_chunk(np.random.SeedSequence(7), 24)
        finally:
            pool.close()
        assert counts.shape == (graph.n,)
        assert counts.max() <= 24 and counts.min() >= 0

    def test_terminate_reclaims_segments(self):
        graph = _tree()
        pool = TrialPool(FastLuby(), graph, workers=2)
        names = _handle_names(pool)
        pool.terminate()
        for name in names:
            assert _segment_gone(name)

    def test_close_idempotent(self):
        pool = TrialPool(FastLuby(), _tree(), workers=2)
        pool.close()
        pool.close()


class TestTransportFallback:
    def test_shm_false_uses_pickle(self):
        graph = _tree()
        alg = FastLuby()
        inline = run_trials(alg, graph, 32, seed=5)
        pool = TrialPool(alg, graph, workers=2, shm=False)
        assert pool.transport == "pickle"
        assert pool._shared is None
        est = pool.run(32, seed=5)
        pool.close()
        assert np.array_equal(inline.counts, est.counts)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        pool = TrialPool(FastLuby(), _tree(), workers=2)
        assert pool.transport == "pickle"
        pool.close()

    def test_inline_pool_has_inline_transport(self):
        pool = TrialPool(FastLuby(), _tree(), workers=1)
        assert pool.transport == "inline"
        pool.close()

    def test_shm_unavailable_falls_back(self, monkeypatch):
        from repro.analysis import montecarlo
        from repro.graphs.shm import ShmUnavailable

        def boom(graph):
            raise ShmUnavailable("simulated")

        monkeypatch.setattr(montecarlo, "export_graph", boom)
        graph = _tree()
        alg = FastLuby()
        pool = TrialPool(alg, graph, workers=2)
        assert pool.transport == "pickle"
        est = pool.run(32, seed=5)
        pool.close()
        inline = run_trials(alg, graph, 32, seed=5)
        assert np.array_equal(inline.counts, est.counts)
