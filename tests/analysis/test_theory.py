"""Unit tests for the closed-form theory constants."""

import math

import pytest

from repro.analysis.theory import (
    colormis_min_join_probability,
    cone_inequality_lower_bound,
    fairbipart_block_probability,
    fairbipart_inequality_bound,
    fairbipart_min_join_probability,
    fairrooted_inequality_bound,
    fairtree_epsilon_bound,
    fairtree_inequality_bound,
    fairtree_min_join_probability,
    log_star,
    star_luby_center_probability,
    star_luby_inequality,
)


class TestFairRooted:
    def test_bound_is_four(self):
        assert fairrooted_inequality_bound() == 4.0


class TestFairTree:
    def test_epsilon_shrinks(self):
        assert fairtree_epsilon_bound(1000) < fairtree_epsilon_bound(10)

    def test_min_join_approaches_quarter(self):
        assert fairtree_min_join_probability(10**6) == pytest.approx(
            0.25, abs=1e-3
        )

    def test_inequality_approaches_four(self):
        assert fairtree_inequality_bound(10**6) == pytest.approx(4.0, abs=1e-3)

    def test_inequality_exceeds_four_for_small_n(self):
        assert fairtree_inequality_bound(4) > 4.0


class TestFairBipart:
    def test_block_probability_monotone_in_gamma(self):
        assert fairbipart_block_probability(
            64, gamma=20
        ) > fairbipart_block_probability(64, gamma=6)

    def test_lemma16_numeric_example(self):
        """The Lemma 16 computation: γ=2·lg n, p=1/2 gives ≥ 1/4 block
        probability for n ≥ 2, hence join probability ≥ 1/8."""
        for n in (2, 16, 1024):
            assert fairbipart_min_join_probability(n) >= 1 / 8 - 1e-9

    def test_limit_is_half(self):
        # With γ = 2·lg n, (1 - 1/n²)^n → 1, so the block probability
        # approaches p = 1/2.  (The paper's parenthetical "√(1/e)" is a
        # slip — it would correspond to γ = lg n... × 1/2; the ≥ 1/4 bound
        # used by Lemma 16 is unaffected.)
        p = fairbipart_block_probability(10**6, gamma=2 * 20)
        assert p == pytest.approx(0.5, abs=1e-3)

    def test_bound_is_eight(self):
        assert fairbipart_inequality_bound() == 8.0


class TestColorMIS:
    def test_scales_inversely_with_k(self):
        a = colormis_min_join_probability(100, k=2)
        b = colormis_min_join_probability(100, k=8)
        assert a == pytest.approx(4 * b)


class TestConeAndStar:
    def test_cone_bound_linear(self):
        assert cone_inequality_lower_bound(10) == 10.0

    def test_star_center(self):
        assert star_luby_center_probability(20) == pytest.approx(0.05)

    def test_star_inequality(self):
        assert star_luby_inequality(20) == 19.0


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_slow_growth(self):
        assert log_star(2**64) <= 5
