"""Unit tests for MIS validity checks."""

import numpy as np
import pytest

from repro.analysis.validation import (
    coverage_mask,
    is_independent_set,
    is_maximal_independent_set,
    violating_edges,
)
from repro.core.result import InvalidMISError, MISResult
from repro.graphs.generators import cycle_graph, empty_graph, path_graph, star_graph


class TestIndependence:
    def test_valid(self):
        g = path_graph(4)
        assert is_independent_set(g, np.array([True, False, True, False]))

    def test_adjacent_members_invalid(self):
        g = path_graph(4)
        assert not is_independent_set(g, np.array([True, True, False, False]))

    def test_empty_set_independent(self):
        assert is_independent_set(path_graph(4), np.zeros(4, bool))

    def test_edgeless_graph(self):
        assert is_independent_set(empty_graph(3), np.ones(3, bool))


class TestMaximality:
    def test_alternating_path(self):
        g = path_graph(5)
        assert is_maximal_independent_set(
            g, np.array([True, False, True, False, True])
        )

    def test_uncovered_vertex_fails(self):
        g = path_graph(5)
        assert not is_maximal_independent_set(
            g, np.array([True, False, False, False, True])
        )

    def test_star_center_only(self):
        g = star_graph(5)
        m = np.zeros(5, bool)
        m[0] = True
        assert is_maximal_independent_set(g, m)

    def test_star_all_leaves(self):
        g = star_graph(5)
        m = np.ones(5, bool)
        m[0] = False
        assert is_maximal_independent_set(g, m)

    def test_edgeless_requires_all(self):
        g = empty_graph(3)
        assert not is_maximal_independent_set(g, np.zeros(3, bool))
        assert is_maximal_independent_set(g, np.ones(3, bool))


class TestHelpers:
    def test_coverage_mask(self):
        g = path_graph(4)
        cov = coverage_mask(g, np.array([True, False, False, False]))
        assert cov.tolist() == [True, True, False, False]

    def test_violating_edges(self):
        g = cycle_graph(4)
        bad = violating_edges(g, np.array([True, True, False, False]))
        assert bad.tolist() == [[0, 1]]

    def test_no_violations(self):
        g = cycle_graph(4)
        bad = violating_edges(g, np.array([True, False, True, False]))
        assert bad.size == 0


class TestMISResultValidate:
    def test_valid_passes(self):
        g = path_graph(3)
        res = MISResult(membership=np.array([True, False, True]))
        assert res.validate(g) is res

    def test_independence_violation_raises(self):
        g = path_graph(3)
        res = MISResult(membership=np.array([True, True, False]))
        with pytest.raises(InvalidMISError):
            res.validate(g)

    def test_maximality_violation_raises(self):
        g = path_graph(5)
        res = MISResult(membership=np.array([True, False, False, False, True]))
        with pytest.raises(InvalidMISError):
            res.validate(g)

    def test_shape_mismatch_raises(self):
        g = path_graph(3)
        res = MISResult(membership=np.array([True, False]))
        with pytest.raises(InvalidMISError):
            res.validate(g)

    def test_size_property(self):
        res = MISResult(membership=np.array([True, False, True]))
        assert res.size == 2
