"""Tests for the §I-A workload models."""

import numpy as np
import pytest

from repro.analysis.workload import DutyReport, expected_duty_spread, simulate_duty
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs.generators import alternating_tree, path_graph, star_graph


class TestSimulateDuty:
    def test_duty_bounded_by_epochs(self):
        report = simulate_duty(path_graph(8), FastLuby(), epochs=30, seed=0)
        assert report.epochs == 30
        assert report.duty.max() <= 30

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            simulate_duty(path_graph(3), FastLuby(), epochs=0)

    def test_luby_exhausts_star_budget(self):
        """Leaves serve nearly every epoch under Luby on a star."""
        report = simulate_duty(
            star_graph(16), FastLuby(), epochs=120, seed=1, budget_fraction=0.9
        )
        assert report.first_exhausted_epoch is not None
        assert report.max_duty_fraction > 0.9

    def test_fairtree_respects_star_budget(self):
        report = simulate_duty(
            star_graph(16), FastFairTree(), epochs=120, seed=1,
            budget_fraction=0.9,
        )
        assert report.first_exhausted_epoch is None

    def test_spread_infinite_when_node_never_serves(self):
        # with few epochs on a star, the center may never serve under Luby
        report = simulate_duty(star_graph(24), FastLuby(), epochs=10, seed=3)
        if report.duty.min() == 0:
            assert report.spread == float("inf")

    def test_estimate_property(self):
        report = simulate_duty(path_graph(6), FastLuby(), epochs=40, seed=0)
        est = report.estimate
        assert est.trials == 40
        assert np.array_equal(est.counts, report.duty)


class TestDutySpreadVsInequality:
    def test_duty_spread_tracks_inequality(self):
        """The long-run duty spread converges to the inequality factor."""
        from repro.analysis import run_trials

        g = alternating_tree(6, 3).graph
        alg = FastLuby()
        report = simulate_duty(g, alg, epochs=3000, seed=0)
        est = run_trials(alg, g, 3000, seed=1)
        assert report.spread == pytest.approx(
            expected_duty_spread(est), rel=0.35
        )

    def test_fair_algorithm_small_spread(self):
        g = alternating_tree(6, 3).graph
        report = simulate_duty(g, FastFairTree(), epochs=1500, seed=0)
        assert report.spread <= 4.5
