"""Artifact schema, fingerprint, and round-trip tests."""

import json

import pytest

from repro.bench.artifact import (
    SCHEMA_VERSION,
    default_artifact_path,
    environment_fingerprint,
    git_sha,
    load_artifact,
    make_artifact,
    write_artifact,
)

_METRICS = {
    "faithful.luby.rounds": {
        "value": 5.0,
        "unit": "rounds",
        "kind": "count",
        "higher_is_better": False,
        "gate": True,
        "tolerance_pct": 0.0,
    }
}


class TestFingerprint:
    def test_required_keys(self):
        env = environment_fingerprint()
        for key in ("python", "numpy", "platform", "cpu_count", "bench_knobs"):
            assert key in env
        assert set(env["bench_knobs"]) == {
            "REPRO_BENCH_TRIALS",
            "REPRO_BENCH_CITY_N",
            "REPRO_BENCH_FULL",
        }

    def test_git_sha_in_checkout(self):
        sha = git_sha()
        assert sha == "unknown" or all(c in "0123456789abcdef" for c in sha)


class TestArtifactRoundTrip:
    def test_make_write_load(self, tmp_path):
        doc = make_artifact(_METRICS, {"quick": True})
        assert doc["schema"] == SCHEMA_VERSION
        path = write_artifact(doc, tmp_path / "BENCH_test.json")
        loaded = load_artifact(path)
        assert loaded["metrics"] == doc["metrics"]
        assert loaded["config"] == {"quick": True}

    def test_default_path_uses_sha(self, tmp_path):
        path = default_artifact_path(tmp_path, sha="abc123")
        assert path.name == "BENCH_abc123.json"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro-bench/0", "metrics": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(path)

    def test_load_rejects_missing_metrics(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="metrics"):
            load_artifact(path)
