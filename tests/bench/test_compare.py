"""Regression-gate semantics of bench artifact comparison."""

from repro.bench.compare import compare_artifacts


def _doc(metrics, sha="cafe12"):
    return {"schema": "repro-bench/1", "git_sha": sha, "metrics": metrics}


def _count(value, gate=True, tolerance=0.0):
    return {
        "value": value,
        "unit": "rounds",
        "kind": "count",
        "higher_is_better": False,
        "gate": gate,
        "tolerance_pct": tolerance,
    }


def _timing(value, higher_is_better=True, tolerance=25.0):
    return {
        "value": value,
        "unit": "trials/s",
        "kind": "timing",
        "higher_is_better": higher_is_better,
        "gate": False,
        "tolerance_pct": tolerance,
    }


class TestCountGating:
    def test_identical_ok(self):
        report = compare_artifacts(
            _doc({"m": _count(7)}), _doc({"m": _count(7)})
        )
        assert report.ok
        assert not report.rows[0].regressed

    def test_any_deviation_gates(self):
        report = compare_artifacts(
            _doc({"m": _count(8)}), _doc({"m": _count(7)})
        )
        assert not report.ok
        assert report.gating_failures[0].name == "m"

    def test_deviation_in_either_direction_gates(self):
        report = compare_artifacts(
            _doc({"m": _count(6)}), _doc({"m": _count(7)})
        )
        assert not report.ok

    def test_ungated_count_reports_only(self):
        report = compare_artifacts(
            _doc({"m": _count(8, gate=False)}), _doc({"m": _count(7, gate=False)})
        )
        assert report.ok
        assert report.rows[0].regressed

    def test_tolerance_override_allows_drift(self):
        report = compare_artifacts(
            _doc({"m": _count(102)}), _doc({"m": _count(100)}),
            tolerance_pct=5.0,
        )
        assert report.ok


class TestTimingGating:
    def test_bad_direction_not_gated_by_default(self):
        report = compare_artifacts(
            _doc({"t": _timing(50.0)}), _doc({"t": _timing(100.0)})
        )
        assert report.ok  # -50% throughput, but timing is advisory
        assert report.rows[0].regressed

    def test_strict_timing_gates(self):
        report = compare_artifacts(
            _doc({"t": _timing(50.0)}),
            _doc({"t": _timing(100.0)}),
            strict_timing=True,
        )
        assert not report.ok

    def test_good_direction_never_regresses(self):
        report = compare_artifacts(
            _doc({"t": _timing(200.0)}),
            _doc({"t": _timing(100.0)}),
            strict_timing=True,
        )
        assert report.ok
        assert not report.rows[0].regressed

    def test_lower_is_better_respected(self):
        latency = _timing(20.0, higher_is_better=False)
        base = _timing(10.0, higher_is_better=False)
        report = compare_artifacts(
            _doc({"lat": latency}), _doc({"lat": base}), strict_timing=True
        )
        assert not report.ok

    def test_within_tolerance_ok(self):
        report = compare_artifacts(
            _doc({"t": _timing(90.0)}),
            _doc({"t": _timing(100.0)}),
            strict_timing=True,
        )
        assert report.ok  # -10% within the 25% timing tolerance


class TestZeroBaseline:
    def test_count_from_zero_has_no_delta_but_regresses(self):
        report = compare_artifacts(
            _doc({"m": _count(3)}), _doc({"m": _count(0)})
        )
        row = report.rows[0]
        assert row.delta_pct is None  # no inf/JSON-illegal percentage
        assert row.note == "new from zero"
        assert row.regressed and row.gated
        assert not report.ok

    def test_zero_to_zero_is_ok(self):
        report = compare_artifacts(
            _doc({"m": _count(0)}), _doc({"m": _count(0)})
        )
        row = report.rows[0]
        assert row.delta_pct == 0.0
        assert not row.regressed and row.note == ""

    def test_count_from_zero_ignores_tolerance(self):
        # A nonzero-from-zero count is a behavioural change no matter
        # how generous the tolerance — there is no percentage to test.
        report = compare_artifacts(
            _doc({"m": _count(1)}), _doc({"m": _count(0)}),
            tolerance_pct=1000.0,
        )
        assert not report.ok

    def test_timing_from_zero_judged_by_direction(self):
        up_good = compare_artifacts(
            _doc({"t": _timing(50.0, higher_is_better=True)}),
            _doc({"t": _timing(0.0, higher_is_better=True)}),
            strict_timing=True,
        )
        assert up_good.ok
        assert up_good.rows[0].note == "new from zero"
        up_bad = compare_artifacts(
            _doc({"t": _timing(50.0, higher_is_better=False)}),
            _doc({"t": _timing(0.0, higher_is_better=False)}),
            strict_timing=True,
        )
        assert not up_bad.ok

    def test_format_renders_dash_for_undefined_delta(self):
        report = compare_artifacts(
            _doc({"m": _count(3)}), _doc({"m": _count(0)})
        )
        lines = report.format().splitlines()
        row = next(ln for ln in lines if "[new from zero]" in ln)
        # columns: name kind baseline current delta verdict...
        assert row.split()[4] == "-"


class TestMissingMetrics:
    def test_missing_sides_reported_not_gated(self):
        report = compare_artifacts(
            _doc({"new": _count(1)}), _doc({"old": _count(2)})
        )
        assert report.ok
        notes = {r.name: r.note for r in report.rows}
        assert notes["new"] == "missing in baseline"
        assert notes["old"] == "missing in current"


class TestFormat:
    def test_report_lists_failures(self):
        report = compare_artifacts(
            _doc({"m": _count(8)}, sha="aaa111"),
            _doc({"m": _count(7)}, sha="bbb222"),
        )
        text = report.format()
        assert "bbb222" in text and "aaa111" in text
        assert "REGRESSED" in text
        assert "FAIL: 1 gated metric(s)" in text

    def test_clean_report_says_ok(self):
        report = compare_artifacts(_doc({"m": _count(7)}), _doc({"m": _count(7)}))
        assert "no gated regressions" in report.format()
