"""Suite execution + ``repro bench`` CLI, including the regression gate.

Full-suite runs live behind ``repro bench``/CI; tests stick to the cheap
deterministic cases (``--only counts``) so the gate logic is covered
end-to-end in well under a second.
"""

import json

import pytest

from repro.bench import load_artifact
from repro.bench.suite import BenchConfig, build_cases, run_suite
from repro.cli import main


class TestConfig:
    def test_quick_pins_small_scale(self):
        config = BenchConfig(quick=True)
        assert config.trials == 200
        assert config.as_dict()["quick"] is True

    def test_env_knob_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TRIALS", "123")
        assert BenchConfig(quick=False).trials == 123

    def test_only_filters_cases(self):
        config = BenchConfig(quick=True, only="counts")
        names = [c.name for c in build_cases(config)]
        assert names == ["faithful_counts", "fast_counts"]


class TestSuite:
    def test_count_metrics_deterministic(self):
        config = BenchConfig(quick=True, only="counts")
        first = run_suite(config)
        second = run_suite(config)
        assert first.keys() == second.keys()
        for name in first:
            assert first[name]["value"] == second[name]["value"], name
            assert first[name]["kind"] == "count"
            assert first[name]["gate"] is True

    def test_duplicate_metric_names_rejected(self):
        config = BenchConfig(quick=True)
        case = build_cases(BenchConfig(quick=True, only="fast_counts"))[0]
        with pytest.raises(ValueError, match="duplicate"):
            run_suite(config, cases=[case, case])


class TestBenchCli:
    def _run(self, args):
        return main(["bench", "--quick", "--only", "counts", *args])

    def test_writes_schema_versioned_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        assert self._run(["--out", str(out)]) == 0
        doc = load_artifact(out)
        assert doc["schema"] == "repro-bench/1"
        assert "faithful.fair_tree.rounds" in doc["metrics"]
        assert "environment" in doc and "config" in doc

    def test_compare_clean_baseline_passes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        self._run(["--out", str(base)])
        assert self._run(["--out", str(cur), "--compare", str(base)]) == 0
        assert "no gated regressions" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        self._run(["--out", str(base)])
        doc = json.loads(base.read_text())
        doc["metrics"]["faithful.fair_tree.rounds"]["value"] += 1
        base.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            self._run(["--out", str(tmp_path / "cur.json"),
                       "--compare", str(base)])
        assert exc.value.code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_list_and_bad_only(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "faithful_counts" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["bench", "--only", "zzz-no-such-case"])

    def test_bad_baseline_path_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load baseline"):
            self._run(["--out", str(tmp_path / "c.json"),
                       "--compare", str(tmp_path / "missing.json")])
