"""Trend history over bench artifact directories (`repro bench trend`)."""

import json

import pytest

from repro.bench.trend import build_trend, collect_artifacts
from repro.cli import main


def _count(value, gate=True, tolerance=0.0):
    return {
        "value": value,
        "unit": "rounds",
        "kind": "count",
        "higher_is_better": False,
        "gate": gate,
        "tolerance_pct": tolerance,
    }


def _timing(value, higher_is_better=True, tolerance=25.0):
    return {
        "value": value,
        "unit": "trials/s",
        "kind": "timing",
        "higher_is_better": higher_is_better,
        "gate": False,
        "tolerance_pct": tolerance,
    }


def _doc(metrics, sha="cafe12", created=1.0):
    return {
        "schema": "repro-bench/1",
        "git_sha": sha,
        "created_unix": created,
        "metrics": metrics,
    }


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestCollectArtifacts:
    def test_directory_glob_ordered_by_created(self, tmp_path):
        _write(tmp_path, "BENCH_bbb.json", _doc({}, sha="bbb", created=2.0))
        _write(tmp_path, "BENCH_aaa.json", _doc({}, sha="aaa", created=1.0))
        _write(tmp_path, "BENCH_ccc.json", _doc({}, sha="ccc", created=3.0))
        docs = collect_artifacts([tmp_path])
        assert [d["git_sha"] for d in docs] == ["aaa", "bbb", "ccc"]

    def test_skips_stray_files(self, tmp_path):
        _write(tmp_path, "BENCH_good.json", _doc({}, sha="good"))
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        _write(
            tmp_path,
            "BENCH_old.json",
            {"schema": "other/9", "metrics": {}},
        )
        docs = collect_artifacts([tmp_path])
        assert [d["git_sha"] for d in docs] == ["good"]

    def test_mixed_files_and_dirs(self, tmp_path):
        sub = tmp_path / "history"
        sub.mkdir()
        _write(sub, "BENCH_a.json", _doc({}, sha="a", created=1.0))
        extra = _write(tmp_path, "fresh.json", _doc({}, sha="b", created=2.0))
        docs = collect_artifacts([sub, extra])
        assert [d["git_sha"] for d in docs] == ["a", "b"]


class TestBuildTrend:
    def _series(self):
        return [
            _doc({"rounds": _count(7), "thr": _timing(100.0)}, "s1", 1.0),
            _doc({"rounds": _count(7), "thr": _timing(99.0)}, "s2", 2.0),
            _doc({"rounds": _count(9), "thr": _timing(40.0)}, "s3", 3.0),
        ]

    def test_steps_use_compare_semantics(self):
        report = build_trend(self._series())
        by_name = {m.name: m for m in report.metrics}
        rounds = by_name["rounds"]
        # First point never regresses (no predecessor); the count step
        # lands exactly where the value moved, and gates.
        assert [p.regressed for p in rounds.points] == [False, False, True]
        assert rounds.steps[0].sha == "s3" and rounds.steps[0].gated
        thr = by_name["thr"]
        # -1% is inside the 25% timing tolerance; -60% is not.
        assert [p.regressed for p in thr.points] == [False, False, True]
        assert not thr.steps[0].gated  # timing stays advisory

    def test_flagged_orders_steps_first(self):
        report = build_trend(self._series())
        assert {m.name for m in report.flagged} == {"rounds", "thr"}

    def test_only_filter(self):
        report = build_trend(self._series(), only=["thr"])
        assert [m.name for m in report.metrics] == ["thr"]

    def test_from_zero_note_propagates(self):
        docs = [
            _doc({"fallbacks": _count(0)}, "s1", 1.0),
            _doc({"fallbacks": _count(3)}, "s2", 2.0),
        ]
        report = build_trend(docs)
        point = report.metrics[0].points[1]
        assert point.regressed and point.note == "new from zero"

    def test_metric_absent_in_one_artifact(self):
        docs = [
            _doc({"a": _count(1)}, "s1", 1.0),
            _doc({"a": _count(1), "b": _count(2)}, "s2", 2.0),
        ]
        report = build_trend(docs)
        b = {m.name: m for m in report.metrics}["b"]
        assert b.points[0].value is None
        assert not b.points[1].regressed  # missing-side rows never gate

    def test_empty_input(self):
        report = build_trend([])
        assert report.metrics == [] and report.to_json()["artifacts"] == []


class TestRendering:
    def _report(self):
        return build_trend(
            [
                _doc({"rounds": _count(7)}, "s1", 1.0),
                _doc({"rounds": _count(9)}, "s2", 2.0),
            ]
        )

    def test_ansi_table(self):
        text = self._report().format()
        assert "bench trend: 2 artifact(s), s1 -> s2" in text
        assert "rounds" in text
        assert "1 metric(s) stepped: rounds" in text

    def test_markdown_table(self):
        text = self._report().format(markdown=True)
        assert "| metric | kind |" in text
        assert "| rounds | count |" in text

    def test_clean_series_reports_no_steps(self):
        report = build_trend([_doc({"m": _count(5)}, "s1", 1.0)])
        assert "no regressing steps" in report.format()

    def test_to_json_is_serializable(self):
        doc = json.loads(json.dumps(self._report().to_json()))
        assert doc["metrics"][0]["points"][1]["regressed"] is True


class TestCli:
    def _dir(self, tmp_path):
        _write(tmp_path, "BENCH_a.json", _doc({"m": _count(5)}, "a", 1.0))
        _write(tmp_path, "BENCH_b.json", _doc({"m": _count(6)}, "b", 2.0))
        return tmp_path

    def test_trend_exits_zero_even_with_steps(self, tmp_path, capsys):
        rc = main(["bench", "trend", str(self._dir(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench trend: 2 artifact(s)" in out
        assert "1 metric(s) stepped" in out

    def test_trend_json(self, tmp_path, capsys):
        rc = main(["bench", "trend", str(self._dir(tmp_path)), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [a["git_sha"] for a in doc["artifacts"]] == ["a", "b"]

    def test_trend_no_artifacts_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "trend", str(tmp_path)])
