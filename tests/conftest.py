"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    RootedTree,
    StaticGraph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def path7() -> StaticGraph:
    """The 7-vertex path."""
    return path_graph(7)


@pytest.fixture
def star9() -> StaticGraph:
    """A 9-vertex star (center 0)."""
    return star_graph(9)


@pytest.fixture
def tree25() -> RootedTree:
    """A fixed random 25-vertex tree."""
    return random_tree(25, seed=7)


@pytest.fixture
def grid44() -> StaticGraph:
    """A 4x4 grid (bipartite, planar)."""
    return grid_graph(4, 4)


@pytest.fixture
def k5() -> StaticGraph:
    """The clique K5."""
    return complete_graph(5)


@pytest.fixture
def c6() -> StaticGraph:
    """The even cycle C6 (bipartite)."""
    return cycle_graph(6)


@pytest.fixture
def c5() -> StaticGraph:
    """The odd cycle C5 (non-bipartite)."""
    return cycle_graph(5)


def pytest_addoption(parser):
    parser.addoption(
        "--thorough",
        action="store_true",
        default=False,
        help="run slow statistical tests with larger trial counts",
    )


@pytest.fixture
def thorough(request) -> bool:
    """True when --thorough was passed (bigger Monte-Carlo budgets)."""
    return bool(request.config.getoption("--thorough"))
