"""Tests for the centralized baselines."""

import numpy as np
import pytest

from repro.analysis import is_maximal_independent_set, run_trials
from repro.exact.centralized import CentralizedFairBipartite, UniformMISSampler
from repro.graphs import GraphValidationError, StaticGraph
from repro.graphs.generators import (
    cone_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite,
    random_tree,
    star_graph,
)


class TestCentralizedFairBipartite:
    def test_valid_mis(self, rng):
        alg = CentralizedFairBipartite()
        for g in [
            path_graph(7),
            grid_graph(4, 4),
            random_tree(20, seed=1).graph,
            random_bipartite(6, 6, 0.3, seed=2),
        ]:
            for _ in range(5):
                res = alg.run(g, rng)  # validates internally
                assert is_maximal_independent_set(g, res.membership)

    def test_perfectly_fair(self, rng):
        """The §V claim: P(u) = P(v) = 1/2 exactly for all u, v."""
        g = random_tree(15, seed=4).graph
        est = run_trials(CentralizedFairBipartite(), g, 2000, seed=0)
        assert np.all(np.abs(est.probabilities - 0.5) < 0.05)

    def test_isolated_vertices_always_join(self, rng):
        g = StaticGraph.from_edges(4, [(0, 1)])
        counts = np.zeros(4)
        for _ in range(50):
            counts += CentralizedFairBipartite().run(g, rng).membership
        assert counts[2] == 50 and counts[3] == 50

    def test_rejects_non_bipartite(self, rng):
        with pytest.raises(GraphValidationError):
            CentralizedFairBipartite().run(cycle_graph(5), rng)

    def test_components_independent_coins(self, rng):
        """Two components must flip different coins sometimes."""
        g = StaticGraph.from_edges(4, [(0, 1), (2, 3)])
        patterns = set()
        for _ in range(60):
            m = CentralizedFairBipartite().run(g, rng).membership
            patterns.add(tuple(m.tolist()))
        assert len(patterns) == 4  # all 2x2 coin combinations appear


class TestUniformMISSampler:
    def test_valid_samples(self, rng):
        alg = UniformMISSampler(validate=True)
        g = random_tree(12, seed=3).graph
        for _ in range(10):
            alg.run(g, rng)

    def test_exact_probabilities_match_sampling(self, rng):
        g = star_graph(6)
        alg = UniformMISSampler()
        exact = alg.exact_probabilities(g)
        # star has 2 MIS: {center} and all-leaves → every node p = 1/2
        assert np.allclose(exact, 0.5)
        est = run_trials(alg, g, 2000, seed=0)
        assert np.all(np.abs(est.probabilities - exact) < 0.05)

    def test_cone_unfair_even_for_uniform(self, rng):
        """Theorem 19 applies to every MIS distribution — including the
        uniform one."""
        g = cone_graph(4)
        probs = UniformMISSampler().exact_probabilities(g)
        assert probs.max() / probs.min() >= 4.0

    def test_path_exact_counts(self):
        g = path_graph(4)
        probs = UniformMISSampler().exact_probabilities(g)
        # P4 has 3 MIS: {0,2},{0,3},{1,3}
        assert np.allclose(probs, [2 / 3, 1 / 3, 1 / 3, 2 / 3])
