"""Tests for exact MIS enumeration (Bron–Kerbosch on the complement)."""

import numpy as np
import pytest

from repro.exact.enumerate import (
    count_mis,
    maximal_independent_sets,
    mis_membership_matrix,
)
from repro.graphs import StaticGraph
from repro.graphs.generators import (
    complete_graph,
    cone_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestKnownCounts:
    def test_empty_graph_single_mis(self):
        # the only maximal independent set of an edgeless graph is V
        assert count_mis(empty_graph(4)) == 1

    def test_single_vertex(self):
        assert list(maximal_independent_sets(empty_graph(1))) == [
            frozenset({0})
        ]

    def test_zero_vertices(self):
        assert list(maximal_independent_sets(empty_graph(0))) == [frozenset()]

    def test_clique_n_sets(self):
        assert count_mis(complete_graph(6)) == 6

    def test_star_two_sets(self):
        assert count_mis(star_graph(8)) == 2

    def test_path_fibonacci_like(self):
        # known: number of MIS of P_n follows the Padovan-like recurrence;
        # P2=2, P3=2, P4=3, P5=4, P6=5
        assert [count_mis(path_graph(k)) for k in (2, 3, 4, 5, 6)] == [
            2,
            2,
            3,
            4,
            5,
        ]

    def test_cycle_counts(self):
        # MIS counts of cycles = Perrin numbers: C5=5, C6=5, C7=7
        assert count_mis(cycle_graph(5)) == 5
        assert count_mis(cycle_graph(6)) == 5
        assert count_mis(cycle_graph(7)) == 7

    def test_cone_structure(self):
        # cone C_k: each clique vertex alone unless it needs the apex;
        # sets are {apex, u_i (i>k)} for k sets, and {u_i} for i<=k
        g = cone_graph(3)
        sets = set(maximal_independent_sets(g))
        assert len(sets) == 6
        for s in sets:
            if 0 in s:
                assert len(s) == 2  # apex pairs with a far clique vertex
            else:
                assert len(s) == 1


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees_match(self, seed):
        import networkx as nx

        g = random_tree(12, seed=seed).graph
        mine = set(maximal_independent_sets(g))
        theirs = {
            frozenset(c) for c in nx.find_cliques(nx.complement(g.to_networkx()))
        }
        assert mine == theirs

    def test_random_graph_matches(self):
        import networkx as nx

        rng = np.random.default_rng(5)
        edges = [
            (i, j)
            for i in range(10)
            for j in range(i + 1, 10)
            if rng.random() < 0.3
        ]
        g = StaticGraph.from_edges(10, edges)
        mine = set(maximal_independent_sets(g))
        theirs = {
            frozenset(c) for c in nx.find_cliques(nx.complement(g.to_networkx()))
        }
        assert mine == theirs


class TestValidity:
    @pytest.mark.parametrize("seed", range(3))
    def test_every_set_is_maximal_independent(self, seed):
        from repro.analysis import is_maximal_independent_set

        g = random_tree(10, seed=seed).graph
        for s in maximal_independent_sets(g):
            member = np.zeros(g.n, dtype=bool)
            member[list(s)] = True
            assert is_maximal_independent_set(g, member)

    def test_membership_matrix_shape(self):
        g = path_graph(5)
        mat = mis_membership_matrix(g)
        assert mat.shape == (4, 5)
        assert mat.dtype == bool

    def test_size_guard(self):
        with pytest.raises(ValueError):
            count_mis(empty_graph(64))
