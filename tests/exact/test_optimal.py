"""Tests for the optimal-fairness LP."""

import numpy as np
import pytest

from repro.exact.optimal import feasible_inequality, optimal_inequality
from repro.graphs.generators import (
    complete_graph,
    cone_graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestPerfectlyFairFamilies:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(6),
            star_graph(7),
            cycle_graph(6),
            cycle_graph(7),
            complete_graph(4),
        ],
        ids=["path", "star", "even-cycle", "odd-cycle", "clique"],
    )
    def test_f_star_is_one(self, graph):
        res = optimal_inequality(graph)
        assert res.inequality == pytest.approx(1.0, abs=1e-3)
        # the optimal distribution's probabilities are (nearly) uniform
        p = res.probabilities
        assert p.max() / p.min() <= 1.01

    @pytest.mark.parametrize("seed", range(3))
    def test_trees_perfectly_fair(self, seed):
        g = random_tree(9, seed=seed).graph
        assert optimal_inequality(g).inequality == pytest.approx(1.0, abs=1e-3)


class TestConeTightness:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_theorem19_exactly_tight(self, k):
        res = optimal_inequality(cone_graph(k))
        assert res.inequality == pytest.approx(float(k), abs=0.02)

    def test_optimal_distribution_valid(self):
        res = optimal_inequality(cone_graph(3))
        assert res.distribution.min() >= -1e-9
        assert res.distribution.sum() == pytest.approx(1.0)
        # probabilities consistent with the distribution
        recomputed = res.sets.astype(float).T @ res.distribution
        assert np.allclose(recomputed, res.probabilities)


class TestFeasibility:
    def test_infeasible_below_floor(self):
        from repro.exact.enumerate import mis_membership_matrix

        sets = mis_membership_matrix(cone_graph(3))
        assert feasible_inequality(sets, 2.0) is None  # floor is 3

    def test_feasible_at_floor(self):
        from repro.exact.enumerate import mis_membership_matrix

        sets = mis_membership_matrix(cone_graph(3))
        dist = feasible_inequality(sets, 3.01)
        assert dist is not None
        probs = sets.astype(float).T @ dist
        assert probs.max() / probs.min() <= 3.05

    def test_distribution_normalized(self):
        from repro.exact.enumerate import mis_membership_matrix

        sets = mis_membership_matrix(path_graph(5))
        dist = feasible_inequality(sets, 1.5)
        assert dist is not None
        assert dist.sum() == pytest.approx(1.0)
