"""Tests for the estimator-convergence experiment."""

from repro.experiments.convergence import (
    format_convergence,
    run_convergence_experiment,
)
from repro.graphs.generators import complete_tree


class TestConvergence:
    def test_plugin_bias_shrinks(self):
        rows = run_convergence_experiment(budgets=(100, 1600), seed=0)
        # more trials → plug-in estimate closer to the ~3 asymptote
        assert rows[1].plugin_inequality <= rows[0].plugin_inequality + 0.05

    def test_bracket_tightens(self):
        rows = run_convergence_experiment(budgets=(100, 1600), seed=0)
        assert rows[1].bracket_width < rows[0].bracket_width

    def test_bracket_contains_plugin(self):
        rows = run_convergence_experiment(budgets=(200,), seed=1)
        r = rows[0]
        assert r.lower_bound <= r.plugin_inequality <= r.upper_bound + 1e-9

    def test_theorem8_never_violated_by_lower_bound(self):
        rows = run_convergence_experiment(
            budgets=(100, 400), seed=0, graph=complete_tree(2, 7).graph
        )
        for r in rows:
            assert r.lower_bound <= 4.2  # FAIRTREE's true bound

    def test_format(self):
        rows = run_convergence_experiment(budgets=(100,), seed=0)
        assert "plug-in" in format_convergence(rows)
