"""Tests for the Table I evaluation topologies."""

from repro.experiments.datasets import (
    alternating_tree_b10,
    alternating_tree_b30,
    binary_tree,
    campus_tree,
    city_tree,
    five_ary_tree,
    table1_trees,
)


class TestPaperSizes:
    def test_binary(self):
        t = binary_tree()
        assert t.graph.n == 2047 and t.graph.m == 2046

    def test_five_ary(self):
        t = five_ary_tree()
        assert t.graph.n == 3906

    def test_alt10(self):
        assert alternating_tree_b10().graph.n == 1221

    def test_alt30(self):
        assert alternating_tree_b30().graph.n == 961

    def test_campus_scale(self):
        t = campus_tree(seed=11)
        assert t.graph.is_tree()
        assert abs(t.graph.n - 178) <= 3  # MST may drop stragglers

    def test_city_scaled(self):
        t = city_tree(n=400, seed=1)
        assert t.graph.is_tree()
        assert t.graph.n >= 390


class TestMetadata:
    def test_six_trees_in_paper_order(self):
        trees = table1_trees(city_n=300)
        assert [t.key for t in trees] == [
            "binary",
            "5ary",
            "alt10",
            "alt30",
            "campus",
            "city",
        ]

    def test_categories(self):
        trees = table1_trees(city_n=300)
        cats = [t.category for t in trees]
        assert cats == [
            "complete",
            "complete",
            "alternating",
            "alternating",
            "realworld",
            "realworld",
        ]

    def test_paper_reference_values(self):
        trees = table1_trees(city_n=300)
        lubys = [t.paper_luby for t in trees]
        assert lubys == [3.07, 6.42, 11.92, 36.59, 22.75, 168.49]
        fairs = [t.paper_fairtree for t in trees]
        assert max(fairs) == 3.25
