"""Tests for the fairness-landscape sweep."""

from repro.experiments.families import (
    format_family_sweep,
    run_family_sweep,
)


class TestFamilySweep:
    def test_matrix_covers_all_families(self):
        cells = run_family_sweep(trials=150, seed=0)
        families = {c.family for c in cells}
        assert families == {
            "tree",
            "star",
            "caterpillar",
            "grid",
            "bipartite",
            "planar",
            "cone",
        }

    def test_guaranteed_pairs_are_fair(self):
        """Every (family, algorithm) pair the paper guarantees must
        measure below its constant bound (generous slack for 400 trials;
        COLORMIS's bound is O(k) so it gets a k-scaled cap)."""
        cells = run_family_sweep(trials=400, seed=0)
        for c in cells:
            if not c.guaranteed_fair:
                continue
            cap = 40.0 if c.algorithm == "color_mis_fast" else 10.0
            assert c.inequality <= cap, (c.family, c.algorithm, c.inequality)

    def test_cone_never_guaranteed(self):
        cells = run_family_sweep(trials=150, seed=0)
        assert not any(c.guaranteed_fair for c in cells if c.family == "cone")

    def test_luby_never_guaranteed(self):
        cells = run_family_sweep(trials=150, seed=0)
        assert not any(
            c.guaranteed_fair for c in cells if c.algorithm == "luby_fast"
        )

    def test_fair_rooted_only_on_forests(self):
        cells = run_family_sweep(trials=150, seed=0)
        rooted_families = {
            c.family for c in cells if c.algorithm == "fair_rooted_fast"
        }
        assert rooted_families == {"tree", "star", "caterpillar"}

    def test_format(self):
        cells = run_family_sweep(trials=100, seed=0)
        text = format_family_sweep(cells)
        assert "guaranteed" in text and "cone" in text
